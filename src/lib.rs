//! Facade crate for the KSP-DG system: distributed processing of k shortest path
//! queries over dynamic road networks (reproduction of the SIGMOD 2020 paper).
//!
//! This crate re-exports the workspace members under short module names so that
//! applications (and the examples in `examples/`) can depend on a single crate:
//!
//! * [`graph`] — the dynamic weighted graph substrate ([`ksp_graph`]).
//! * [`algo`] — Dijkstra, Yen's algorithm, FindKSP and path utilities ([`ksp_algo`]).
//! * [`core`] — the DTLP index and the KSP-DG query engine ([`ksp_core`]).
//! * [`cands`] — the CANDS single-shortest-path baseline ([`ksp_cands`]).
//! * [`cluster`] — the simulated distributed runtime ([`ksp_cluster`]).
//! * [`workload`] — dataset generators, the traffic model and query workloads
//!   ([`ksp_workload`]).
//! * [`serve`] — the concurrent query-serving subsystem: epoch snapshots,
//!   sharded workers, admission control and an epoch-keyed result cache
//!   ([`ksp_serve`]).
//! * [`store`] — durable checkpoints and the epoch delta log with crash
//!   recovery: cold starts load a checkpoint and replay the log instead of
//!   rebuilding the index ([`ksp_store`]).
//! * [`obs`] — the observability toolkit: per-stage request spans, latency
//!   histograms, the flight recorder and the Prometheus text renderer
//!   ([`ksp_obs`]); `serve` threads it through the query pipeline and
//!   `proto` carries its snapshots over the wire.
//! * [`fault`] — seeded deterministic fault injection ([`ksp_fault`]): the
//!   fault plans the chaos tests drive the storage backend
//!   ([`store::FaultyIo`](ksp_store::FaultyIo)) and network wrapper
//!   ([`proto::FaultTransport`](ksp_proto::FaultTransport)) with.
//! * [`proto`] — the typed request/response wire protocol (CRC-guarded,
//!   versioned frames) and the pluggable [`Transport`](ksp_proto::Transport)
//!   with its TCP implementation and [`KspClient`](ksp_proto::KspClient)
//!   handle ([`ksp_proto`]); the matching server lives in
//!   [`serve::rpc`](ksp_serve::rpc).
//!
//! # Quickstart
//!
//! ```
//! use ksp_dg::core::dtlp::{DtlpConfig, DtlpIndex};
//! use ksp_dg::core::kspdg::KspDgEngine;
//! use ksp_dg::workload::{RoadNetworkConfig, RoadNetworkGenerator};
//! use ksp_dg::graph::VertexId;
//!
//! let net = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(300))
//!     .generate(42)
//!     .expect("network generation");
//! let index = DtlpIndex::build(&net.graph, DtlpConfig::new(25, 2)).expect("index build");
//! let engine = KspDgEngine::new(&index);
//! let result = engine.query(VertexId(0), VertexId(120), 3);
//! assert!(!result.paths.is_empty());
//! ```

#![warn(missing_docs)]

pub use ksp_algo as algo;
pub use ksp_cands as cands;
pub use ksp_cluster as cluster;
pub use ksp_core as core;
pub use ksp_fault as fault;
pub use ksp_graph as graph;
pub use ksp_obs as obs;
pub use ksp_proto as proto;
pub use ksp_repl as repl;
pub use ksp_serve as serve;
pub use ksp_store as store;
pub use ksp_workload as workload;
