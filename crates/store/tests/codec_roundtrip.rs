//! Property tests: the codec round-trips arbitrary graph+index pairs
//! byte-identically, including after randomised traffic maintenance, and the
//! full store survives create → log → recover at any batch count.

use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_store::{Store, StoreCodec, StoreConfig, SyncPolicy};
use ksp_workload::{RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_dir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksp-store-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// encode → decode → encode is the identity on bytes, for random road
    /// networks perturbed by random amounts of traffic.
    #[test]
    fn graph_and_index_round_trip_byte_identically(
        n in 40usize..120,
        seed in 0u64..1_000,
        num_batches in 0usize..4,
    ) {
        let mut graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n))
            .generate(seed)
            .expect("network generation")
            .graph;
        let mut index = DtlpIndex::build(&graph, DtlpConfig::new(12, 2)).expect("index build");
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), seed ^ 0xABCD);
        for _ in 0..num_batches {
            let batch = traffic.next_snapshot();
            graph.apply_batch(&batch).expect("graph update");
            index.apply_batch(&batch).expect("index maintenance");
        }

        let graph_bytes = graph.to_bytes();
        let index_bytes = index.to_bytes();
        let decoded_graph = ksp_graph::DynamicGraph::from_bytes(&graph_bytes).expect("graph decode");
        let decoded_index = DtlpIndex::from_bytes(&index_bytes).expect("index decode");
        prop_assert_eq!(decoded_graph.to_bytes(), graph_bytes);
        prop_assert_eq!(decoded_index.to_bytes(), index_bytes);

        // Structural spot checks beyond byte equality.
        prop_assert_eq!(decoded_graph.version(), graph.version());
        prop_assert_eq!(decoded_index.num_subgraphs(), index.num_subgraphs());
        prop_assert_eq!(
            decoded_index.skeleton().num_skeleton_edges(),
            index.skeleton().num_skeleton_edges()
        );
    }

    /// Full store round trip: recovery reproduces the live state exactly for
    /// any interleaving of logged batches and checkpoints.
    #[test]
    fn store_recovery_is_exact(
        n in 40usize..90,
        seed in 0u64..1_000,
        num_batches in 1usize..6,
        interval in 1u64..4,
    ) {
        let mut graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n))
            .generate(seed)
            .expect("network generation")
            .graph;
        let mut index = DtlpIndex::build(&graph, DtlpConfig::new(10, 2)).expect("index build");
        let config = StoreConfig {
            checkpoint_interval: interval,
            segment_max_records: 3,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let dir = temp_dir(seed.wrapping_mul(31).wrapping_add(n as u64));
        let mut store = Store::create(&dir, config, 0, &graph, &index).expect("store create");
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.6), seed ^ 0x77);
        for _ in 0..num_batches {
            let batch = traffic.next_snapshot();
            let epoch = graph.apply_batch(&batch).expect("graph update");
            index.apply_batch(&batch).expect("index maintenance");
            store.log_batch(epoch, &batch).expect("log append");
            if config.is_checkpoint_epoch(epoch) {
                store.checkpoint(epoch, &graph, &index).expect("checkpoint");
            }
        }
        drop(store);

        let (_store, recovered) = Store::recover(&dir, config).expect("recover");
        prop_assert_eq!(recovered.epoch, num_batches as u64);
        prop_assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        prop_assert_eq!(recovered.index.to_bytes(), index.to_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
