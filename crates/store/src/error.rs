//! Error types of the storage subsystem.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a decode failed. Every variant means the bytes cannot be interpreted as
/// the value that was asked for; the store treats any of them as corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A length or count field exceeds what the surrounding input could hold.
    LengthOutOfBounds {
        /// The declared length.
        declared: u64,
        /// The number of bytes actually available.
        available: usize,
    },
    /// A tag byte does not name a known variant.
    InvalidTag {
        /// What was being decoded.
        what: &'static str,
        /// The unrecognised tag value.
        tag: u8,
    },
    /// A decoded value violates an invariant of the type it belongs to
    /// (e.g. a negative edge weight, a vertex id out of range).
    InvalidValue(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of input: needed {needed} bytes, {remaining} remain")
            }
            CodecError::LengthOutOfBounds { declared, available } => {
                write!(f, "declared length {declared} exceeds available {available} bytes")
            }
            CodecError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            CodecError::InvalidValue(what) => write!(f, "decoded value violates invariant: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure (open, read, write, fsync, rename).
    Io {
        /// What the store was doing.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A file's content is not a valid checkpoint or log segment.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// No usable checkpoint exists in the directory.
    NoCheckpoint {
        /// The directory that was searched.
        dir: PathBuf,
    },
    /// A batch was logged with an epoch that does not extend the log.
    EpochOutOfOrder {
        /// The epoch the caller tried to append.
        epoch: u64,
        /// The epoch the log expected next.
        expected: u64,
    },
    /// A decode error while reading a checkpoint or log record.
    Codec(CodecError),
}

impl StoreError {
    pub(crate) fn io(context: impl Into<String>, source: io::Error) -> Self {
        StoreError::Io { context: context.into(), source }
    }

    pub(crate) fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt { path: path.into(), detail: detail.into() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "I/O error while {context}: {source}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store file {}: {detail}", path.display())
            }
            StoreError::NoCheckpoint { dir } => {
                write!(f, "no valid checkpoint found in {}", dir.display())
            }
            StoreError::EpochOutOfOrder { epoch, expected } => {
                write!(f, "epoch {epoch} logged out of order (log expected {expected})")
            }
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}
