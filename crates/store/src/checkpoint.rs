//! Checkpoint image files: full `(graph, index)` snapshots and incremental
//! (partial) images covering only the subgraphs dirtied since a base image.
//!
//! Full image layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "KSPCKPT1"
//! 8       4     format version (currently 1)
//! 12      8     epoch the pair is exact for
//! 20      8     payload length in bytes
//! 28      n     payload: DynamicGraph then DtlpIndex (StoreCodec encoding)
//! 28+n    4     CRC-32 of the payload
//! ```
//!
//! Partial image layout:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "KSPPART1"
//! 8       4     format version (currently 1)
//! 12      8     epoch the image advances the chain to
//! 20      8     base epoch: the image (full or partial) this one extends
//! 28      8     payload length in bytes
//! 36      n     payload: graph version, then count + dirty SubgraphIndexes
//! 36+n    4     CRC-32 of the payload
//! ```
//!
//! A partial image is *self-sufficient relative to its base*: because every
//! edge belongs to exactly one subgraph, the dirty subgraph images carry the
//! exact current weight of every edge that changed since the base, so recovery
//! patches the graph from them and slots the subgraph indexes into the index
//! recovered so far — no delta-log replay across the covered epochs. A broken
//! chain (corrupt or base-mismatched partial) is never fatal: the delta log is
//! pruned only against retained *full* checkpoints, so replay can always take
//! over where the chain stops.
//!
//! Images are written atomically: encode to `<name>.tmp`, `fsync` the
//! file, rename over the final name, `fsync` the directory. A crash mid-write
//! leaves either the previous image set untouched or a stray `.tmp` that
//! recovery ignores; it can never leave a half-written image under the real
//! name. File names embed the epoch zero-padded to 20 digits so lexicographic
//! order equals epoch order.

use crate::codec::{crc32, Reader, StoreCodec, Writer};
use crate::error::StoreError;
use ksp_core::dtlp::{DtlpIndex, SubgraphIndex};
use ksp_graph::DynamicGraph;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes identifying a (full) checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"KSPCKPT1";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Extension of completed (full) checkpoint files.
pub const CHECKPOINT_EXT: &str = "ckpt";
/// Magic bytes identifying a partial (incremental) image file.
pub const PARTIAL_MAGIC: [u8; 8] = *b"KSPPART1";
/// Current partial image format version.
pub const PARTIAL_VERSION: u32 = 1;
/// Extension of completed partial image files.
pub const PARTIAL_EXT: &str = "pckpt";

/// What an encoded/staged image is: a whole-pair snapshot or an incremental
/// image extending the image at `base_epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageKind {
    /// A self-contained `(graph, index)` snapshot.
    Full,
    /// Dirty subgraphs only, to be applied on top of the image at `base_epoch`.
    Partial {
        /// Epoch of the image this one extends.
        base_epoch: u64,
    },
}

/// A decoded checkpoint: the state the service runs from after recovery.
#[derive(Debug)]
pub struct Checkpoint {
    /// The epoch the pair is exact for.
    pub epoch: u64,
    /// The road network at that epoch.
    pub graph: DynamicGraph,
    /// The DTLP index maintained to exactly that epoch's weights.
    pub index: DtlpIndex,
}

/// A fully encoded checkpoint file image, ready to be committed to disk.
///
/// Encoding is the expensive part (it walks the whole graph and index), so it
/// is separated from [`write_checkpoint`]: a background checkpointer encodes
/// from `Arc`'d snapshots without holding any store lock, then commits the
/// bytes under the lock.
#[derive(Debug)]
pub struct EncodedCheckpoint {
    /// The epoch the image captures.
    pub epoch: u64,
    /// Full snapshot or incremental image.
    pub kind: ImageKind,
    bytes: Vec<u8>,
}

impl EncodedCheckpoint {
    /// Size of the encoded file image in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image is empty (it never is; for clippy's benefit).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The encoded file image, exactly as it would be written to disk. Lets
    /// a caller preserve (quarantine) an image whose staging or commit
    /// failed, for post-mortem inspection.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Encodes a (full) checkpoint file image for `(graph, index)` at `epoch`.
pub fn encode_checkpoint(epoch: u64, graph: &DynamicGraph, index: &DtlpIndex) -> EncodedCheckpoint {
    let mut payload = Writer::with_capacity(64 * 1024);
    graph.encode(&mut payload);
    index.encode(&mut payload);
    let payload = payload.into_bytes();

    let mut file = Writer::with_capacity(payload.len() + 32);
    file.put_bytes(&CHECKPOINT_MAGIC);
    file.put_u32(CHECKPOINT_VERSION);
    file.put_u64(epoch);
    file.put_u64(payload.len() as u64);
    file.put_bytes(&payload);
    file.put_u32(crc32(&payload));
    EncodedCheckpoint { epoch, kind: ImageKind::Full, bytes: file.into_bytes() }
}

/// Encodes a partial image at `epoch` extending the image at `base_epoch`,
/// containing the per-subgraph indexes named by `dirty` (ids referencing
/// subgraphs the index does not have are ignored). The image cost is
/// proportional to the dirty set, not the index.
pub fn encode_partial_checkpoint(
    epoch: u64,
    base_epoch: u64,
    graph: &DynamicGraph,
    index: &DtlpIndex,
    dirty: &[ksp_graph::SubgraphId],
) -> EncodedCheckpoint {
    let mut ids: Vec<ksp_graph::SubgraphId> =
        dirty.iter().copied().filter(|id| id.index() < index.num_subgraphs()).collect();
    ids.sort_unstable();
    ids.dedup();
    let mut payload = Writer::with_capacity(16 * 1024);
    payload.put_u64(graph.version());
    payload.put_u64(ids.len() as u64);
    for id in ids {
        index.subgraph_index(id).encode(&mut payload);
    }
    let payload = payload.into_bytes();

    let mut file = Writer::with_capacity(payload.len() + 40);
    file.put_bytes(&PARTIAL_MAGIC);
    file.put_u32(PARTIAL_VERSION);
    file.put_u64(epoch);
    file.put_u64(base_epoch);
    file.put_u64(payload.len() as u64);
    file.put_bytes(&payload);
    file.put_u32(crc32(&payload));
    EncodedCheckpoint { epoch, kind: ImageKind::Partial { base_epoch }, bytes: file.into_bytes() }
}

/// A decoded partial image.
#[derive(Debug)]
pub struct PartialCheckpoint {
    /// The epoch the image advances the chain to.
    pub epoch: u64,
    /// The image this one extends; applying it to any other state is invalid.
    pub base_epoch: u64,
    /// The graph version at `epoch` (the value recovery fast-forwards to).
    pub graph_version: u64,
    /// The dirty per-subgraph indexes, exactly as they were live at `epoch`.
    pub subgraph_indexes: Vec<Arc<SubgraphIndex>>,
}

/// The file name of the (full) checkpoint for `epoch`.
pub fn checkpoint_file_name(epoch: u64) -> String {
    format!("checkpoint-{epoch:020}.{CHECKPOINT_EXT}")
}

/// The file name of the partial image for `epoch`.
pub fn partial_file_name(epoch: u64) -> String {
    format!("partial-{epoch:020}.{PARTIAL_EXT}")
}

/// A checkpoint whose bytes are written and fsynced to a temp file but not
/// yet visible under the final name.
///
/// Staging is the slow half of a checkpoint commit (it writes and fsyncs the
/// whole image); [`promote_checkpoint`] is the fast half (rename + directory
/// fsync). A background checkpointer stages without any lock and takes the
/// store lock only to promote, so epoch publishes never wait on checkpoint
/// I/O.
#[derive(Debug)]
pub struct StagedCheckpoint {
    /// The epoch the staged image captures.
    pub epoch: u64,
    /// Full snapshot or incremental image (with its base epoch).
    pub kind: ImageKind,
    tmp_path: PathBuf,
    final_path: PathBuf,
}

impl StagedCheckpoint {
    /// Removes the staged temp file without committing it. Used when the
    /// store rejects the image at commit time (e.g. a partial whose base is
    /// no longer the newest image).
    pub fn discard(self) {
        let _ = fs::remove_file(&self.tmp_path);
    }
}

/// Writes an encoded checkpoint to a temp file in `dir` and fsyncs it.
///
/// The temp name carries a process-wide unique suffix: a background
/// checkpointer staging epoch E and a synchronous `checkpoint_now` at the
/// same epoch must never interleave writes into one file.
pub fn stage_checkpoint(
    dir: &Path,
    encoded: &EncodedCheckpoint,
) -> Result<StagedCheckpoint, StoreError> {
    stage_checkpoint_with_io(dir, encoded, &crate::io::default_io())
}

/// [`stage_checkpoint`] with an explicit I/O backend (fault injection).
pub fn stage_checkpoint_with_io(
    dir: &Path,
    encoded: &EncodedCheckpoint,
    io: &std::sync::Arc<dyn crate::io::StorageIo>,
) -> Result<StagedCheckpoint, StoreError> {
    static STAGE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = STAGE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let final_path = dir.join(match encoded.kind {
        ImageKind::Full => checkpoint_file_name(encoded.epoch),
        ImageKind::Partial { .. } => partial_file_name(encoded.epoch),
    });
    let tmp_path = final_path.with_extension(format!("tmp{seq}"));
    let staged = (|| {
        let mut file = fs::File::create(&tmp_path)
            .map_err(|e| StoreError::io(format!("creating {}", tmp_path.display()), e))?;
        io.write_all(crate::io::IoClass::CheckpointImage, &mut file, &encoded.bytes)
            .map_err(|e| StoreError::io(format!("writing {}", tmp_path.display()), e))?;
        io.sync_all(crate::io::IoClass::CheckpointImage, &file)
            .map_err(|e| StoreError::io(format!("fsyncing {}", tmp_path.display()), e))?;
        Ok(())
    })();
    if let Err(e) = staged {
        // Do not leak a (possibly huge) partial image — especially on ENOSPC,
        // where the leak would keep the disk full.
        let _ = fs::remove_file(&tmp_path);
        return Err(e);
    }
    Ok(StagedCheckpoint { epoch: encoded.epoch, kind: encoded.kind, tmp_path, final_path })
}

/// Renames a staged checkpoint into place and fsyncs the directory.
pub fn promote_checkpoint(dir: &Path, staged: StagedCheckpoint) -> Result<PathBuf, StoreError> {
    if let Err(e) = fs::rename(&staged.tmp_path, &staged.final_path) {
        let _ = fs::remove_file(&staged.tmp_path);
        return Err(StoreError::io(
            format!("renaming {} into place", staged.tmp_path.display()),
            e,
        ));
    }
    sync_dir(dir)?;
    Ok(staged.final_path)
}

/// Deletes stray `checkpoint-*.tmp*` / `partial-*.tmp*` files left by a crash
/// mid-stage. Returns how many were removed. Called on store create/recover;
/// staged files from the *running* process are never older than those calls.
pub(crate) fn sweep_stale_tmp_files(dir: &Path) -> Result<usize, StoreError> {
    let mut removed = 0;
    let entries =
        fs::read_dir(dir).map_err(|e| StoreError::io(format!("listing {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(format!("listing {}", dir.display()), e))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        let is_stale_tmp = (name.starts_with("checkpoint-") || name.starts_with("partial-"))
            && path.extension().and_then(|e| e.to_str()).is_some_and(|ext| ext.starts_with("tmp"));
        if is_stale_tmp {
            fs::remove_file(&path)
                .map_err(|e| StoreError::io(format!("deleting stale {}", path.display()), e))?;
            removed += 1;
        }
    }
    if removed > 0 {
        sync_dir(dir)?;
    }
    Ok(removed)
}

/// Atomically writes an encoded checkpoint into `dir`, returning its path.
pub fn write_checkpoint(dir: &Path, encoded: &EncodedCheckpoint) -> Result<PathBuf, StoreError> {
    let staged = stage_checkpoint(dir, encoded)?;
    promote_checkpoint(dir, staged)
}

/// Validates and decodes the checkpoint at `path`.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, StoreError> {
    let bytes = fs::read(path)
        .map_err(|e| StoreError::io(format!("reading checkpoint {}", path.display()), e))?;
    let mut r = Reader::new(&bytes);
    let magic =
        r.get_bytes(8).map_err(|_| StoreError::corrupt(path, "file shorter than header"))?;
    if magic != CHECKPOINT_MAGIC {
        return Err(StoreError::corrupt(path, "bad magic (not a checkpoint file)"));
    }
    let version = r.get_u32().map_err(|_| StoreError::corrupt(path, "file shorter than header"))?;
    if version != CHECKPOINT_VERSION {
        return Err(StoreError::corrupt(path, format!("unsupported format version {version}")));
    }
    let epoch = r.get_u64().map_err(|_| StoreError::corrupt(path, "file shorter than header"))?;
    let payload_len =
        r.get_u64().map_err(|_| StoreError::corrupt(path, "file shorter than header"))?;
    // Checked arithmetic: a corrupt length field must report corruption, not
    // overflow.
    if payload_len.saturating_add(4) != r.remaining() as u64 {
        return Err(StoreError::corrupt(
            path,
            format!(
                "payload length {payload_len} disagrees with file size ({} bytes after header)",
                r.remaining()
            ),
        ));
    }
    let payload_len = payload_len as usize;
    let payload = &bytes[bytes.len() - payload_len - 4..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(StoreError::corrupt(
            path,
            format!(
                "payload CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            ),
        ));
    }
    let mut payload_reader = Reader::new(payload);
    let graph = DynamicGraph::decode(&mut payload_reader)
        .map_err(|e| StoreError::corrupt(path, format!("graph decode: {e}")))?;
    let index = DtlpIndex::decode(&mut payload_reader)
        .map_err(|e| StoreError::corrupt(path, format!("index decode: {e}")))?;
    if !payload_reader.is_exhausted() {
        return Err(StoreError::corrupt(path, "trailing bytes after index"));
    }
    Ok(Checkpoint { epoch, graph, index })
}

/// Validates and decodes the partial image at `path`.
pub fn read_partial_checkpoint(path: &Path) -> Result<PartialCheckpoint, StoreError> {
    let bytes = fs::read(path)
        .map_err(|e| StoreError::io(format!("reading partial image {}", path.display()), e))?;
    let mut r = Reader::new(&bytes);
    let magic =
        r.get_bytes(8).map_err(|_| StoreError::corrupt(path, "file shorter than header"))?;
    if magic != PARTIAL_MAGIC {
        return Err(StoreError::corrupt(path, "bad magic (not a partial image)"));
    }
    let version = r.get_u32().map_err(|_| StoreError::corrupt(path, "file shorter than header"))?;
    if version != PARTIAL_VERSION {
        return Err(StoreError::corrupt(path, format!("unsupported format version {version}")));
    }
    let epoch = r.get_u64().map_err(|_| StoreError::corrupt(path, "file shorter than header"))?;
    let base_epoch =
        r.get_u64().map_err(|_| StoreError::corrupt(path, "file shorter than header"))?;
    let payload_len =
        r.get_u64().map_err(|_| StoreError::corrupt(path, "file shorter than header"))?;
    if payload_len.saturating_add(4) != r.remaining() as u64 {
        return Err(StoreError::corrupt(
            path,
            format!(
                "payload length {payload_len} disagrees with file size ({} bytes after header)",
                r.remaining()
            ),
        ));
    }
    if epoch <= base_epoch {
        return Err(StoreError::corrupt(
            path,
            format!("partial image at epoch {epoch} cannot extend base epoch {base_epoch}"),
        ));
    }
    let payload_len = payload_len as usize;
    let payload = &bytes[bytes.len() - payload_len - 4..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(StoreError::corrupt(
            path,
            format!(
                "payload CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            ),
        ));
    }
    let mut payload_reader = Reader::new(payload);
    let graph_version = payload_reader
        .get_u64()
        .map_err(|e| StoreError::corrupt(path, format!("graph version: {e}")))?;
    let subgraph_indexes = Vec::<Arc<SubgraphIndex>>::decode(&mut payload_reader)
        .map_err(|e| StoreError::corrupt(path, format!("subgraph index decode: {e}")))?;
    if !payload_reader.is_exhausted() {
        return Err(StoreError::corrupt(path, "trailing bytes after subgraph indexes"));
    }
    Ok(PartialCheckpoint { epoch, base_epoch, graph_version, subgraph_indexes })
}

fn list_by_name(dir: &Path, prefix: &str, ext: &str) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut found = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(|e| StoreError::io(format!("listing {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(format!("listing {}", dir.display()), e))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        let Some(epoch) = name
            .strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix(&format!(".{ext}")))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((epoch, path));
    }
    found.sort_unstable_by_key(|&(epoch, _)| epoch);
    Ok(found)
}

/// Lists the (full) checkpoints in `dir` as `(epoch, path)`, ascending by
/// epoch. Files that merely *look* like checkpoints are included; validity is
/// only established by [`read_checkpoint`].
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    list_by_name(dir, "checkpoint-", CHECKPOINT_EXT)
}

/// Lists the partial images in `dir` as `(epoch, path)`, ascending by epoch.
/// Validity (and chain membership) is only established by
/// [`read_partial_checkpoint`] against a recovered base.
pub fn list_partials(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    list_by_name(dir, "partial-", PARTIAL_EXT)
}

/// Fsyncs a directory so a just-renamed file survives a crash.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    let handle = fs::File::open(dir)
        .map_err(|e| StoreError::io(format!("opening directory {}", dir.display()), e))?;
    handle
        .sync_all()
        .map_err(|e| StoreError::io(format!("fsyncing directory {}", dir.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_core::dtlp::DtlpConfig;
    use ksp_graph::GraphBuilder;

    fn sample_pair() -> (DynamicGraph, DtlpIndex) {
        let mut b = GraphBuilder::undirected(9);
        for (u, v, w) in [
            (0, 1, 2),
            (1, 2, 1),
            (2, 3, 3),
            (3, 4, 1),
            (4, 5, 2),
            (5, 6, 1),
            (6, 7, 2),
            (7, 8, 1),
            (0, 8, 9),
        ] {
            b.edge(u, v, w);
        }
        let graph = b.build().unwrap();
        let index = DtlpIndex::build(&graph, DtlpConfig::new(4, 2)).unwrap();
        (graph, index)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ksp-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoint_write_read_round_trip() {
        let dir = temp_dir("ckpt-roundtrip");
        let (graph, index) = sample_pair();
        let encoded = encode_checkpoint(0, &graph, &index);
        let path = write_checkpoint(&dir, &encoded).unwrap();
        let restored = read_checkpoint(&path).unwrap();
        assert_eq!(restored.epoch, 0);
        assert_eq!(restored.graph.to_bytes(), graph.to_bytes());
        assert_eq!(restored.index.to_bytes(), index.to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_bit_fails_crc() {
        let dir = temp_dir("ckpt-crc");
        let (graph, index) = sample_pair();
        let path = write_checkpoint(&dir, &encode_checkpoint(3, &graph, &index)).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "got {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checkpoint_is_corrupt_not_panic() {
        let dir = temp_dir("ckpt-trunc");
        let (graph, index) = sample_pair();
        let path = write_checkpoint(&dir, &encode_checkpoint(1, &graph, &index)).unwrap();
        let bytes = fs::read(&path).unwrap();
        for keep in [0, 5, 20, bytes.len() / 2, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert!(matches!(read_checkpoint(&path), Err(StoreError::Corrupt { .. })));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_image_round_trip_carries_only_the_dirty_subgraphs() {
        let dir = temp_dir("partial-roundtrip");
        let (mut graph, index) = sample_pair();
        let mut index = index;
        // Dirty one subgraph.
        let edge = ksp_graph::EdgeId(0);
        let owner = index.owner_of_edge(edge);
        let batch = ksp_graph::UpdateBatch::new(vec![ksp_graph::WeightUpdate::new(
            edge,
            ksp_graph::Weight::new(3.75),
        )]);
        graph.apply_batch(&batch).unwrap();
        index.apply_batch(&batch).unwrap();

        let full = encode_checkpoint(1, &graph, &index);
        let partial = encode_partial_checkpoint(1, 0, &graph, &index, &[owner, owner]);
        assert!(partial.len() < full.len(), "a one-subgraph image must be smaller than a full one");

        let path = write_checkpoint(&dir, &partial).unwrap();
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), partial_file_name(1));
        let decoded = read_partial_checkpoint(&path).unwrap();
        assert_eq!(decoded.epoch, 1);
        assert_eq!(decoded.base_epoch, 0);
        assert_eq!(decoded.graph_version, graph.version());
        // Deduplicated: the repeated owner id yields one subgraph image.
        assert_eq!(decoded.subgraph_indexes.len(), 1);
        assert_eq!(decoded.subgraph_indexes[0].id(), owner);
        assert_eq!(decoded.subgraph_indexes[0].to_bytes(), index.subgraph_index(owner).to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_inverted_partial_images_are_rejected() {
        let dir = temp_dir("partial-corrupt");
        let (graph, index) = sample_pair();
        let encoded = encode_partial_checkpoint(2, 1, &graph, &index, &[ksp_graph::SubgraphId(0)]);
        let path = write_checkpoint(&dir, &encoded).unwrap();
        let bytes = fs::read(&path).unwrap();
        // A flipped payload bit fails the CRC.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x20;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(read_partial_checkpoint(&path), Err(StoreError::Corrupt { .. })));
        // Truncations are corruption, not panics.
        for keep in [0, 7, 20, bytes.len() / 2, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert!(matches!(read_partial_checkpoint(&path), Err(StoreError::Corrupt { .. })));
        }
        // An image whose epoch does not exceed its base can never chain.
        let inverted = encode_partial_checkpoint(1, 1, &graph, &index, &[]);
        let path = write_checkpoint(&dir, &inverted).unwrap();
        assert!(matches!(read_partial_checkpoint(&path), Err(StoreError::Corrupt { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn listing_orders_by_epoch_and_ignores_strays() {
        let dir = temp_dir("ckpt-list");
        let (graph, index) = sample_pair();
        for epoch in [7u64, 2, 11] {
            write_checkpoint(&dir, &encode_checkpoint(epoch, &graph, &index)).unwrap();
        }
        fs::write(dir.join("checkpoint-garbage.ckpt"), b"x").unwrap();
        fs::write(dir.join("notes.txt"), b"y").unwrap();
        fs::write(dir.join("checkpoint-00000000000000000005.tmp"), b"half").unwrap();
        let listed = list_checkpoints(&dir).unwrap();
        let epochs: Vec<u64> = listed.iter().map(|&(e, _)| e).collect();
        assert_eq!(epochs, vec![2, 7, 11]);
        let _ = fs::remove_dir_all(&dir);
    }
}
