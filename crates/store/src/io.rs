//! Pluggable storage I/O backend.
//!
//! Every write/fsync the store issues against a segment or checkpoint file
//! goes through a [`StorageIo`] implementation. The default, [`RealIo`], is
//! a zero-cost passthrough to `std::fs`. [`FaultyIo`] wraps a seeded
//! [`ksp_fault::FaultPlan`] and injects write errors, short writes, `ENOSPC`
//! and fsync failures on the plan's schedule — the storage half of the
//! chaos-test surface. Crash damage (torn tails, bit flips) is applied to
//! files *between* a simulated kill and the following recovery via
//! [`apply_crash_damage`], never by the live I/O path.

use ksp_fault::{FaultAction, FaultPlan, FaultPoint};
use std::fmt::Debug;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::Arc;

/// What kind of file (and which phase) an I/O operation belongs to — the
/// granularity at which faults can be aimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// A WAL segment header write (segment creation / rotation).
    WalHeader,
    /// A WAL record append or its commit fsync.
    WalRecord,
    /// A checkpoint image write (staging) or its fsync.
    CheckpointImage,
}

impl IoClass {
    fn write_point(self) -> FaultPoint {
        match self {
            IoClass::WalHeader | IoClass::WalRecord => FaultPoint::WalWrite,
            IoClass::CheckpointImage => FaultPoint::CheckpointWrite,
        }
    }

    fn sync_point(self) -> FaultPoint {
        match self {
            IoClass::WalHeader | IoClass::WalRecord => FaultPoint::WalFsync,
            IoClass::CheckpointImage => FaultPoint::CheckpointFsync,
        }
    }
}

/// The storage I/O boundary: everything the store does to file *contents*
/// that matters for durability. Metadata operations (create, rename, remove,
/// `set_len` rewinds) stay on `std::fs` — they are the repair paths, and a
/// fault injector that breaks the repairs tests nothing but itself.
pub trait StorageIo: Send + Sync + Debug {
    /// Writes `buf` to `file` (appending at its cursor), all or error.
    fn write_all(&self, class: IoClass, file: &mut fs::File, buf: &[u8]) -> io::Result<()>;
    /// Flushes file *data* to stable storage (`File::sync_data`).
    fn sync_data(&self, class: IoClass, file: &fs::File) -> io::Result<()>;
    /// Flushes file data and metadata to stable storage (`File::sync_all`).
    fn sync_all(&self, class: IoClass, file: &fs::File) -> io::Result<()>;
}

/// The default backend: straight through to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StorageIo for RealIo {
    fn write_all(&self, _class: IoClass, file: &mut fs::File, buf: &[u8]) -> io::Result<()> {
        file.write_all(buf)
    }

    fn sync_data(&self, _class: IoClass, file: &fs::File) -> io::Result<()> {
        file.sync_data()
    }

    fn sync_all(&self, _class: IoClass, file: &fs::File) -> io::Result<()> {
        file.sync_all()
    }
}

/// The default I/O handle ([`RealIo`]).
pub fn default_io() -> Arc<dyn StorageIo> {
    Arc::new(RealIo)
}

/// A fault-injecting backend driven by a seeded [`FaultPlan`].
///
/// Each operation consults the plan at the matching [`FaultPoint`]
/// (`WalWrite`/`WalFsync` for segment files, `CheckpointWrite`/
/// `CheckpointFsync` for images). Actions map as:
///
/// * `Fail` / `Enospc` — the operation fails without touching the file.
/// * `ShortWrite { keep }` — the first `keep` bytes are written, then the
///   operation fails: exactly the partial-append shape a crash leaves.
/// * `DelayMs { ms }` — the operation stalls, then succeeds.
/// * Anything else (crash-damage or network actions) is recorded by the plan
///   but the operation proceeds normally.
#[derive(Debug, Clone)]
pub struct FaultyIo {
    plan: FaultPlan,
}

impl FaultyIo {
    /// Wraps `plan` as a storage backend.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyIo { plan }
    }

    /// The underlying plan (shared, so counters and the log stay visible).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn faulted_sync(&self, point: FaultPoint, file: &fs::File, all: bool) -> io::Result<()> {
        match self.plan.next(point) {
            Some(FaultAction::DelayMs { ms }) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Some(
                action @ (FaultAction::Fail | FaultAction::Enospc | FaultAction::ShortWrite { .. }),
            ) => {
                return Err(action.to_io_error());
            }
            _ => {}
        }
        if all {
            file.sync_all()
        } else {
            file.sync_data()
        }
    }
}

impl StorageIo for FaultyIo {
    fn write_all(&self, class: IoClass, file: &mut fs::File, buf: &[u8]) -> io::Result<()> {
        match self.plan.next(class.write_point()) {
            Some(FaultAction::DelayMs { ms }) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Some(FaultAction::ShortWrite { keep }) => {
                let keep = keep.min(buf.len());
                file.write_all(&buf[..keep])?;
                return Err(FaultAction::ShortWrite { keep }.to_io_error());
            }
            Some(action @ (FaultAction::Fail | FaultAction::Enospc)) => {
                return Err(action.to_io_error());
            }
            _ => {}
        }
        file.write_all(buf)
    }

    fn sync_data(&self, class: IoClass, file: &fs::File) -> io::Result<()> {
        self.faulted_sync(class.sync_point(), file, false)
    }

    fn sync_all(&self, class: IoClass, file: &fs::File) -> io::Result<()> {
        self.faulted_sync(class.sync_point(), file, true)
    }
}

/// Applies post-crash damage to the file at `path`: [`FaultAction::TornTail`]
/// truncates `bytes` off the end (clamped to the file length);
/// [`FaultAction::BitFlip`] flips one bit `offset` bytes from the end. Other
/// actions are no-ops. Used by crash simulators between a simulated kill and
/// the following recovery.
pub fn apply_crash_damage(path: &Path, action: FaultAction) -> io::Result<()> {
    match action {
        FaultAction::TornTail { bytes } => {
            let len = fs::metadata(path)?.len();
            let keep = len.saturating_sub(bytes as u64);
            let file = fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(keep)?;
            file.sync_all()?;
        }
        FaultAction::BitFlip { offset } => {
            let mut bytes = fs::read(path)?;
            if bytes.is_empty() {
                return Ok(());
            }
            let i = bytes.len().saturating_sub(1 + offset.min(bytes.len() - 1));
            bytes[i] ^= 0x01;
            fs::write(path, &bytes)?;
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_fault::Schedule;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("ksp-io-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn faulty_io_short_write_persists_prefix() {
        let path = temp_file("short");
        let plan = FaultPlan::new(1);
        plan.arm(FaultPoint::WalWrite, Schedule::Nth(1), FaultAction::ShortWrite { keep: 3 });
        let io = FaultyIo::new(plan.clone());
        let mut file = fs::File::create(&path).unwrap();
        let err = io.write_all(IoClass::WalRecord, &mut file, b"abcdef").unwrap_err();
        assert!(err.to_string().contains("short_write"), "{err}");
        assert_eq!(fs::read(&path).unwrap(), b"abc");
        // The next write goes through untouched.
        io.write_all(IoClass::WalRecord, &mut file, b"xyz").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"abcxyz");
        assert_eq!(plan.injected_total(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn crash_damage_torn_tail_and_bit_flip() {
        let path = temp_file("damage");
        fs::write(&path, b"0123456789").unwrap();
        apply_crash_damage(&path, FaultAction::TornTail { bytes: 4 }).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"012345");
        apply_crash_damage(&path, FaultAction::BitFlip { offset: 0 }).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"012344"); // '5' ^ 0x01 == '4'
        let _ = fs::remove_file(&path);
    }
}
