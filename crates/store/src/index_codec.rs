//! [`StoreCodec`] implementations for the DTLP index.
//!
//! Only the *primary* state of the index is persisted: the per-subgraph
//! subgraphs (with live weights), the bounding-path sets with their
//! accumulated `current_distance` values, the last lower bound reported per
//! pair, the vertex/edge ownership tables and the configuration. Everything
//! else — the edge → paths backend, the unit-weight multisets, the skeleton
//! graph — is a deterministic function of that state and is rebuilt on decode
//! via [`SubgraphIndex::restore`] and [`DtlpIndex::assemble`]. Persisting the
//! accumulated floats (rather than recomputing distances from weights) is what
//! makes a recovered index answer queries bit-identically to the one that was
//! checkpointed: incremental maintenance applies deltas, and replaying those
//! deltas from a recomputed baseline could drift in the last ulp.

use crate::codec::{encode_slice, Reader, StoreCodec, Writer};
use crate::error::CodecError;
use ksp_core::dtlp::{
    BackendKind, BoundingPath, BoundingPathSet, DtlpConfig, DtlpIndex, SubgraphIndex,
};
use ksp_graph::{Subgraph, SubgraphId, VertexId, Weight};
use std::collections::HashMap;
use std::sync::Arc;

/// The index holds its per-subgraph entries as shared COW handles; on disk a
/// handle is just its pointee (decode re-wraps, sharing nothing with anyone).
impl StoreCodec for Arc<SubgraphIndex> {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Arc::new(SubgraphIndex::decode(r)?))
    }
}

impl StoreCodec for BackendKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            BackendKind::EpIndex => 0,
            BackendKind::MfpTree => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(BackendKind::EpIndex),
            1 => Ok(BackendKind::MfpTree),
            tag => Err(CodecError::InvalidTag { what: "BackendKind", tag }),
        }
    }
}

impl StoreCodec for DtlpConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.max_subgraph_vertices as u64);
        w.put_u64(self.xi as u64);
        w.put_u64(self.max_enumerated_per_pair as u64);
        self.backend.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DtlpConfig {
            max_subgraph_vertices: r.get_u64()? as usize,
            xi: r.get_u64()? as usize,
            max_enumerated_per_pair: r.get_u64()? as usize,
            backend: BackendKind::decode(r)?,
        })
    }
}

impl StoreCodec for BoundingPath {
    fn encode(&self, w: &mut Writer) {
        self.vertices.encode(w);
        w.put_u64(self.vfrags);
        self.current_distance.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let vertices = Vec::<VertexId>::decode(r)?;
        if vertices.len() < 2 {
            return Err(CodecError::InvalidValue("a bounding path joins two distinct vertices"));
        }
        let vfrags = r.get_u64()?;
        let current_distance = Weight::decode(r)?;
        Ok(BoundingPath { vertices, vfrags, current_distance })
    }
}

impl StoreCodec for BoundingPathSet {
    fn encode(&self, w: &mut Writer) {
        self.a.encode(w);
        self.b.encode(w);
        self.paths.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BoundingPathSet {
            a: VertexId::decode(r)?,
            b: VertexId::decode(r)?,
            paths: Vec::decode(r)?,
        })
    }
}

impl StoreCodec for SubgraphIndex {
    fn encode(&self, w: &mut Writer) {
        self.subgraph().encode(w);
        encode_slice(self.pairs(), w);
        encode_slice(self.last_lower_bounds(), w);
        self.backend_kind().encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let subgraph = Subgraph::decode(r)?;
        let pairs = Vec::<BoundingPathSet>::decode(r)?;
        let last_lbd = Vec::<Weight>::decode(r)?;
        let backend = BackendKind::decode(r)?;
        if pairs.len() != last_lbd.len() {
            return Err(CodecError::InvalidValue("pair table and lower-bound table disagree"));
        }
        Ok(SubgraphIndex::restore(subgraph, pairs, last_lbd, backend))
    }
}

impl StoreCodec for DtlpIndex {
    fn encode(&self, w: &mut Writer) {
        self.config().encode(w);
        self.is_directed().encode(w);
        encode_slice(self.subgraph_indexes(), w);
        // Vertex memberships, sorted by vertex id for a canonical encoding
        // (the map iterates in hash order). Per-vertex membership order is
        // preserved verbatim: it determines refine-step candidate order.
        let mut memberships: Vec<(VertexId, &[SubgraphId])> = self.vertex_memberships().collect();
        memberships.sort_unstable_by_key(|(v, _)| *v);
        w.put_u64(memberships.len() as u64);
        for (v, sgs) in &memberships {
            v.encode(w);
            encode_slice(sgs, w);
        }
        encode_slice(self.edge_owners(), w);
        encode_slice(self.boundary_vertices(), w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let config = DtlpConfig::decode(r)?;
        let directed = bool::decode(r)?;
        let subgraph_indexes = Vec::<Arc<SubgraphIndex>>::decode(r)?;
        let num_memberships = r.get_count(12)?; // vertex id + empty-list length
        let mut vertex_subgraphs = HashMap::with_capacity(num_memberships);
        for _ in 0..num_memberships {
            let v = VertexId::decode(r)?;
            let sgs = Vec::<SubgraphId>::decode(r)?;
            vertex_subgraphs.insert(v, sgs);
        }
        let edge_owner = Vec::<SubgraphId>::decode(r)?;
        let boundary = Vec::<VertexId>::decode(r)?;
        let num_subgraphs = subgraph_indexes.len() as u32;
        if edge_owner.iter().any(|sg| sg.0 >= num_subgraphs) {
            return Err(CodecError::InvalidValue("edge owner references unknown subgraph"));
        }
        Ok(DtlpIndex::assemble_shared(
            config,
            directed,
            subgraph_indexes,
            vertex_subgraphs,
            edge_owner,
            boundary,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::{DynamicGraph, GraphBuilder, UpdateBatch, WeightUpdate};

    fn grid_graph(n: usize) -> DynamicGraph {
        // An n x n grid with varied initial weights: enough structure for a
        // multi-subgraph partition without workload-crate dependencies here.
        let side = n as u32;
        let mut b = GraphBuilder::undirected(n * n);
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.edge(v, v + 1, 1 + (v % 4));
                }
                if r + 1 < side {
                    b.edge(v, v + side, 1 + ((v + 1) % 3));
                }
            }
        }
        b.build().unwrap()
    }

    fn perturb(graph: &mut DynamicGraph, index: &mut DtlpIndex, seed: u64) {
        let updates: Vec<WeightUpdate> = graph
            .edge_ids()
            .filter(|e| (e.0 as u64 + seed).is_multiple_of(3))
            .map(|e| {
                let w = graph.initial_weight(e) as f64;
                WeightUpdate::new(e, ksp_graph::Weight::new(w * (0.25 + (seed as f64 % 3.0))))
            })
            .collect();
        let batch = UpdateBatch::new(updates);
        graph.apply_batch(&batch).unwrap();
        index.apply_batch(&batch).unwrap();
    }

    #[test]
    fn index_round_trip_is_byte_identical_after_updates() {
        let mut graph = grid_graph(8);
        let mut index = DtlpIndex::build(&graph, DtlpConfig::new(12, 2)).unwrap();
        for seed in 1..4 {
            perturb(&mut graph, &mut index, seed);
        }
        let bytes = index.to_bytes();
        let decoded = DtlpIndex::from_bytes(&bytes).unwrap();
        // The canonical encoding of the restored index equals the original's.
        assert_eq!(decoded.to_bytes(), bytes);
        // Structural agreement.
        assert_eq!(decoded.num_subgraphs(), index.num_subgraphs());
        assert_eq!(decoded.boundary_vertices(), index.boundary_vertices());
        assert_eq!(decoded.edge_owners(), index.edge_owners());
        assert_eq!(decoded.skeleton().num_skeleton_edges(), index.skeleton().num_skeleton_edges());
        // Skeleton weights agree exactly (not just within epsilon).
        for e in index.skeleton().edges() {
            let restored = decoded.skeleton().skeleton_edge_weight(e.a, e.b).unwrap();
            assert_eq!(restored.value().to_bits(), e.weight().value().to_bits());
        }
    }

    #[test]
    fn restored_index_continues_maintenance_identically() {
        let mut graph = grid_graph(6);
        let mut index = DtlpIndex::build(&graph, DtlpConfig::new(10, 2)).unwrap();
        perturb(&mut graph, &mut index, 1);

        let mut restored = DtlpIndex::from_bytes(&index.to_bytes()).unwrap();
        // Apply the same follow-up batch to both and compare encodings again:
        // maintenance from the restored state must not diverge.
        let mut graph2 = graph.clone();
        perturb(&mut graph, &mut index, 2);
        perturb(&mut graph2, &mut restored, 2);
        assert_eq!(restored.to_bytes(), index.to_bytes());
    }

    #[test]
    fn mfp_backend_round_trips_too() {
        let graph = grid_graph(5);
        let index = DtlpIndex::build(&graph, DtlpConfig::new(8, 2).with_mfp_backend()).unwrap();
        let decoded = DtlpIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(decoded.config().backend, BackendKind::MfpTree);
        assert_eq!(decoded.to_bytes(), index.to_bytes());
    }

    #[test]
    fn corrupt_edge_owner_is_rejected() {
        let graph = grid_graph(4);
        let index = DtlpIndex::build(&graph, DtlpConfig::new(6, 1)).unwrap();
        let mut bytes = index.to_bytes();
        // The boundary list is the final field: u64 count + 4 bytes per entry.
        // The 4 bytes just before it hold the last edge-owner id; blast them.
        let boundary_bytes = 8 + index.boundary_vertices().len() * 4;
        let owner_end = bytes.len() - boundary_bytes;
        bytes[owner_end - 4..owner_end].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            DtlpIndex::from_bytes(&bytes),
            Err(CodecError::InvalidValue("edge owner references unknown subgraph"))
        ));
    }
}
