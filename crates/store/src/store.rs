//! The store: a directory holding checkpoints and the epoch delta log.
//!
//! Lifecycle:
//!
//! * [`Store::create`] initialises a directory with a checkpoint of the
//!   starting `(graph, index)` pair and an empty log positioned after it.
//! * [`Store::log_batch`] appends one published batch per epoch,
//!   fsync-on-commit, so every acknowledged publish survives a crash.
//! * [`Store::checkpoint`] (or the encode/commit split used by background
//!   checkpointers) captures the current pair, rotates the log, and prunes
//!   segments the new checkpoint made redundant — the log stays bounded.
//! * [`Store::recover`] loads the newest *valid* checkpoint (corrupt ones are
//!   skipped, newest first), replays the log records after it, truncates any
//!   torn tail, and returns a ready `(graph, index, epoch)` triple.
//! * [`Store::verify`] recomputes every CRC and reports file-level health
//!   without modifying anything — the operator's integrity check.

use crate::checkpoint::{
    encode_checkpoint, encode_partial_checkpoint, list_checkpoints, list_partials,
    promote_checkpoint, read_checkpoint, read_partial_checkpoint, stage_checkpoint,
    sweep_stale_tmp_files, write_checkpoint, EncodedCheckpoint, ImageKind, StagedCheckpoint,
};
use crate::error::StoreError;
use crate::io::{default_io, StorageIo};
use crate::wal::{
    list_segments, remove_headerless_tail_segment, remove_zero_length_segments, scan_segment,
    AppendTimings, DeltaLog, SyncPolicy,
};
use ksp_core::dtlp::DtlpIndex;
use ksp_graph::{DynamicGraph, UpdateBatch};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Tunables of a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Take a checkpoint every this many epochs (0 disables automatic
    /// checkpointing; the log then grows until [`Store::checkpoint`] is called
    /// explicitly). Consulted by callers via [`StoreConfig::is_checkpoint_epoch`];
    /// the store itself never checkpoints spontaneously.
    pub checkpoint_interval: u64,
    /// Rotate the log to a fresh segment after this many records.
    pub segment_max_records: u64,
    /// How many of the newest checkpoints to keep after each commit (minimum
    /// 1). More than one gives [`Store::recover`] an older checkpoint to fall
    /// back to if the newest turns out corrupt; without retention the
    /// directory would grow by one full checkpoint per interval forever.
    pub retain_checkpoints: u32,
    /// How many *incremental* (partial) images may be committed between two
    /// full checkpoints — the rebase policy. With interval `n`, every image
    /// chain is `full, partial × ≤n, full, …`: partials keep the periodic
    /// checkpoint cost proportional to the subgraphs dirtied since the last
    /// image, and the periodic full rebase bounds both chain length at
    /// recovery and the lifetime of any single full image. `0` disables
    /// incremental images (every checkpoint is full — the pre-incremental
    /// behaviour).
    pub full_rebase_interval: u32,
    /// Whether appends fsync before returning.
    pub sync: SyncPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            checkpoint_interval: 32,
            segment_max_records: 1024,
            retain_checkpoints: 2,
            full_rebase_interval: 3,
            sync: SyncPolicy::Always,
        }
    }
}

impl StoreConfig {
    /// Whether a service publishing `epoch` should trigger a checkpoint.
    pub fn is_checkpoint_epoch(&self, epoch: u64) -> bool {
        self.checkpoint_interval > 0 && epoch > 0 && epoch.is_multiple_of(self.checkpoint_interval)
    }
}

/// The file set a replication follower fetches to bootstrap past a pruned
/// log window: produced by [`Store::snapshot_manifest`], transferred chunk by
/// chunk via [`Store::read_image_chunk`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotManifest {
    /// The epoch the manifest's images recover to when the chain is intact.
    pub snapshot_epoch: u64,
    /// `(bare file name, total length in bytes)`, in recovery order: the
    /// full checkpoint first, then its partial chain ascending.
    pub files: Vec<(String, u64)>,
}

/// Whether `name` is the bare file name of a checkpoint or partial image —
/// the only files [`Store::read_image_chunk`] serves.
fn is_image_file_name(name: &str) -> bool {
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    let full = name
        .strip_prefix("checkpoint-")
        .and_then(|rest| rest.strip_suffix(".ckpt"))
        .is_some_and(digits);
    let partial = name
        .strip_prefix("partial-")
        .and_then(|rest| rest.strip_suffix(".pckpt"))
        .is_some_and(digits);
    full || partial
}

/// One manifest row for the image file at `path`.
fn manifest_entry(path: &Path) -> Result<(String, u64), StoreError> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::corrupt(path, "image file has no utf-8 name"))?
        .to_string();
    let len = fs::metadata(path)
        .map_err(|e| StoreError::io(format!("inspecting {}", path.display()), e))?
        .len();
    Ok((name, len))
}

/// What [`Store::recover`] went through to produce its state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the (full) checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// Number of partial images applied on top of the full checkpoint before
    /// log replay took over.
    pub partial_images_applied: usize,
    /// Number of logged batches replayed on top of the newest applied image.
    pub batches_replayed: usize,
    /// Bytes of torn log tail dropped (0 for a clean shutdown).
    pub torn_bytes_dropped: u64,
    /// Corrupt checkpoint files that were skipped while searching for a valid
    /// one (newest first).
    pub corrupt_checkpoints_skipped: usize,
    /// Zero-length segment files removed (a crash between a segment file's
    /// creation and its header write leaves one; it can hold no records).
    pub empty_segments_skipped: u64,
    /// Wall time recovery took, lock acquisition to ready-to-append.
    pub duration: std::time::Duration,
}

impl RecoveryReport {
    /// The recovery trajectory as ordered `(step-name, step-code, value)`
    /// triples, in the order recovery performed them — the shape event
    /// streams (e.g. the observability flight recorder) consume. The step
    /// codes are stable: 0 checkpoint loaded (value = epoch), 1 partial
    /// images applied, 2 batches replayed, 3 torn bytes dropped, 4 corrupt
    /// checkpoints skipped, 6 empty segment files skipped (code 5 is
    /// reserved by the serving layer for its recovery-completed marker).
    pub fn steps(&self) -> Vec<(&'static str, u64, u64)> {
        vec![
            ("checkpoint_loaded", 0, self.checkpoint_epoch),
            ("partial_images_applied", 1, self.partial_images_applied as u64),
            ("batches_replayed", 2, self.batches_replayed as u64),
            ("torn_bytes_dropped", 3, self.torn_bytes_dropped),
            ("corrupt_checkpoints_skipped", 4, self.corrupt_checkpoints_skipped as u64),
            ("empty_segments_skipped", 6, self.empty_segments_skipped),
        ]
    }
}

/// The state [`Store::recover`] hands back: exactly what the live service held
/// at the recovered epoch.
#[derive(Debug)]
pub struct Recovered {
    /// The road network at the recovered epoch.
    pub graph: DynamicGraph,
    /// The DTLP index maintained to that epoch.
    pub index: DtlpIndex,
    /// The recovered epoch (== `graph.version()`).
    pub epoch: u64,
    /// Subgraphs dirtied by the log batches replayed on top of the newest
    /// applied image (sorted, deduplicated). These epochs are durable in the
    /// log but *not* covered by any on-disk image, so the next incremental
    /// image must include them — a resumed checkpointer that ignored them
    /// would write a chain that silently under-covers the replayed epochs.
    pub replayed_dirty: Vec<ksp_graph::SubgraphId>,
    /// How recovery got there.
    pub report: RecoveryReport,
}

/// Per-file outcome of [`Store::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCheck {
    /// The file that was checked.
    pub path: PathBuf,
    /// `Ok` for a clean file, otherwise what is wrong with it.
    pub status: Result<String, String>,
}

/// The integrity report of [`Store::verify`].
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// One entry per checkpoint, partial image and segment file examined.
    pub files: Vec<FileCheck>,
    /// Number of valid (full) checkpoints.
    pub valid_checkpoints: usize,
    /// Number of corrupt (full) checkpoints.
    pub corrupt_checkpoints: usize,
    /// Number of partial images that decode cleanly. (Whether each one's
    /// chain applies depends on which base image recovery loads; a valid but
    /// chain-broken partial only costs replay time, never recoverability.)
    pub valid_partials: usize,
    /// Number of corrupt partial images.
    pub corrupt_partials: usize,
    /// Total intact log records across all segments.
    pub intact_records: u64,
    /// Total torn/corrupt bytes found in segment tails.
    pub torn_bytes: u64,
    /// Whether the store can recover: at least one valid checkpoint and no
    /// damage other than a single torn tail in the newest segment.
    pub recoverable: bool,
}

impl VerifyReport {
    /// Renders the report as operator-readable lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for check in &self.files {
            match &check.status {
                Ok(detail) => {
                    let _ = writeln!(out, "ok      {}  {detail}", check.path.display());
                }
                Err(detail) => {
                    let _ = writeln!(out, "DAMAGED {}  {detail}", check.path.display());
                }
            }
        }
        let _ = writeln!(
            out,
            "{} valid / {} corrupt checkpoint(s), {} valid / {} corrupt partial image(s), \
             {} intact log record(s), {} torn byte(s): {}",
            self.valid_checkpoints,
            self.corrupt_checkpoints,
            self.valid_partials,
            self.corrupt_partials,
            self.intact_records,
            self.torn_bytes,
            if self.recoverable { "RECOVERABLE" } else { "NOT RECOVERABLE" }
        );
        out
    }
}

/// Exclusive ownership of a store directory, backed by a pid-stamped
/// `store.lock` file. Two processes appending to the same log or sweeping
/// each other's staged checkpoints would corrupt the store; the lock makes
/// the second opener fail loudly instead. A lock left by a crashed process
/// (its pid no longer alive) is reclaimed automatically, so the lock never
/// blocks the crash recovery it exists to protect.
#[derive(Debug)]
struct DirLock {
    path: PathBuf,
}

impl DirLock {
    const FILE_NAME: &'static str = "store.lock";

    fn acquire(dir: &Path) -> Result<DirLock, StoreError> {
        let path = dir.join(Self::FILE_NAME);
        let pid = std::process::id();
        // Publish the pid atomically: write it to a private file, then
        // hard-link that file to the lock name. Linking fails if the lock
        // exists, and a visible lock always carries its holder's pid — no
        // window where a concurrent opener reads an empty lock and
        // misclassifies a live holder as stale.
        let tmp = dir.join(format!("{}.claim-{pid}", Self::FILE_NAME));
        fs::write(&tmp, pid.to_string())
            .map_err(|e| StoreError::io(format!("writing lock claim {}", tmp.display()), e))?;
        // Two attempts: the second runs after a stale lock was cleared.
        let result = (|| {
            for _ in 0..2 {
                match fs::hard_link(&tmp, &path) {
                    Ok(()) => return Ok(DirLock { path: path.clone() }),
                    Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                        let holder = fs::read_to_string(&path)
                            .ok()
                            .and_then(|s| s.trim().parse::<u32>().ok());
                        // Our own pid is alive too: a same-process lock means
                        // another live Store instance holds this directory.
                        if let Some(pid) = holder {
                            if Self::process_alive(pid) {
                                return Err(StoreError::corrupt(
                                    &path,
                                    format!("store is locked by running process {pid}"),
                                ));
                            }
                        }
                        // Dead (or unparseable, hence foreign/corrupt)
                        // holder: reclaim and retry once.
                        fs::remove_file(&path).map_err(|e| {
                            StoreError::io(format!("clearing stale lock {}", path.display()), e)
                        })?;
                    }
                    Err(e) => {
                        return Err(StoreError::io(format!("creating lock {}", path.display()), e))
                    }
                }
            }
            Err(StoreError::corrupt(&path, "could not acquire store lock"))
        })();
        let _ = fs::remove_file(&tmp);
        result
    }

    #[cfg(target_os = "linux")]
    fn process_alive(pid: u32) -> bool {
        fs::metadata(format!("/proc/{pid}")).is_ok()
    }

    #[cfg(not(target_os = "linux"))]
    fn process_alive(_pid: u32) -> bool {
        // No cheap liveness probe: err on the safe side and treat the
        // holder as alive (a stale lock then needs manual removal).
        true
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// A durable checkpoint + delta-log store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    log: DeltaLog,
    /// Epoch of the newest on-disk *full* checkpoint (drives pruning).
    last_checkpoint_epoch: u64,
    /// Epoch of the newest on-disk image of any kind — the base the next
    /// partial image must extend.
    last_image_epoch: u64,
    /// Length of the current partial chain (images since the last full
    /// checkpoint); drives the rebase policy.
    partials_since_full: u32,
    /// The I/O backend content writes/fsyncs go through (real files by
    /// default; a fault injector under test).
    io: Arc<dyn StorageIo>,
    /// Held for the store's lifetime; released (deleted) on drop.
    _lock: DirLock,
}

impl Store {
    /// Initialises `dir` (created if missing) with a checkpoint of the given
    /// pair at `epoch` and an empty log expecting `epoch + 1` next.
    ///
    /// Fails if the directory already contains a store (use [`Store::recover`]
    /// for that) — silently overwriting an existing store would defeat its
    /// purpose.
    pub fn create(
        dir: &Path,
        config: StoreConfig,
        epoch: u64,
        graph: &DynamicGraph,
        index: &DtlpIndex,
    ) -> Result<Store, StoreError> {
        Self::create_with_io(dir, config, epoch, graph, index, default_io())
    }

    /// [`Store::create`] with an explicit I/O backend (fault injection).
    pub fn create_with_io(
        dir: &Path,
        config: StoreConfig,
        epoch: u64,
        graph: &DynamicGraph,
        index: &DtlpIndex,
        io: Arc<dyn StorageIo>,
    ) -> Result<Store, StoreError> {
        fs::create_dir_all(dir)
            .map_err(|e| StoreError::io(format!("creating {}", dir.display()), e))?;
        let lock = DirLock::acquire(dir)?;
        if Store::exists(dir)? {
            return Err(StoreError::corrupt(dir, "directory already contains a store"));
        }
        sweep_stale_tmp_files(dir)?;
        write_checkpoint(dir, &encode_checkpoint(epoch, graph, index))?;
        let log = DeltaLog::create_with_io(
            dir,
            epoch + 1,
            config.sync,
            config.segment_max_records,
            Arc::clone(&io),
        )?;
        Ok(Store {
            dir: dir.to_path_buf(),
            config,
            log,
            last_checkpoint_epoch: epoch,
            last_image_epoch: epoch,
            partials_since_full: 0,
            io,
            _lock: lock,
        })
    }

    /// Whether `dir` contains (at least the beginnings of) a store.
    pub fn exists(dir: &Path) -> Result<bool, StoreError> {
        if !dir.is_dir() {
            return Ok(false);
        }
        Ok(!list_checkpoints(dir)?.is_empty()
            || !list_partials(dir)?.is_empty()
            || !list_segments(dir)?.is_empty())
    }

    /// Recovers the newest consistent state from `dir`: loads the newest valid
    /// checkpoint, replays every logged batch after it (truncating a torn
    /// tail), and returns the store ready to append the next epoch.
    pub fn recover(dir: &Path, config: StoreConfig) -> Result<(Store, Recovered), StoreError> {
        Self::recover_with_io(dir, config, default_io())
    }

    /// [`Store::recover`] with an explicit I/O backend (fault injection).
    pub fn recover_with_io(
        dir: &Path,
        config: StoreConfig,
        io: Arc<dyn StorageIo>,
    ) -> Result<(Store, Recovered), StoreError> {
        // Exclusive ownership first: a second live opener must fail here,
        // before any repair below can disturb the owner's in-flight state.
        let recovery_started = std::time::Instant::now();
        let lock = DirLock::acquire(dir)?;
        // Clean up three crash windows before looking at anything else:
        // staged checkpoint temp files, a segment file created but never
        // given a header (zero length — it can hold no records, but scanned
        // it would poison the chain walk), and a rotation that died before
        // its segment header became durable.
        sweep_stale_tmp_files(dir)?;
        let empty_segments_skipped = remove_zero_length_segments(dir)?;
        let headerless_bytes = remove_headerless_tail_segment(dir)?;
        let mut checkpoints = list_checkpoints(dir)?;
        if checkpoints.is_empty() {
            return Err(StoreError::NoCheckpoint { dir: dir.to_path_buf() });
        }
        // Newest first; skip (but count) corrupt checkpoints.
        checkpoints.reverse();
        let mut corrupt_skipped = 0;
        let mut loaded = None;
        for (epoch, path) in &checkpoints {
            match read_checkpoint(path) {
                // The epoch header is outside CRC coverage, so a name/header
                // mismatch is corruption like any other: skip to the next
                // candidate instead of aborting (the retained older
                // checkpoint exists for exactly this case).
                Ok(checkpoint) if checkpoint.epoch != *epoch => corrupt_skipped += 1,
                Ok(checkpoint) => {
                    loaded = Some(checkpoint);
                    break;
                }
                Err(StoreError::Io { context, source }) => {
                    return Err(StoreError::Io { context, source });
                }
                Err(_) => corrupt_skipped += 1,
            }
        }
        let Some(checkpoint) = loaded else {
            return Err(StoreError::NoCheckpoint { dir: dir.to_path_buf() });
        };

        let mut graph = checkpoint.graph;
        let mut index = checkpoint.index;
        let checkpoint_epoch = checkpoint.epoch;

        // Walk the partial-image chain rooted at the loaded checkpoint. An
        // image that does not extend the chain exactly — corrupt, based on an
        // image recovery did not load (e.g. after falling back past a rotten
        // full checkpoint), or decodable but inconsistent with the recovered
        // pair (ids out of range) — ends the chain *without* failing
        // recovery; the delta log, which is pruned only against retained full
        // checkpoints, replays the rest. Nothing is applied per image: the
        // walk only collects the newest replacement per subgraph id, so the
        // single application below costs one skeleton derivation regardless
        // of chain length, and a break mid-walk can never leave the graph or
        // index half-patched.
        let mut chain_epoch = checkpoint_epoch;
        let mut chain_version = None;
        let mut partial_images_applied = 0;
        let mut replacements: std::collections::BTreeMap<ksp_graph::SubgraphId, _> =
            std::collections::BTreeMap::new();
        'chain: for (partial_epoch, path) in list_partials(dir)? {
            if partial_epoch <= chain_epoch {
                continue; // superseded by the chain so far
            }
            let Ok(partial) = read_partial_checkpoint(&path) else { break };
            if partial.base_epoch != chain_epoch {
                break;
            }
            for si in &partial.subgraph_indexes {
                let subgraph_ok = si.id().index() < index.num_subgraphs();
                let edges_ok =
                    si.subgraph().edges().iter().all(|e| e.global_id.index() < graph.num_edges());
                if !subgraph_ok || !edges_ok {
                    break 'chain; // foreign or inconsistent image: replay instead
                }
            }
            for si in partial.subgraph_indexes {
                replacements.insert(si.id(), si);
            }
            chain_epoch = partial.epoch;
            chain_version = Some(partial.graph_version);
            partial_images_applied += 1;
        }
        if let Some(version) = chain_version {
            // Later images supersede earlier ones per subgraph, and every
            // edge belongs to exactly one subgraph, so the newest replacement
            // set carries the final weight of every edge the chain touched.
            let weights: Vec<_> = replacements
                .values()
                .flat_map(|si| {
                    si.subgraph().edges().iter().map(|e| (e.global_id, e.current_weight))
                })
                .collect();
            // Ids were validated image by image above, so these cannot fail
            // on well-formed input; an error here is a real invariant breach
            // and failing closed beats serving a half-applied chain.
            graph.restore_weights(weights, version).map_err(|e| {
                StoreError::corrupt(dir, format!("applying partial image chain: {e}"))
            })?;
            index = index.with_replaced_subgraphs(replacements.into_values().collect()).map_err(
                |e| StoreError::corrupt(dir, format!("applying partial image chain: {e}")),
            )?;
        }

        let (log, records, torn_bytes) = if list_segments(dir)?.is_empty() {
            // A store that crashed between its first checkpoint and the log
            // creation; start a fresh log after the newest applied image.
            let log = DeltaLog::create_with_io(
                dir,
                chain_epoch + 1,
                config.sync,
                config.segment_max_records,
                Arc::clone(&io),
            )?;
            (log, Vec::new(), 0)
        } else {
            DeltaLog::open_dir_with_io(
                dir,
                config.sync,
                config.segment_max_records,
                Arc::clone(&io),
            )?
        };

        let mut batches_replayed = 0;
        let mut replayed_dirty: Vec<ksp_graph::SubgraphId> = Vec::new();
        for record in &records {
            if record.epoch <= chain_epoch {
                continue; // covered by an applied image; kept only until pruning
            }
            if record.epoch != graph.version() + 1 {
                return Err(StoreError::corrupt(
                    dir,
                    format!(
                        "log record for epoch {} cannot extend recovered epoch {}",
                        record.epoch,
                        graph.version()
                    ),
                ));
            }
            graph.apply_batch(&record.batch).map_err(|e| {
                StoreError::corrupt(dir, format!("replaying epoch {}: {e}", record.epoch))
            })?;
            let stats = index.apply_batch(&record.batch).map_err(|e| {
                StoreError::corrupt(
                    dir,
                    format!("replaying epoch {} into index: {e}", record.epoch),
                )
            })?;
            replayed_dirty.extend(stats.dirty_subgraphs);
            batches_replayed += 1;
        }
        replayed_dirty.sort_unstable();
        replayed_dirty.dedup();
        let epoch = graph.version();
        // The log must resume exactly where the recovered state ends; a gap
        // means acknowledged batches are missing (e.g. the checkpoint they
        // relied on was lost after its log records were pruned). Failing
        // closed here beats a "successful" recovery that silently dropped
        // durable epochs and can never log another batch.
        if log.next_epoch() != epoch + 1 {
            return Err(StoreError::corrupt(
                dir,
                format!(
                    "log resumes at epoch {} but recovered state ends at epoch {epoch}; \
                     acknowledged batches are missing",
                    log.next_epoch()
                ),
            ));
        }
        let report = RecoveryReport {
            checkpoint_epoch,
            partial_images_applied,
            batches_replayed,
            torn_bytes_dropped: torn_bytes + headerless_bytes,
            corrupt_checkpoints_skipped: corrupt_skipped,
            empty_segments_skipped,
            duration: recovery_started.elapsed(),
        };
        let store = Store {
            dir: dir.to_path_buf(),
            config,
            log,
            last_checkpoint_epoch: checkpoint_epoch,
            last_image_epoch: chain_epoch,
            partials_since_full: partial_images_applied as u32,
            io,
            _lock: lock,
        };
        Ok((store, Recovered { graph, index, epoch, replayed_dirty, report }))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Epoch of the newest committed *full* checkpoint.
    pub fn last_checkpoint_epoch(&self) -> u64 {
        self.last_checkpoint_epoch
    }

    /// Epoch of the newest committed image of any kind — the base epoch the
    /// next partial image must be encoded against.
    pub fn last_image_epoch(&self) -> u64 {
        self.last_image_epoch
    }

    /// Length of the current partial chain (images since the last full
    /// checkpoint).
    pub fn partials_since_full(&self) -> u32 {
        self.partials_since_full
    }

    /// Whether the rebase policy requires the next image to be a full
    /// checkpoint: incremental images are disabled, or the partial chain has
    /// reached [`StoreConfig::full_rebase_interval`].
    pub fn next_image_must_be_full(&self) -> bool {
        self.config.full_rebase_interval == 0
            || self.partials_since_full >= self.config.full_rebase_interval
    }

    /// The epoch the next logged batch must carry.
    pub fn next_epoch(&self) -> u64 {
        self.log.next_epoch()
    }

    /// Appends one published batch to the delta log (durable on return under
    /// the default sync policy). `epoch` must be exactly one past the last
    /// logged epoch — the same contract the epoch publish path follows.
    /// Returns the append's write/fsync split ([`AppendTimings`]) so the
    /// publish path can attribute the durability cost stage by stage.
    pub fn log_batch(
        &mut self,
        epoch: u64,
        batch: &UpdateBatch,
    ) -> Result<AppendTimings, StoreError> {
        self.log.append(epoch, batch)
    }

    /// Probes whether the delta log can accept appends again after a
    /// failure: re-attempts the rewind of an impaired segment and exercises
    /// an fsync on the active segment. The degraded-mode recovery hook — a
    /// serving layer that flipped read-only on a failed [`Store::log_batch`]
    /// calls this on a backoff schedule and resumes writes once it succeeds.
    pub fn probe_log(&mut self) -> Result<(), StoreError> {
        self.log.probe()
    }

    /// The I/O backend this store was opened with, for sharing with
    /// out-of-lock staging ([`Store::stage_checkpoint_with_io`]).
    pub fn io_handle(&self) -> Arc<dyn StorageIo> {
        Arc::clone(&self.io)
    }

    /// The oldest epoch the delta log can still replay — the lower edge of
    /// the log-shipping window. A replication request for anything older must
    /// be answered with a snapshot fallback ([`Store::snapshot_manifest`]).
    pub fn oldest_retained_epoch(&self) -> u64 {
        self.log.oldest_retained_epoch()
    }

    /// Reads the logged records with epoch `>= from_epoch` (CRC-revalidated,
    /// contiguity-checked), bounded by `max_records` and an estimated
    /// `max_bytes` — the leader half of log shipping. See
    /// [`DeltaLog::read_from`] for the window contract.
    pub fn read_log_from(
        &self,
        from_epoch: u64,
        max_records: usize,
        max_bytes: u64,
    ) -> Result<Vec<crate::wal::LogRecord>, StoreError> {
        self.log.read_from(from_epoch, max_records, max_bytes)
    }

    /// The file set a follower needs to bootstrap when its replay lag exceeds
    /// the retained log window: the newest committed full checkpoint plus the
    /// partial-image chain committed after it, in recovery order. The
    /// returned epoch is what an intact chain recovers to
    /// ([`Store::last_image_epoch`]); shipping resumes from the epoch after
    /// it, which the pruning policy (bounded by retained *full* checkpoints)
    /// guarantees is still in the log window even if part of the chain turns
    /// out broken on the follower.
    pub fn snapshot_manifest(&self) -> Result<SnapshotManifest, StoreError> {
        let mut files = Vec::new();
        let checkpoints = list_checkpoints(&self.dir)?;
        let Some((full_epoch, full_path)) = checkpoints
            .iter()
            .rev()
            .find(|(epoch, _)| *epoch == self.last_checkpoint_epoch)
            .or(checkpoints.last())
        else {
            return Err(StoreError::NoCheckpoint { dir: self.dir.clone() });
        };
        files.push(manifest_entry(full_path)?);
        for (partial_epoch, path) in list_partials(&self.dir)? {
            if partial_epoch > *full_epoch && partial_epoch <= self.last_image_epoch {
                files.push(manifest_entry(&path)?);
            }
        }
        Ok(SnapshotManifest { snapshot_epoch: self.last_image_epoch, files })
    }

    /// Reads up to `max_len` bytes at `offset` of one checkpoint or partial
    /// image file, by its bare manifest name — the transfer half of the
    /// snapshot fallback. Returns the file's total length and the bytes read
    /// (empty at or past end of file). Only names of the two image shapes are
    /// served, with no path components, so a hostile peer cannot read
    /// anything else out of (or outside) the store directory.
    pub fn read_image_chunk(
        &self,
        name: &str,
        offset: u64,
        max_len: u64,
    ) -> Result<(u64, Vec<u8>), StoreError> {
        if !is_image_file_name(name) {
            return Err(StoreError::corrupt(
                &self.dir,
                format!("refusing to serve non-image file {name:?}"),
            ));
        }
        let path = self.dir.join(name);
        let mut file = fs::File::open(&path)
            .map_err(|e| StoreError::io(format!("opening {}", path.display()), e))?;
        let total_len = file
            .metadata()
            .map_err(|e| StoreError::io(format!("inspecting {}", path.display()), e))?
            .len();
        if offset >= total_len {
            return Ok((total_len, Vec::new()));
        }
        use std::io::{Read as _, Seek as _, SeekFrom};
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::io(format!("seeking {}", path.display()), e))?;
        let want = max_len.min(total_len - offset) as usize;
        let mut bytes = vec![0u8; want];
        file.read_exact(&mut bytes)
            .map_err(|e| StoreError::io(format!("reading {}", path.display()), e))?;
        Ok((total_len, bytes))
    }

    /// Encodes a checkpoint image off to the side. Static so a background
    /// checkpointer can run it from `Arc`'d snapshots without holding the
    /// store lock; commit the result with [`Store::commit_checkpoint`].
    pub fn encode_checkpoint(
        epoch: u64,
        graph: &DynamicGraph,
        index: &DtlpIndex,
    ) -> EncodedCheckpoint {
        encode_checkpoint(epoch, graph, index)
    }

    /// Encodes an *incremental* image at `epoch`: only the subgraph indexes
    /// named by `dirty` (those dirtied since the image at `base_epoch`), so
    /// the encode cost is proportional to the delta rather than the index.
    /// `base_epoch` must be the epoch of the newest committed image when the
    /// result is committed; [`Store::commit_staged_checkpoint`] rejects a
    /// stale base. `dirty` must cover every subgraph that received an update
    /// in `(base_epoch, epoch]` — a superset is fine, a miss is not.
    pub fn encode_partial_checkpoint(
        epoch: u64,
        base_epoch: u64,
        graph: &DynamicGraph,
        index: &DtlpIndex,
        dirty: &[ksp_graph::SubgraphId],
    ) -> EncodedCheckpoint {
        encode_partial_checkpoint(epoch, base_epoch, graph, index, dirty)
    }

    /// Stages an encoded checkpoint: writes and fsyncs it under a temp name.
    /// This is the slow half of a commit; it touches no store state, so a
    /// background checkpointer runs it without holding the store lock and
    /// passes the result to [`Store::commit_staged_checkpoint`].
    pub fn stage_checkpoint(
        dir: &Path,
        encoded: &EncodedCheckpoint,
    ) -> Result<StagedCheckpoint, StoreError> {
        stage_checkpoint(dir, encoded)
    }

    /// [`Store::stage_checkpoint`] with an explicit I/O backend — pair with
    /// [`Store::io_handle`] so a background checkpointer stages through the
    /// same (possibly fault-injecting) backend the store was opened with.
    pub fn stage_checkpoint_with_io(
        dir: &Path,
        encoded: &EncodedCheckpoint,
        io: &Arc<dyn StorageIo>,
    ) -> Result<StagedCheckpoint, StoreError> {
        crate::checkpoint::stage_checkpoint_with_io(dir, encoded, io)
    }

    /// Commits a staged image: renames it into place, rotates the log and —
    /// for a full checkpoint — drops checkpoints beyond the retention count,
    /// prunes partial images the new full supersedes and prunes segments no
    /// *retained* checkpoint needs. The fast half of a commit (rename + a few
    /// directory operations); safe to run under the store lock.
    ///
    /// A partial image is accepted only if its base is the newest committed
    /// image — committing it onto anything else would break the chain
    /// recovery walks. A stale partial (e.g. staged concurrently with a
    /// synchronous full checkpoint) is discarded with an error; the caller
    /// keeps its dirty set and retries at the next checkpoint epoch.
    ///
    /// Log pruning is bounded by the **oldest retained full** checkpoint,
    /// never by partial images: if any image in the newest chain turns out
    /// corrupt, recovery falls back to a full checkpoint plus log replay and
    /// still finds every record — no acknowledged epoch is ever unreachable.
    pub fn commit_staged_checkpoint(&mut self, staged: StagedCheckpoint) -> Result<(), StoreError> {
        let epoch = staged.epoch;
        match staged.kind {
            ImageKind::Full => {
                promote_checkpoint(&self.dir, staged)?;
                self.last_checkpoint_epoch = self.last_checkpoint_epoch.max(epoch);
                self.last_image_epoch = self.last_image_epoch.max(epoch);
                self.log.rotate()?;
                self.prune_checkpoints()?;
                self.prune_partials_up_to(self.last_checkpoint_epoch)?;
                self.partials_since_full =
                    list_partials(&self.dir)?.len().try_into().unwrap_or(u32::MAX);
                if let Some(&(oldest_retained, _)) = list_checkpoints(&self.dir)?.first() {
                    self.log.prune_up_to(oldest_retained)?;
                }
            }
            ImageKind::Partial { base_epoch } => {
                if base_epoch != self.last_image_epoch || epoch <= base_epoch {
                    let expected = self.last_image_epoch;
                    staged.discard();
                    return Err(StoreError::corrupt(
                        &self.dir,
                        format!(
                            "partial image {epoch} extends base {base_epoch}, but the newest \
                             committed image is {expected}"
                        ),
                    ));
                }
                promote_checkpoint(&self.dir, staged)?;
                self.last_image_epoch = epoch;
                self.partials_since_full += 1;
                self.log.rotate()?;
            }
        }
        Ok(())
    }

    /// Deletes partial images at or below `epoch` (those a full checkpoint at
    /// `epoch` supersedes).
    fn prune_partials_up_to(&self, epoch: u64) -> Result<usize, StoreError> {
        let mut removed = 0;
        for (partial_epoch, path) in list_partials(&self.dir)? {
            if partial_epoch <= epoch {
                fs::remove_file(&path)
                    .map_err(|e| StoreError::io(format!("deleting {}", path.display()), e))?;
                removed += 1;
            }
        }
        if removed > 0 {
            crate::checkpoint::sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Commits an encoded checkpoint (stage + commit in one call).
    pub fn commit_checkpoint(&mut self, encoded: &EncodedCheckpoint) -> Result<(), StoreError> {
        let staged = stage_checkpoint(&self.dir, encoded)?;
        self.commit_staged_checkpoint(staged)
    }

    /// Deletes all but the newest [`StoreConfig::retain_checkpoints`]
    /// checkpoint files.
    fn prune_checkpoints(&self) -> Result<usize, StoreError> {
        let mut checkpoints = list_checkpoints(&self.dir)?;
        let retain = (self.config.retain_checkpoints.max(1)) as usize;
        if checkpoints.len() <= retain {
            return Ok(0);
        }
        let keep_from = checkpoints.len() - retain;
        let mut removed = 0;
        for (_, path) in checkpoints.drain(..keep_from) {
            fs::remove_file(&path)
                .map_err(|e| StoreError::io(format!("deleting {}", path.display()), e))?;
            removed += 1;
        }
        crate::checkpoint::sync_dir(&self.dir)?;
        Ok(removed)
    }

    /// Synchronously checkpoints the given pair at `epoch`.
    pub fn checkpoint(
        &mut self,
        epoch: u64,
        graph: &DynamicGraph,
        index: &DtlpIndex,
    ) -> Result<(), StoreError> {
        self.commit_checkpoint(&Self::encode_checkpoint(epoch, graph, index))
    }

    /// Checks the integrity of every checkpoint and log segment in `dir`
    /// without modifying anything.
    pub fn verify(dir: &Path) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport::default();
        let mut newest_valid_checkpoint: Option<u64> = None;
        for (epoch, path) in list_checkpoints(dir)? {
            match read_checkpoint(&path) {
                // Mirror recovery: a header/name epoch mismatch makes the
                // file unusable even though its payload CRC holds.
                Ok(c) if c.epoch != epoch => {
                    report.corrupt_checkpoints += 1;
                    report.files.push(FileCheck {
                        path,
                        status: Err(format!(
                            "checkpoint says epoch {} but file name says {epoch}",
                            c.epoch
                        )),
                    });
                }
                Ok(c) => {
                    report.valid_checkpoints += 1;
                    newest_valid_checkpoint =
                        Some(newest_valid_checkpoint.map_or(epoch, |e| e.max(epoch)));
                    report.files.push(FileCheck {
                        path,
                        status: Ok(format!(
                            "checkpoint epoch {epoch}: {} vertices, {} edges, {} subgraphs",
                            c.graph.num_vertices(),
                            c.graph.num_edges(),
                            c.index.num_subgraphs()
                        )),
                    });
                }
                Err(e) => {
                    report.corrupt_checkpoints += 1;
                    report.files.push(FileCheck { path, status: Err(e.to_string()) });
                }
            }
        }
        // Partial images are replay accelerators: recovery survives losing
        // any of them (the log is pruned only against full checkpoints), so
        // they inform the report but never the recoverability verdict.
        for (epoch, path) in list_partials(dir)? {
            match read_partial_checkpoint(&path) {
                Ok(p) if p.epoch != epoch => {
                    report.corrupt_partials += 1;
                    report.files.push(FileCheck {
                        path,
                        status: Err(format!(
                            "partial image says epoch {} but file name says {epoch}",
                            p.epoch
                        )),
                    });
                }
                Ok(p) => {
                    report.valid_partials += 1;
                    report.files.push(FileCheck {
                        path,
                        status: Ok(format!(
                            "partial image epoch {epoch} over base {}: {} dirty subgraph(s)",
                            p.base_epoch,
                            p.subgraph_indexes.len()
                        )),
                    });
                }
                Err(e) => {
                    report.corrupt_partials += 1;
                    report.files.push(FileCheck { path, status: Err(e.to_string()) });
                }
            }
        }
        let segments = list_segments(dir)?;
        let mut fatal_damage = false;
        let mut record_epochs: Vec<u64> = Vec::new();
        for (i, (start, path)) in segments.iter().enumerate() {
            let is_last = i == segments.len() - 1;
            match scan_segment(path) {
                Ok(scan) => {
                    report.intact_records += scan.records.len() as u64;
                    report.torn_bytes += scan.torn_bytes;
                    if scan.torn_bytes > 0 && !is_last {
                        fatal_damage = true;
                    }
                    record_epochs.extend(scan.records.iter().map(|r| r.epoch));
                    let status = match &scan.tear {
                        None => Ok(format!(
                            "segment from epoch {start}: {} record(s)",
                            scan.records.len()
                        )),
                        Some(tear) => Err(format!(
                            "{} intact record(s), then {} torn byte(s) ({tear})",
                            scan.records.len(),
                            scan.torn_bytes
                        )),
                    };
                    report.files.push(FileCheck { path: path.clone(), status });
                }
                Err(e) => {
                    // Recovery can repair exactly one unparseable shape: a
                    // tail segment whose header never became durable (a
                    // crashed rotation). Any other unparseable segment fails
                    // recovery, and the verdict must say so.
                    let repairable =
                        is_last && crate::wal::segment_is_headerless_remnant(path).unwrap_or(false);
                    fatal_damage = fatal_damage || !repairable;
                    let status = if repairable {
                        Err(format!("{e} (headerless rotation remnant; recovery removes it)"))
                    } else if is_last {
                        Err(e.to_string())
                    } else {
                        Err(format!("{e} (not the tail segment)"))
                    };
                    report.files.push(FileCheck { path: path.clone(), status });
                }
            }
        }
        // The verdict must agree with what Store::recover would do: the
        // record epochs must be gap-free, and the replay chain must connect
        // the newest valid checkpoint to the log tip (a lost middle segment
        // or a lost checkpoint breaks recovery even when every surviving
        // file is individually pristine).
        let contiguous = record_epochs.windows(2).all(|w| w[1] == w[0] + 1);
        let chain_connects = match (newest_valid_checkpoint, record_epochs.first()) {
            (Some(checkpoint), Some(&first)) => first <= checkpoint + 1,
            (Some(_), None) => true,
            (None, _) => false,
        };
        report.recoverable = chain_connects && contiguous && !fatal_damage;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::StoreCodec;
    use ksp_core::dtlp::DtlpConfig;
    use ksp_graph::{EdgeId, GraphBuilder, Weight, WeightUpdate};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ksp-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn pair() -> (DynamicGraph, DtlpIndex) {
        let mut b = GraphBuilder::undirected(10);
        for v in 0..9u32 {
            b.edge(v, v + 1, 1 + v % 3);
        }
        b.edge(0, 9, 5).edge(2, 7, 4).edge(1, 8, 6);
        let graph = b.build().unwrap();
        let index = DtlpIndex::build(&graph, DtlpConfig::new(4, 2)).unwrap();
        (graph, index)
    }

    fn batch(seed: u32, num_edges: u32) -> UpdateBatch {
        UpdateBatch::new(vec![WeightUpdate::new(
            EdgeId(seed % num_edges),
            Weight::new(1.0 + seed as f64 * 0.25),
        )])
    }

    #[test]
    fn recover_skips_zero_length_segment_files() {
        let dir = temp_dir("zerolen");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        // One record per segment so several segment files exist.
        let config = StoreConfig {
            checkpoint_interval: 0,
            segment_max_records: 1,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=3u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        drop(store);
        // Rotation-per-record leaves segments starting at 1, 2, 3 and an
        // empty active segment starting at 4. Simulate a crash between
        // segment-file creation and the header write twice over: truncate
        // segment 4 to zero length *and* add a zero-length segment 5, so one
        // empty file sits mid-list and one is the tail. Before the fix, the
        // mid-list one made the chain walk fail as corrupt.
        let seg4 = dir.join(crate::wal::segment_file_name(4));
        fs::OpenOptions::new().write(true).open(&seg4).unwrap().set_len(0).unwrap();
        fs::write(dir.join(crate::wal::segment_file_name(5)), b"").unwrap();
        let (store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 3, "every logged epoch survives");
        assert_eq!(recovered.report.empty_segments_skipped, 2);
        assert!(
            recovered.report.steps().iter().any(|&(name, code, value)| {
                name == "empty_segments_skipped" && code == 6 && value == 2
            }),
            "the skip is a logged recovery step: {:?}",
            recovered.report.steps()
        );
        assert!(!seg4.exists());
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_manifest_and_chunks_transfer_the_image_set() {
        let dir = temp_dir("manifest");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig { checkpoint_interval: 0, ..StoreConfig::default() };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        // Build a full checkpoint + partial chain: epochs 1..=2 under a
        // partial image, 3 logged only.
        for seed in 1..=3u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            let stats = index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
            if epoch == 2 {
                let encoded = Store::encode_partial_checkpoint(
                    epoch,
                    store.last_image_epoch(),
                    &graph,
                    &index,
                    &stats.dirty_subgraphs,
                );
                store.commit_checkpoint(&encoded).unwrap();
            }
        }
        let manifest = store.snapshot_manifest().unwrap();
        assert_eq!(manifest.snapshot_epoch, 2);
        assert_eq!(manifest.files.len(), 2, "full image + one partial: {:?}", manifest.files);
        assert!(manifest.files[0].0.starts_with("checkpoint-"));
        assert!(manifest.files[1].0.starts_with("partial-"));

        // Every manifest file transfers chunk by chunk to identical bytes.
        for (name, len) in &manifest.files {
            let mut fetched = Vec::new();
            loop {
                let (total, bytes) = store.read_image_chunk(name, fetched.len() as u64, 7).unwrap();
                assert_eq!(total, *len);
                if bytes.is_empty() {
                    break;
                }
                fetched.extend(bytes);
            }
            assert_eq!(fetched, fs::read(dir.join(name)).unwrap());
        }

        // Only bare image names are served: traversal and foreign files fail.
        for hostile in
            ["../secret", "wal-00000000000000000001.log", "LOCK", "checkpoint-x.ckpt", ""]
        {
            assert!(store.read_image_chunk(hostile, 0, 16).is_err(), "{hostile:?} must be refused");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_log_recover_round_trip() {
        let dir = temp_dir("roundtrip");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let mut store = Store::create(&dir, StoreConfig::default(), 0, &graph, &index).unwrap();
        for seed in 1..=4u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        drop(store);

        let (_store, recovered) = Store::recover(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.epoch, 4);
        assert_eq!(recovered.report.checkpoint_epoch, 0);
        assert_eq!(recovered.report.batches_replayed, 4);
        assert_eq!(recovered.report.torn_bytes_dropped, 0);
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        assert_eq!(recovered.index.to_bytes(), index.to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_bounds_replay_and_prunes_segments() {
        let dir = temp_dir("bounded");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 3,
            segment_max_records: 2,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=7u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
            if config.is_checkpoint_epoch(epoch) {
                store.checkpoint(epoch, &graph, &index).unwrap();
            }
        }
        drop(store);
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 7);
        // Checkpoints at 3 and 6: recovery starts at 6 and replays only 7.
        assert_eq!(recovered.report.checkpoint_epoch, 6);
        assert_eq!(recovered.report.batches_replayed, 1);
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        assert_eq!(recovered.index.to_bytes(), index.to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older_plus_log() {
        let dir = temp_dir("fallback");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            segment_max_records: 64,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=3u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        // Write a checkpoint at 3, but do NOT let it prune (interval 0 +
        // manual write_checkpoint keeps the log intact), then corrupt it.
        let encoded = Store::encode_checkpoint(3, &graph, &index);
        let path = write_checkpoint(&dir, &encoded).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        drop(store);

        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.report.corrupt_checkpoints_skipped, 1);
        assert_eq!(recovered.report.checkpoint_epoch, 0);
        assert_eq!(recovered.epoch, 3, "log replay compensates for the lost checkpoint");
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_reports_clean_and_damaged_stores() {
        let dir = temp_dir("verify");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig { sync: SyncPolicy::Never, ..StoreConfig::default() };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=3u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        drop(store);

        let clean = Store::verify(&dir).unwrap();
        assert!(clean.recoverable);
        assert_eq!(clean.valid_checkpoints, 1);
        assert_eq!(clean.intact_records, 3);
        assert_eq!(clean.torn_bytes, 0);

        // Tear the log tail: still recoverable, but reported.
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&seg).unwrap().len();
        fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 2).unwrap();
        let torn = Store::verify(&dir).unwrap();
        assert!(torn.recoverable);
        assert!(torn.torn_bytes > 0);
        assert_eq!(torn.intact_records, 2);
        assert!(torn.render().contains("DAMAGED"));

        // Corrupt the only checkpoint: no longer recoverable.
        let (_, ckpt) = list_checkpoints(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&ckpt).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&ckpt, &bytes).unwrap();
        let broken = Store::verify(&dir).unwrap();
        assert!(!broken.recoverable);
        assert_eq!(broken.corrupt_checkpoints, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retained_fallback_checkpoint_can_still_replay_to_tip() {
        // Checkpoints at 3 and 6 (both retained), then the newest rots:
        // recovery must fall back to 3 AND still reach epoch 7, which
        // requires that log pruning spared every record after epoch 3.
        let dir = temp_dir("fallback-tip");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 3,
            segment_max_records: 2,
            retain_checkpoints: 2,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=7u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
            if config.is_checkpoint_epoch(epoch) {
                store.checkpoint(epoch, &graph, &index).unwrap();
            }
        }
        drop(store);
        let (_, newest) = list_checkpoints(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&newest, &bytes).unwrap();

        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.report.corrupt_checkpoints_skipped, 1);
        assert_eq!(recovered.report.checkpoint_epoch, 3);
        assert_eq!(recovered.report.batches_replayed, 4);
        assert_eq!(recovered.epoch, 7, "no acknowledged epoch may be lost");
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        assert_eq!(recovered.index.to_bytes(), index.to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_epoch_header_is_skipped_like_any_corruption() {
        // The epoch header sits outside CRC coverage (bytes 12..20); a flip
        // there must demote the checkpoint to "corrupt, skipped", not abort
        // recovery while a healthy older checkpoint exists.
        let dir = temp_dir("epoch-flip");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            retain_checkpoints: 2,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=2u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        store.checkpoint(2, &graph, &index).unwrap();
        drop(store);
        let (_, newest) = list_checkpoints(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        bytes[12] ^= 0xFF; // low byte of the epoch field
        fs::write(&newest, &bytes).unwrap();

        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.report.corrupt_checkpoints_skipped, 1);
        assert_eq!(recovered.report.checkpoint_epoch, 0);
        assert_eq!(recovered.epoch, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_length_field_reports_corruption_not_panic() {
        use crate::codec::Writer;
        let dir = temp_dir("huge-len");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(crate::checkpoint::checkpoint_file_name(1));
        let mut w = Writer::new();
        w.put_bytes(&crate::checkpoint::CHECKPOINT_MAGIC);
        w.put_u32(crate::checkpoint::CHECKPOINT_VERSION);
        w.put_u64(1); // epoch
        w.put_u64(u64::MAX); // absurd payload length
        w.put_bytes(&[0; 32]);
        fs::write(&path, w.into_bytes()).unwrap();
        assert!(matches!(
            crate::checkpoint::read_checkpoint(&path),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_retention_bounds_the_directory() {
        let dir = temp_dir("retention");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 1,
            retain_checkpoints: 2,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=5u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
            store.checkpoint(epoch, &graph, &index).unwrap();
        }
        drop(store);
        // Only the 2 newest checkpoints survive; recovery uses the newest.
        let epochs: Vec<u64> =
            list_checkpoints(&dir).unwrap().into_iter().map(|(e, _)| e).collect();
        assert_eq!(epochs, vec![4, 5]);
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.report.checkpoint_epoch, 5);
        assert_eq!(recovered.epoch, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn headerless_rotation_remnant_and_stale_tmps_are_cleaned_on_recover() {
        let dir = temp_dir("remnants");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig { sync: SyncPolicy::Never, ..StoreConfig::default() };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=2u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        drop(store);
        // Simulate the two crash windows: a rotation that died before its
        // segment header was durable, and a checkpoint stage that died
        // mid-write.
        fs::write(dir.join(crate::wal::segment_file_name(3)), b"KSP").unwrap();
        fs::write(dir.join("checkpoint-00000000000000000002.tmp7"), b"partial image").unwrap();

        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 2, "the remnant segment holds no records");
        assert!(recovered.report.torn_bytes_dropped > 0);
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp") || n == "wal-00000000000000000003.log")
            .collect();
        assert!(leftovers.is_empty(), "remnants must be swept: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_header_tail_remnant_is_repairable_and_verify_agrees() {
        let dir = temp_dir("garbage-header");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig { sync: SyncPolicy::Never, ..StoreConfig::default() };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        let b = batch(1, m);
        let epoch = graph.apply_batch(&b).unwrap();
        index.apply_batch(&b).unwrap();
        store.log_batch(epoch, &b).unwrap();
        drop(store);
        // A rotation that crashed mid-header-persist: exactly header-sized,
        // but the magic never made it to disk.
        fs::write(dir.join(crate::wal::segment_file_name(2)), [0u8; 12]).unwrap();

        let report = Store::verify(&dir).unwrap();
        assert!(report.recoverable, "a headerless remnant is repairable:\n{}", report.render());
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 1);

        // By contrast, garbage magic on a *populated* segment is real
        // corruption: verify and recover must both fail it.
        drop(_store);
        let (_, seg) = list_segments(&dir).unwrap().remove(0);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        assert!(!Store::verify(&dir).unwrap().recoverable);
        assert!(Store::recover(&dir, config).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_flags_a_missing_middle_segment_as_unrecoverable() {
        let dir = temp_dir("gap-verify");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            segment_max_records: 2,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=6u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        drop(store);
        assert!(Store::verify(&dir).unwrap().recoverable);
        // Lose the middle segment: every surviving file is pristine, but the
        // epoch chain has a hole — verify must agree with recover.
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        fs::remove_file(&segments[1].1).unwrap();
        let report = Store::verify(&dir).unwrap();
        assert!(!report.recoverable, "a lost middle segment cannot be recoverable");
        assert!(Store::recover(&dir, config).is_err(), "recover must agree with verify");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_opener_is_rejected_while_the_store_is_held() {
        let dir = temp_dir("dirlock");
        let (graph, index) = pair();
        let config = StoreConfig { sync: SyncPolicy::Never, ..StoreConfig::default() };
        let store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        // Same process counts as the holder being alive.
        let err = Store::recover(&dir, config).unwrap_err();
        assert!(err.to_string().contains("locked by running process"), "got: {err}");
        drop(store);
        // Dropping the store releases the lock; recovery now proceeds.
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_reclaimed() {
        let dir = temp_dir("stalelock");
        let (graph, index) = pair();
        let config = StoreConfig { sync: SyncPolicy::Never, ..StoreConfig::default() };
        drop(Store::create(&dir, config, 0, &graph, &index).unwrap());
        // Plant a lock naming a pid that cannot be alive.
        fs::write(dir.join("store.lock"), "4194304999").unwrap();
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 0, "a dead holder must not block recovery");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Applies `b` to graph, index and log, returning the batch's dirty set.
    fn publish(
        graph: &mut DynamicGraph,
        index: &mut DtlpIndex,
        store: &mut Store,
        b: &UpdateBatch,
    ) -> Vec<ksp_graph::SubgraphId> {
        let epoch = graph.apply_batch(b).unwrap();
        let stats = index.apply_batch(b).unwrap();
        store.log_batch(epoch, b).unwrap();
        stats.dirty_subgraphs
    }

    #[test]
    fn incremental_image_chain_recovers_bit_exactly_without_replay() {
        let dir = temp_dir("partial-chain");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            full_rebase_interval: 10,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        // Three images of two epochs each: full(0) <- P2 <- P4 <- P6.
        for image in 0..3u32 {
            let mut dirty = Vec::new();
            for step in 1..=2u32 {
                let b = batch(image * 2 + step, m);
                dirty.extend(publish(&mut graph, &mut index, &mut store, &b));
            }
            let epoch = graph.version();
            let base = store.last_image_epoch();
            assert!(!store.next_image_must_be_full());
            let encoded = Store::encode_partial_checkpoint(epoch, base, &graph, &index, &dirty);
            store.commit_checkpoint(&encoded).unwrap();
            assert_eq!(store.last_image_epoch(), epoch);
        }
        assert_eq!(store.partials_since_full(), 3);
        assert_eq!(store.last_checkpoint_epoch(), 0, "no full image was written after create");
        drop(store);

        let (store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 6);
        assert_eq!(recovered.report.checkpoint_epoch, 0);
        assert_eq!(recovered.report.partial_images_applied, 3);
        assert_eq!(recovered.report.batches_replayed, 0, "the chain covers every epoch");
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        assert_eq!(recovered.index.to_bytes(), index.to_bytes());
        // The recovered store continues the chain where it left off.
        assert_eq!(store.last_image_epoch(), 6);
        assert_eq!(store.partials_since_full(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_partial_breaks_the_chain_but_log_replay_reaches_the_tip() {
        let dir = temp_dir("partial-corrupt");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            full_rebase_interval: 10,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=3u32 {
            let b = batch(seed, m);
            let dirty = publish(&mut graph, &mut index, &mut store, &b);
            let epoch = graph.version();
            let base = store.last_image_epoch();
            store
                .commit_checkpoint(&Store::encode_partial_checkpoint(
                    epoch, base, &graph, &index, &dirty,
                ))
                .unwrap();
        }
        drop(store);
        // Rot the middle image (epoch 2): P1 still applies, then the log
        // takes over for epochs 2 and 3 — P3 is dead weight, never fatal.
        let partials = list_partials(&dir).unwrap();
        assert_eq!(partials.len(), 3);
        let mut bytes = fs::read(&partials[1].1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        fs::write(&partials[1].1, &bytes).unwrap();

        assert!(Store::verify(&dir).unwrap().recoverable);
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 3);
        assert_eq!(recovered.report.partial_images_applied, 1);
        assert_eq!(recovered.report.batches_replayed, 2);
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        assert_eq!(recovered.index.to_bytes(), index.to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_rebase_prunes_the_partial_chain_and_resets_the_policy() {
        let dir = temp_dir("rebase");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            full_rebase_interval: 2,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=2u32 {
            let b = batch(seed, m);
            let dirty = publish(&mut graph, &mut index, &mut store, &b);
            let epoch = graph.version();
            let base = store.last_image_epoch();
            store
                .commit_checkpoint(&Store::encode_partial_checkpoint(
                    epoch, base, &graph, &index, &dirty,
                ))
                .unwrap();
        }
        // The chain hit the rebase interval: the next image must be full.
        assert!(store.next_image_must_be_full());
        let b = batch(3, m);
        publish(&mut graph, &mut index, &mut store, &b);
        store.checkpoint(3, &graph, &index).unwrap();
        assert_eq!(store.last_checkpoint_epoch(), 3);
        assert_eq!(store.partials_since_full(), 0);
        assert!(!store.next_image_must_be_full());
        assert!(list_partials(&dir).unwrap().is_empty(), "the full image supersedes the chain");
        drop(store);
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.report.checkpoint_epoch, 3);
        assert_eq!(recovered.report.partial_images_applied, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_but_decodable_partial_ends_the_chain_instead_of_failing_recovery() {
        use crate::checkpoint::{encode_partial_checkpoint, write_checkpoint};
        let dir = temp_dir("foreign-partial");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            full_rebase_interval: 10,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=2u32 {
            let b = batch(seed, m);
            publish(&mut graph, &mut index, &mut store, &b);
        }
        drop(store);
        // Plant a CRC-valid partial from a *differently partitioned* index:
        // it decodes fine but its subgraph ids are out of range for the
        // checkpointed index. Recovery must treat it as a broken chain and
        // fall back to log replay, not abort.
        let finer = DtlpIndex::build(&graph, DtlpConfig::new(2, 1)).unwrap();
        assert!(finer.num_subgraphs() > index.num_subgraphs());
        let high_id = ksp_graph::SubgraphId(finer.num_subgraphs() as u32 - 1);
        let foreign = encode_partial_checkpoint(1, 0, &graph, &finer, &[high_id]);
        write_checkpoint(&dir, &foreign).unwrap();

        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 2);
        assert_eq!(recovered.report.partial_images_applied, 0);
        assert_eq!(recovered.report.batches_replayed, 2);
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        assert_eq!(recovered.index.to_bytes(), index.to_bytes());
        // And the replayed-but-unimaged epochs are reported as dirty, so a
        // resumed checkpointer's next incremental image covers them.
        assert!(!recovered.replayed_dirty.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_base_partial_is_rejected_and_discarded() {
        let dir = temp_dir("stale-base");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            full_rebase_interval: 10,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        let b = batch(1, m);
        let dirty = publish(&mut graph, &mut index, &mut store, &b);
        // Encode a partial against base 0, but commit a full at epoch 1 first
        // (the checkpoint_now race): the partial's base is now stale.
        let stale = Store::encode_partial_checkpoint(1, 0, &graph, &index, &dirty);
        let staged = Store::stage_checkpoint(&dir, &stale).unwrap();
        store.checkpoint(1, &graph, &index).unwrap();
        let err = store.commit_staged_checkpoint(staged).unwrap_err();
        assert!(err.to_string().contains("newest committed image"), "got: {err}");
        assert_eq!(store.last_image_epoch(), 1);
        assert_eq!(store.partials_since_full(), 0);
        assert!(list_partials(&dir).unwrap().is_empty());
        // The discarded temp file is gone too.
        let strays: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(strays.is_empty(), "stale staged image must be discarded: {strays:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_to_overwrite_an_existing_store() {
        let dir = temp_dir("no-overwrite");
        let (graph, index) = pair();
        let _store = Store::create(&dir, StoreConfig::default(), 0, &graph, &index).unwrap();
        assert!(Store::exists(&dir).unwrap());
        assert!(matches!(
            Store::create(&dir, StoreConfig::default(), 0, &graph, &index),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
