//! The store: a directory holding checkpoints and the epoch delta log.
//!
//! Lifecycle:
//!
//! * [`Store::create`] initialises a directory with a checkpoint of the
//!   starting `(graph, index)` pair and an empty log positioned after it.
//! * [`Store::log_batch`] appends one published batch per epoch,
//!   fsync-on-commit, so every acknowledged publish survives a crash.
//! * [`Store::checkpoint`] (or the encode/commit split used by background
//!   checkpointers) captures the current pair, rotates the log, and prunes
//!   segments the new checkpoint made redundant — the log stays bounded.
//! * [`Store::recover`] loads the newest *valid* checkpoint (corrupt ones are
//!   skipped, newest first), replays the log records after it, truncates any
//!   torn tail, and returns a ready `(graph, index, epoch)` triple.
//! * [`Store::verify`] recomputes every CRC and reports file-level health
//!   without modifying anything — the operator's integrity check.

use crate::checkpoint::{
    encode_checkpoint, list_checkpoints, promote_checkpoint, read_checkpoint, stage_checkpoint,
    sweep_stale_tmp_files, write_checkpoint, EncodedCheckpoint, StagedCheckpoint,
};
use crate::error::StoreError;
use crate::wal::{
    list_segments, remove_headerless_tail_segment, scan_segment, DeltaLog, SyncPolicy,
};
use ksp_core::dtlp::DtlpIndex;
use ksp_graph::{DynamicGraph, UpdateBatch};
use std::fs;
use std::path::{Path, PathBuf};

/// Tunables of a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Take a checkpoint every this many epochs (0 disables automatic
    /// checkpointing; the log then grows until [`Store::checkpoint`] is called
    /// explicitly). Consulted by callers via [`StoreConfig::is_checkpoint_epoch`];
    /// the store itself never checkpoints spontaneously.
    pub checkpoint_interval: u64,
    /// Rotate the log to a fresh segment after this many records.
    pub segment_max_records: u64,
    /// How many of the newest checkpoints to keep after each commit (minimum
    /// 1). More than one gives [`Store::recover`] an older checkpoint to fall
    /// back to if the newest turns out corrupt; without retention the
    /// directory would grow by one full checkpoint per interval forever.
    pub retain_checkpoints: u32,
    /// Whether appends fsync before returning.
    pub sync: SyncPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            checkpoint_interval: 32,
            segment_max_records: 1024,
            retain_checkpoints: 2,
            sync: SyncPolicy::Always,
        }
    }
}

impl StoreConfig {
    /// Whether a service publishing `epoch` should trigger a checkpoint.
    pub fn is_checkpoint_epoch(&self, epoch: u64) -> bool {
        self.checkpoint_interval > 0 && epoch > 0 && epoch.is_multiple_of(self.checkpoint_interval)
    }
}

/// What [`Store::recover`] went through to produce its state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// Number of logged batches replayed on top of the checkpoint.
    pub batches_replayed: usize,
    /// Bytes of torn log tail dropped (0 for a clean shutdown).
    pub torn_bytes_dropped: u64,
    /// Corrupt checkpoint files that were skipped while searching for a valid
    /// one (newest first).
    pub corrupt_checkpoints_skipped: usize,
}

/// The state [`Store::recover`] hands back: exactly what the live service held
/// at the recovered epoch.
#[derive(Debug)]
pub struct Recovered {
    /// The road network at the recovered epoch.
    pub graph: DynamicGraph,
    /// The DTLP index maintained to that epoch.
    pub index: DtlpIndex,
    /// The recovered epoch (== `graph.version()`).
    pub epoch: u64,
    /// How recovery got there.
    pub report: RecoveryReport,
}

/// Per-file outcome of [`Store::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCheck {
    /// The file that was checked.
    pub path: PathBuf,
    /// `Ok` for a clean file, otherwise what is wrong with it.
    pub status: Result<String, String>,
}

/// The integrity report of [`Store::verify`].
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// One entry per checkpoint and segment file examined.
    pub files: Vec<FileCheck>,
    /// Number of valid checkpoints.
    pub valid_checkpoints: usize,
    /// Number of corrupt checkpoints.
    pub corrupt_checkpoints: usize,
    /// Total intact log records across all segments.
    pub intact_records: u64,
    /// Total torn/corrupt bytes found in segment tails.
    pub torn_bytes: u64,
    /// Whether the store can recover: at least one valid checkpoint and no
    /// damage other than a single torn tail in the newest segment.
    pub recoverable: bool,
}

impl VerifyReport {
    /// Renders the report as operator-readable lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for check in &self.files {
            match &check.status {
                Ok(detail) => {
                    let _ = writeln!(out, "ok      {}  {detail}", check.path.display());
                }
                Err(detail) => {
                    let _ = writeln!(out, "DAMAGED {}  {detail}", check.path.display());
                }
            }
        }
        let _ = writeln!(
            out,
            "{} valid / {} corrupt checkpoint(s), {} intact log record(s), {} torn byte(s): {}",
            self.valid_checkpoints,
            self.corrupt_checkpoints,
            self.intact_records,
            self.torn_bytes,
            if self.recoverable { "RECOVERABLE" } else { "NOT RECOVERABLE" }
        );
        out
    }
}

/// Exclusive ownership of a store directory, backed by a pid-stamped
/// `store.lock` file. Two processes appending to the same log or sweeping
/// each other's staged checkpoints would corrupt the store; the lock makes
/// the second opener fail loudly instead. A lock left by a crashed process
/// (its pid no longer alive) is reclaimed automatically, so the lock never
/// blocks the crash recovery it exists to protect.
#[derive(Debug)]
struct DirLock {
    path: PathBuf,
}

impl DirLock {
    const FILE_NAME: &'static str = "store.lock";

    fn acquire(dir: &Path) -> Result<DirLock, StoreError> {
        let path = dir.join(Self::FILE_NAME);
        let pid = std::process::id();
        // Publish the pid atomically: write it to a private file, then
        // hard-link that file to the lock name. Linking fails if the lock
        // exists, and a visible lock always carries its holder's pid — no
        // window where a concurrent opener reads an empty lock and
        // misclassifies a live holder as stale.
        let tmp = dir.join(format!("{}.claim-{pid}", Self::FILE_NAME));
        fs::write(&tmp, pid.to_string())
            .map_err(|e| StoreError::io(format!("writing lock claim {}", tmp.display()), e))?;
        // Two attempts: the second runs after a stale lock was cleared.
        let result = (|| {
            for _ in 0..2 {
                match fs::hard_link(&tmp, &path) {
                    Ok(()) => return Ok(DirLock { path: path.clone() }),
                    Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                        let holder = fs::read_to_string(&path)
                            .ok()
                            .and_then(|s| s.trim().parse::<u32>().ok());
                        // Our own pid is alive too: a same-process lock means
                        // another live Store instance holds this directory.
                        if let Some(pid) = holder {
                            if Self::process_alive(pid) {
                                return Err(StoreError::corrupt(
                                    &path,
                                    format!("store is locked by running process {pid}"),
                                ));
                            }
                        }
                        // Dead (or unparseable, hence foreign/corrupt)
                        // holder: reclaim and retry once.
                        fs::remove_file(&path).map_err(|e| {
                            StoreError::io(format!("clearing stale lock {}", path.display()), e)
                        })?;
                    }
                    Err(e) => {
                        return Err(StoreError::io(format!("creating lock {}", path.display()), e))
                    }
                }
            }
            Err(StoreError::corrupt(&path, "could not acquire store lock"))
        })();
        let _ = fs::remove_file(&tmp);
        result
    }

    #[cfg(target_os = "linux")]
    fn process_alive(pid: u32) -> bool {
        fs::metadata(format!("/proc/{pid}")).is_ok()
    }

    #[cfg(not(target_os = "linux"))]
    fn process_alive(_pid: u32) -> bool {
        // No cheap liveness probe: err on the safe side and treat the
        // holder as alive (a stale lock then needs manual removal).
        true
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// A durable checkpoint + delta-log store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    log: DeltaLog,
    /// Epoch of the newest on-disk checkpoint (drives pruning).
    last_checkpoint_epoch: u64,
    /// Held for the store's lifetime; released (deleted) on drop.
    _lock: DirLock,
}

impl Store {
    /// Initialises `dir` (created if missing) with a checkpoint of the given
    /// pair at `epoch` and an empty log expecting `epoch + 1` next.
    ///
    /// Fails if the directory already contains a store (use [`Store::recover`]
    /// for that) — silently overwriting an existing store would defeat its
    /// purpose.
    pub fn create(
        dir: &Path,
        config: StoreConfig,
        epoch: u64,
        graph: &DynamicGraph,
        index: &DtlpIndex,
    ) -> Result<Store, StoreError> {
        fs::create_dir_all(dir)
            .map_err(|e| StoreError::io(format!("creating {}", dir.display()), e))?;
        let lock = DirLock::acquire(dir)?;
        if Store::exists(dir)? {
            return Err(StoreError::corrupt(dir, "directory already contains a store"));
        }
        sweep_stale_tmp_files(dir)?;
        write_checkpoint(dir, &encode_checkpoint(epoch, graph, index))?;
        let log = DeltaLog::create(dir, epoch + 1, config.sync, config.segment_max_records)?;
        Ok(Store { dir: dir.to_path_buf(), config, log, last_checkpoint_epoch: epoch, _lock: lock })
    }

    /// Whether `dir` contains (at least the beginnings of) a store.
    pub fn exists(dir: &Path) -> Result<bool, StoreError> {
        if !dir.is_dir() {
            return Ok(false);
        }
        Ok(!list_checkpoints(dir)?.is_empty() || !list_segments(dir)?.is_empty())
    }

    /// Recovers the newest consistent state from `dir`: loads the newest valid
    /// checkpoint, replays every logged batch after it (truncating a torn
    /// tail), and returns the store ready to append the next epoch.
    pub fn recover(dir: &Path, config: StoreConfig) -> Result<(Store, Recovered), StoreError> {
        // Exclusive ownership first: a second live opener must fail here,
        // before any repair below can disturb the owner's in-flight state.
        let lock = DirLock::acquire(dir)?;
        // Clean up two crash windows before looking at anything else: staged
        // checkpoint temp files and a rotation that died before its segment
        // header became durable (such a remnant can hold no records).
        sweep_stale_tmp_files(dir)?;
        let headerless_bytes = remove_headerless_tail_segment(dir)?;
        let mut checkpoints = list_checkpoints(dir)?;
        if checkpoints.is_empty() {
            return Err(StoreError::NoCheckpoint { dir: dir.to_path_buf() });
        }
        // Newest first; skip (but count) corrupt checkpoints.
        checkpoints.reverse();
        let mut corrupt_skipped = 0;
        let mut loaded = None;
        for (epoch, path) in &checkpoints {
            match read_checkpoint(path) {
                // The epoch header is outside CRC coverage, so a name/header
                // mismatch is corruption like any other: skip to the next
                // candidate instead of aborting (the retained older
                // checkpoint exists for exactly this case).
                Ok(checkpoint) if checkpoint.epoch != *epoch => corrupt_skipped += 1,
                Ok(checkpoint) => {
                    loaded = Some(checkpoint);
                    break;
                }
                Err(StoreError::Io { context, source }) => {
                    return Err(StoreError::Io { context, source });
                }
                Err(_) => corrupt_skipped += 1,
            }
        }
        let Some(checkpoint) = loaded else {
            return Err(StoreError::NoCheckpoint { dir: dir.to_path_buf() });
        };

        let mut graph = checkpoint.graph;
        let mut index = checkpoint.index;
        let checkpoint_epoch = checkpoint.epoch;

        let (log, records, torn_bytes) = if list_segments(dir)?.is_empty() {
            // A store that crashed between its first checkpoint and the log
            // creation; start a fresh log after the checkpoint.
            let log = DeltaLog::create(
                dir,
                checkpoint_epoch + 1,
                config.sync,
                config.segment_max_records,
            )?;
            (log, Vec::new(), 0)
        } else {
            DeltaLog::open_dir(dir, config.sync, config.segment_max_records)?
        };

        let mut batches_replayed = 0;
        for record in &records {
            if record.epoch <= checkpoint_epoch {
                continue; // covered by the checkpoint; kept only until pruning
            }
            if record.epoch != graph.version() + 1 {
                return Err(StoreError::corrupt(
                    dir,
                    format!(
                        "log record for epoch {} cannot extend recovered epoch {}",
                        record.epoch,
                        graph.version()
                    ),
                ));
            }
            graph.apply_batch(&record.batch).map_err(|e| {
                StoreError::corrupt(dir, format!("replaying epoch {}: {e}", record.epoch))
            })?;
            index.apply_batch(&record.batch).map_err(|e| {
                StoreError::corrupt(
                    dir,
                    format!("replaying epoch {} into index: {e}", record.epoch),
                )
            })?;
            batches_replayed += 1;
        }
        let epoch = graph.version();
        // The log must resume exactly where the recovered state ends; a gap
        // means acknowledged batches are missing (e.g. the checkpoint they
        // relied on was lost after its log records were pruned). Failing
        // closed here beats a "successful" recovery that silently dropped
        // durable epochs and can never log another batch.
        if log.next_epoch() != epoch + 1 {
            return Err(StoreError::corrupt(
                dir,
                format!(
                    "log resumes at epoch {} but recovered state ends at epoch {epoch}; \
                     acknowledged batches are missing",
                    log.next_epoch()
                ),
            ));
        }
        let report = RecoveryReport {
            checkpoint_epoch,
            batches_replayed,
            torn_bytes_dropped: torn_bytes + headerless_bytes,
            corrupt_checkpoints_skipped: corrupt_skipped,
        };
        let store = Store {
            dir: dir.to_path_buf(),
            config,
            log,
            last_checkpoint_epoch: checkpoint_epoch,
            _lock: lock,
        };
        Ok((store, Recovered { graph, index, epoch, report }))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Epoch of the newest committed checkpoint.
    pub fn last_checkpoint_epoch(&self) -> u64 {
        self.last_checkpoint_epoch
    }

    /// The epoch the next logged batch must carry.
    pub fn next_epoch(&self) -> u64 {
        self.log.next_epoch()
    }

    /// Appends one published batch to the delta log (durable on return under
    /// the default sync policy). `epoch` must be exactly one past the last
    /// logged epoch — the same contract the epoch publish path follows.
    pub fn log_batch(&mut self, epoch: u64, batch: &UpdateBatch) -> Result<(), StoreError> {
        self.log.append(epoch, batch)
    }

    /// Encodes a checkpoint image off to the side. Static so a background
    /// checkpointer can run it from `Arc`'d snapshots without holding the
    /// store lock; commit the result with [`Store::commit_checkpoint`].
    pub fn encode_checkpoint(
        epoch: u64,
        graph: &DynamicGraph,
        index: &DtlpIndex,
    ) -> EncodedCheckpoint {
        encode_checkpoint(epoch, graph, index)
    }

    /// Stages an encoded checkpoint: writes and fsyncs it under a temp name.
    /// This is the slow half of a commit; it touches no store state, so a
    /// background checkpointer runs it without holding the store lock and
    /// passes the result to [`Store::commit_staged_checkpoint`].
    pub fn stage_checkpoint(
        dir: &Path,
        encoded: &EncodedCheckpoint,
    ) -> Result<StagedCheckpoint, StoreError> {
        stage_checkpoint(dir, encoded)
    }

    /// Commits a staged checkpoint: renames it into place, rotates the log,
    /// drops checkpoints beyond the retention count and prunes segments no
    /// *retained* checkpoint needs. The fast half of a commit (rename + a few
    /// directory operations); safe to run under the store lock.
    ///
    /// Log pruning is bounded by the **oldest retained** checkpoint, not the
    /// newest: if the newest checkpoint later turns out corrupt, recovery
    /// falls back to an older one and still finds every record needed to
    /// replay forward — no acknowledged epoch is ever unreachable.
    pub fn commit_staged_checkpoint(&mut self, staged: StagedCheckpoint) -> Result<(), StoreError> {
        let epoch = staged.epoch;
        promote_checkpoint(&self.dir, staged)?;
        self.last_checkpoint_epoch = self.last_checkpoint_epoch.max(epoch);
        self.log.rotate()?;
        self.prune_checkpoints()?;
        if let Some(&(oldest_retained, _)) = list_checkpoints(&self.dir)?.first() {
            self.log.prune_up_to(oldest_retained)?;
        }
        Ok(())
    }

    /// Commits an encoded checkpoint (stage + commit in one call).
    pub fn commit_checkpoint(&mut self, encoded: &EncodedCheckpoint) -> Result<(), StoreError> {
        let staged = stage_checkpoint(&self.dir, encoded)?;
        self.commit_staged_checkpoint(staged)
    }

    /// Deletes all but the newest [`StoreConfig::retain_checkpoints`]
    /// checkpoint files.
    fn prune_checkpoints(&self) -> Result<usize, StoreError> {
        let mut checkpoints = list_checkpoints(&self.dir)?;
        let retain = (self.config.retain_checkpoints.max(1)) as usize;
        if checkpoints.len() <= retain {
            return Ok(0);
        }
        let keep_from = checkpoints.len() - retain;
        let mut removed = 0;
        for (_, path) in checkpoints.drain(..keep_from) {
            fs::remove_file(&path)
                .map_err(|e| StoreError::io(format!("deleting {}", path.display()), e))?;
            removed += 1;
        }
        crate::checkpoint::sync_dir(&self.dir)?;
        Ok(removed)
    }

    /// Synchronously checkpoints the given pair at `epoch`.
    pub fn checkpoint(
        &mut self,
        epoch: u64,
        graph: &DynamicGraph,
        index: &DtlpIndex,
    ) -> Result<(), StoreError> {
        self.commit_checkpoint(&Self::encode_checkpoint(epoch, graph, index))
    }

    /// Checks the integrity of every checkpoint and log segment in `dir`
    /// without modifying anything.
    pub fn verify(dir: &Path) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport::default();
        let mut newest_valid_checkpoint: Option<u64> = None;
        for (epoch, path) in list_checkpoints(dir)? {
            match read_checkpoint(&path) {
                // Mirror recovery: a header/name epoch mismatch makes the
                // file unusable even though its payload CRC holds.
                Ok(c) if c.epoch != epoch => {
                    report.corrupt_checkpoints += 1;
                    report.files.push(FileCheck {
                        path,
                        status: Err(format!(
                            "checkpoint says epoch {} but file name says {epoch}",
                            c.epoch
                        )),
                    });
                }
                Ok(c) => {
                    report.valid_checkpoints += 1;
                    newest_valid_checkpoint =
                        Some(newest_valid_checkpoint.map_or(epoch, |e| e.max(epoch)));
                    report.files.push(FileCheck {
                        path,
                        status: Ok(format!(
                            "checkpoint epoch {epoch}: {} vertices, {} edges, {} subgraphs",
                            c.graph.num_vertices(),
                            c.graph.num_edges(),
                            c.index.num_subgraphs()
                        )),
                    });
                }
                Err(e) => {
                    report.corrupt_checkpoints += 1;
                    report.files.push(FileCheck { path, status: Err(e.to_string()) });
                }
            }
        }
        let segments = list_segments(dir)?;
        let mut fatal_damage = false;
        let mut record_epochs: Vec<u64> = Vec::new();
        for (i, (start, path)) in segments.iter().enumerate() {
            let is_last = i == segments.len() - 1;
            match scan_segment(path) {
                Ok(scan) => {
                    report.intact_records += scan.records.len() as u64;
                    report.torn_bytes += scan.torn_bytes;
                    if scan.torn_bytes > 0 && !is_last {
                        fatal_damage = true;
                    }
                    record_epochs.extend(scan.records.iter().map(|r| r.epoch));
                    let status = match &scan.tear {
                        None => Ok(format!(
                            "segment from epoch {start}: {} record(s)",
                            scan.records.len()
                        )),
                        Some(tear) => Err(format!(
                            "{} intact record(s), then {} torn byte(s) ({tear})",
                            scan.records.len(),
                            scan.torn_bytes
                        )),
                    };
                    report.files.push(FileCheck { path: path.clone(), status });
                }
                Err(e) => {
                    // Recovery can repair exactly one unparseable shape: a
                    // tail segment whose header never became durable (a
                    // crashed rotation). Any other unparseable segment fails
                    // recovery, and the verdict must say so.
                    let repairable =
                        is_last && crate::wal::segment_is_headerless_remnant(path).unwrap_or(false);
                    fatal_damage = fatal_damage || !repairable;
                    let status = if repairable {
                        Err(format!("{e} (headerless rotation remnant; recovery removes it)"))
                    } else if is_last {
                        Err(e.to_string())
                    } else {
                        Err(format!("{e} (not the tail segment)"))
                    };
                    report.files.push(FileCheck { path: path.clone(), status });
                }
            }
        }
        // The verdict must agree with what Store::recover would do: the
        // record epochs must be gap-free, and the replay chain must connect
        // the newest valid checkpoint to the log tip (a lost middle segment
        // or a lost checkpoint breaks recovery even when every surviving
        // file is individually pristine).
        let contiguous = record_epochs.windows(2).all(|w| w[1] == w[0] + 1);
        let chain_connects = match (newest_valid_checkpoint, record_epochs.first()) {
            (Some(checkpoint), Some(&first)) => first <= checkpoint + 1,
            (Some(_), None) => true,
            (None, _) => false,
        };
        report.recoverable = chain_connects && contiguous && !fatal_damage;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::StoreCodec;
    use ksp_core::dtlp::DtlpConfig;
    use ksp_graph::{EdgeId, GraphBuilder, Weight, WeightUpdate};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ksp-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn pair() -> (DynamicGraph, DtlpIndex) {
        let mut b = GraphBuilder::undirected(10);
        for v in 0..9u32 {
            b.edge(v, v + 1, 1 + v % 3);
        }
        b.edge(0, 9, 5).edge(2, 7, 4).edge(1, 8, 6);
        let graph = b.build().unwrap();
        let index = DtlpIndex::build(&graph, DtlpConfig::new(4, 2)).unwrap();
        (graph, index)
    }

    fn batch(seed: u32, num_edges: u32) -> UpdateBatch {
        UpdateBatch::new(vec![WeightUpdate::new(
            EdgeId(seed % num_edges),
            Weight::new(1.0 + seed as f64 * 0.25),
        )])
    }

    #[test]
    fn create_log_recover_round_trip() {
        let dir = temp_dir("roundtrip");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let mut store = Store::create(&dir, StoreConfig::default(), 0, &graph, &index).unwrap();
        for seed in 1..=4u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        drop(store);

        let (_store, recovered) = Store::recover(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.epoch, 4);
        assert_eq!(recovered.report.checkpoint_epoch, 0);
        assert_eq!(recovered.report.batches_replayed, 4);
        assert_eq!(recovered.report.torn_bytes_dropped, 0);
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        assert_eq!(recovered.index.to_bytes(), index.to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_bounds_replay_and_prunes_segments() {
        let dir = temp_dir("bounded");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 3,
            segment_max_records: 2,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=7u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
            if config.is_checkpoint_epoch(epoch) {
                store.checkpoint(epoch, &graph, &index).unwrap();
            }
        }
        drop(store);
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 7);
        // Checkpoints at 3 and 6: recovery starts at 6 and replays only 7.
        assert_eq!(recovered.report.checkpoint_epoch, 6);
        assert_eq!(recovered.report.batches_replayed, 1);
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        assert_eq!(recovered.index.to_bytes(), index.to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older_plus_log() {
        let dir = temp_dir("fallback");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            segment_max_records: 64,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=3u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        // Write a checkpoint at 3, but do NOT let it prune (interval 0 +
        // manual write_checkpoint keeps the log intact), then corrupt it.
        let encoded = Store::encode_checkpoint(3, &graph, &index);
        let path = write_checkpoint(&dir, &encoded).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        drop(store);

        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.report.corrupt_checkpoints_skipped, 1);
        assert_eq!(recovered.report.checkpoint_epoch, 0);
        assert_eq!(recovered.epoch, 3, "log replay compensates for the lost checkpoint");
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_reports_clean_and_damaged_stores() {
        let dir = temp_dir("verify");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig { sync: SyncPolicy::Never, ..StoreConfig::default() };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=3u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        drop(store);

        let clean = Store::verify(&dir).unwrap();
        assert!(clean.recoverable);
        assert_eq!(clean.valid_checkpoints, 1);
        assert_eq!(clean.intact_records, 3);
        assert_eq!(clean.torn_bytes, 0);

        // Tear the log tail: still recoverable, but reported.
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&seg).unwrap().len();
        fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 2).unwrap();
        let torn = Store::verify(&dir).unwrap();
        assert!(torn.recoverable);
        assert!(torn.torn_bytes > 0);
        assert_eq!(torn.intact_records, 2);
        assert!(torn.render().contains("DAMAGED"));

        // Corrupt the only checkpoint: no longer recoverable.
        let (_, ckpt) = list_checkpoints(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&ckpt).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&ckpt, &bytes).unwrap();
        let broken = Store::verify(&dir).unwrap();
        assert!(!broken.recoverable);
        assert_eq!(broken.corrupt_checkpoints, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retained_fallback_checkpoint_can_still_replay_to_tip() {
        // Checkpoints at 3 and 6 (both retained), then the newest rots:
        // recovery must fall back to 3 AND still reach epoch 7, which
        // requires that log pruning spared every record after epoch 3.
        let dir = temp_dir("fallback-tip");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 3,
            segment_max_records: 2,
            retain_checkpoints: 2,
            sync: SyncPolicy::Never,
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=7u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
            if config.is_checkpoint_epoch(epoch) {
                store.checkpoint(epoch, &graph, &index).unwrap();
            }
        }
        drop(store);
        let (_, newest) = list_checkpoints(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&newest, &bytes).unwrap();

        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.report.corrupt_checkpoints_skipped, 1);
        assert_eq!(recovered.report.checkpoint_epoch, 3);
        assert_eq!(recovered.report.batches_replayed, 4);
        assert_eq!(recovered.epoch, 7, "no acknowledged epoch may be lost");
        assert_eq!(recovered.graph.to_bytes(), graph.to_bytes());
        assert_eq!(recovered.index.to_bytes(), index.to_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_epoch_header_is_skipped_like_any_corruption() {
        // The epoch header sits outside CRC coverage (bytes 12..20); a flip
        // there must demote the checkpoint to "corrupt, skipped", not abort
        // recovery while a healthy older checkpoint exists.
        let dir = temp_dir("epoch-flip");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            retain_checkpoints: 2,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=2u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        store.checkpoint(2, &graph, &index).unwrap();
        drop(store);
        let (_, newest) = list_checkpoints(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        bytes[12] ^= 0xFF; // low byte of the epoch field
        fs::write(&newest, &bytes).unwrap();

        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.report.corrupt_checkpoints_skipped, 1);
        assert_eq!(recovered.report.checkpoint_epoch, 0);
        assert_eq!(recovered.epoch, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_length_field_reports_corruption_not_panic() {
        use crate::codec::Writer;
        let dir = temp_dir("huge-len");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(crate::checkpoint::checkpoint_file_name(1));
        let mut w = Writer::new();
        w.put_bytes(&crate::checkpoint::CHECKPOINT_MAGIC);
        w.put_u32(crate::checkpoint::CHECKPOINT_VERSION);
        w.put_u64(1); // epoch
        w.put_u64(u64::MAX); // absurd payload length
        w.put_bytes(&[0; 32]);
        fs::write(&path, w.into_bytes()).unwrap();
        assert!(matches!(
            crate::checkpoint::read_checkpoint(&path),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_retention_bounds_the_directory() {
        let dir = temp_dir("retention");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 1,
            retain_checkpoints: 2,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=5u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
            store.checkpoint(epoch, &graph, &index).unwrap();
        }
        drop(store);
        // Only the 2 newest checkpoints survive; recovery uses the newest.
        let epochs: Vec<u64> =
            list_checkpoints(&dir).unwrap().into_iter().map(|(e, _)| e).collect();
        assert_eq!(epochs, vec![4, 5]);
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.report.checkpoint_epoch, 5);
        assert_eq!(recovered.epoch, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn headerless_rotation_remnant_and_stale_tmps_are_cleaned_on_recover() {
        let dir = temp_dir("remnants");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig { sync: SyncPolicy::Never, ..StoreConfig::default() };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=2u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        drop(store);
        // Simulate the two crash windows: a rotation that died before its
        // segment header was durable, and a checkpoint stage that died
        // mid-write.
        fs::write(dir.join(crate::wal::segment_file_name(3)), b"KSP").unwrap();
        fs::write(dir.join("checkpoint-00000000000000000002.tmp7"), b"partial image").unwrap();

        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 2, "the remnant segment holds no records");
        assert!(recovered.report.torn_bytes_dropped > 0);
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp") || n == "wal-00000000000000000003.log")
            .collect();
        assert!(leftovers.is_empty(), "remnants must be swept: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_header_tail_remnant_is_repairable_and_verify_agrees() {
        let dir = temp_dir("garbage-header");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig { sync: SyncPolicy::Never, ..StoreConfig::default() };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        let b = batch(1, m);
        let epoch = graph.apply_batch(&b).unwrap();
        index.apply_batch(&b).unwrap();
        store.log_batch(epoch, &b).unwrap();
        drop(store);
        // A rotation that crashed mid-header-persist: exactly header-sized,
        // but the magic never made it to disk.
        fs::write(dir.join(crate::wal::segment_file_name(2)), [0u8; 12]).unwrap();

        let report = Store::verify(&dir).unwrap();
        assert!(report.recoverable, "a headerless remnant is repairable:\n{}", report.render());
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 1);

        // By contrast, garbage magic on a *populated* segment is real
        // corruption: verify and recover must both fail it.
        drop(_store);
        let (_, seg) = list_segments(&dir).unwrap().remove(0);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        assert!(!Store::verify(&dir).unwrap().recoverable);
        assert!(Store::recover(&dir, config).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_flags_a_missing_middle_segment_as_unrecoverable() {
        let dir = temp_dir("gap-verify");
        let (mut graph, mut index) = pair();
        let m = graph.num_edges() as u32;
        let config = StoreConfig {
            checkpoint_interval: 0,
            segment_max_records: 2,
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        for seed in 1..=6u32 {
            let b = batch(seed, m);
            let epoch = graph.apply_batch(&b).unwrap();
            index.apply_batch(&b).unwrap();
            store.log_batch(epoch, &b).unwrap();
        }
        drop(store);
        assert!(Store::verify(&dir).unwrap().recoverable);
        // Lose the middle segment: every surviving file is pristine, but the
        // epoch chain has a hole — verify must agree with recover.
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        fs::remove_file(&segments[1].1).unwrap();
        let report = Store::verify(&dir).unwrap();
        assert!(!report.recoverable, "a lost middle segment cannot be recoverable");
        assert!(Store::recover(&dir, config).is_err(), "recover must agree with verify");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_opener_is_rejected_while_the_store_is_held() {
        let dir = temp_dir("dirlock");
        let (graph, index) = pair();
        let config = StoreConfig { sync: SyncPolicy::Never, ..StoreConfig::default() };
        let store = Store::create(&dir, config, 0, &graph, &index).unwrap();
        // Same process counts as the holder being alive.
        let err = Store::recover(&dir, config).unwrap_err();
        assert!(err.to_string().contains("locked by running process"), "got: {err}");
        drop(store);
        // Dropping the store releases the lock; recovery now proceeds.
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_reclaimed() {
        let dir = temp_dir("stalelock");
        let (graph, index) = pair();
        let config = StoreConfig { sync: SyncPolicy::Never, ..StoreConfig::default() };
        drop(Store::create(&dir, config, 0, &graph, &index).unwrap());
        // Plant a lock naming a pid that cannot be alive.
        fs::write(dir.join("store.lock"), "4194304999").unwrap();
        let (_store, recovered) = Store::recover(&dir, config).unwrap();
        assert_eq!(recovered.epoch, 0, "a dead holder must not block recovery");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_to_overwrite_an_existing_store() {
        let dir = temp_dir("no-overwrite");
        let (graph, index) = pair();
        let _store = Store::create(&dir, StoreConfig::default(), 0, &graph, &index).unwrap();
        assert!(Store::exists(&dir).unwrap());
        assert!(matches!(
            Store::create(&dir, StoreConfig::default(), 0, &graph, &index),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
