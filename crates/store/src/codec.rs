//! The versioned binary codec underneath checkpoints and log records.
//!
//! Values are encoded little-endian into a growable byte buffer via
//! [`Writer`] and decoded from a slice via [`Reader`]; [`StoreCodec`] is the
//! trait a type implements to participate. Floats are carried as raw IEEE-754
//! bits (`f64::to_bits`), so a decode→encode round trip is byte-identical and
//! recovered distances equal the persisted ones bit for bit. Containers are
//! length-prefixed with `u64` counts; lengths are validated against the bytes
//! actually available before any allocation, so a corrupt count cannot make
//! the decoder allocate unbounded memory.
//!
//! Integrity is the caller's job: [`crc32`] implements the CRC-32/ISO-HDLC
//! checksum (the zlib polynomial) that both the checkpoint footer and every
//! delta-log record use to reject torn or bit-rotted bytes.

use crate::error::CodecError;

/// CRC-32 (ISO-HDLC, reflected polynomial 0xEDB88320) over `bytes`.
///
/// This is the same checksum zlib and gzip use, computed with a 256-entry
/// lookup table built at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Creates a writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer { buf: Vec::with_capacity(capacity) }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A checked little-endian byte source over a borrowed slice.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` from its raw IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` count and validates that at least `min_bytes_per_item`
    /// bytes per counted item remain, so corrupt counts fail before any
    /// allocation happens.
    pub fn get_count(&mut self, min_bytes_per_item: usize) -> Result<usize, CodecError> {
        let declared = self.get_u64()?;
        let available = self.remaining();
        let fits = usize::try_from(declared)
            .ok()
            .and_then(|n| n.checked_mul(min_bytes_per_item.max(1)))
            .is_some_and(|total| total <= available);
        if !fits {
            return Err(CodecError::LengthOutOfBounds { declared, available });
        }
        Ok(declared as usize)
    }
}

/// A type that can be written to and reconstructed from the store's binary
/// format.
///
/// Implementations must be *stable* (the on-disk layout is part of the
/// checkpoint format version) and *exact*: `decode(encode(x))` reproduces `x`
/// including every floating-point bit, so a recovered index answers queries
/// byte-identically to the one that was persisted.
pub trait StoreCodec: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Reads one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Convenience: encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: decodes a value that must consume `bytes` exactly.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(CodecError::InvalidValue("trailing bytes after value"));
        }
        Ok(value)
    }
}

impl StoreCodec for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u8()
    }
}

impl StoreCodec for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u32()
    }
}

impl StoreCodec for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl StoreCodec for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_f64()
    }
}

impl StoreCodec for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag { what: "bool", tag }),
        }
    }
}

/// Encodes a borrowed slice as a length-prefixed sequence — the same wire
/// format as `Vec<T>::encode`, without cloning the items into a `Vec` first.
pub fn encode_slice<T: StoreCodec>(items: &[T], w: &mut Writer) {
    w.put_u64(items.len() as u64);
    for item in items {
        item.encode(w);
    }
}

impl<T: StoreCodec> StoreCodec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        encode_slice(self, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let count = r.get_count(1)?;
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<A: StoreCodec, B: StoreCodec> StoreCodec for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        0xABu8.encode(&mut w);
        0xDEAD_BEEFu32.encode(&mut w);
        0x0123_4567_89AB_CDEFu64.encode(&mut w);
        (-0.0f64).encode(&mut w);
        true.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 0xAB);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::decode(&mut r).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(f64::decode(&mut r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(bool::decode(&mut r).unwrap());
        assert!(r.is_exhausted());
    }

    #[test]
    fn vectors_and_tuples_round_trip() {
        let value: Vec<(u32, f64)> = vec![(1, 0.5), (2, f64::INFINITY), (7, 1e-300)];
        let decoded = Vec::<(u32, f64)>::from_bytes(&value.to_bytes()).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn truncated_input_reports_eof() {
        let bytes = 0x1234_5678u32.to_bytes();
        let mut r = Reader::new(&bytes[..2]);
        assert!(matches!(u32::decode(&mut r), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn oversized_count_is_rejected_before_allocation() {
        // A count of u64::MAX with only a handful of payload bytes must fail
        // fast instead of attempting a huge Vec::with_capacity.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        w.put_bytes(&[0; 16]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(Vec::<u64>::decode(&mut r), Err(CodecError::LengthOutOfBounds { .. })));
    }

    #[test]
    fn trailing_bytes_are_an_error_for_from_bytes() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(matches!(u32::from_bytes(&bytes), Err(CodecError::InvalidValue(_))));
    }

    #[test]
    fn invalid_bool_tag_is_rejected() {
        assert!(matches!(bool::from_bytes(&[3]), Err(CodecError::InvalidTag { .. })));
    }
}
