//! `ksp-store`: durable checkpoints + an epoch delta log with crash recovery
//! for the KSP-DG graph and DTLP index.
//!
//! The serving subsystem (`ksp-serve`) publishes immutable epochs: apply a
//! weight-update batch, get a new `(DynamicGraph, DtlpIndex)` pair. Without
//! this crate that design is memory-only — every process start pays a full
//! `DtlpIndex::build` and a crash loses every applied batch. `ksp-store`
//! makes the epoch sequence durable with the classic log-structured split:
//!
//! * [`codec`] — a versioned, checksummed binary codec ([`StoreCodec`]) that
//!   serialises the graph and the index *exactly*: floats travel as raw
//!   IEEE-754 bits, and only primary state is persisted (bounding paths with
//!   their accumulated distances, subgraph weights, ownership tables) while
//!   derived structures (EP-Index/MFP backends, unit-weight multisets, the
//!   skeleton graph) are rebuilt deterministically on load.
//! * [`checkpoint`] — atomic whole-pair snapshots (`checkpoint-<epoch>.ckpt`)
//!   and *incremental* images (`partial-<epoch>.pckpt`) carrying only the
//!   subgraphs dirtied since the previous image, with a periodic full rebase
//!   ([`StoreConfig::full_rebase_interval`]) bounding the chain: write-temp,
//!   fsync, rename, fsync-dir; a CRC-32 footer rejects half-written or
//!   bit-rotted files.
//! * [`wal`] — the append-only epoch delta log (`wal-<start>.log`): one
//!   length-prefixed, CRC-guarded record per published batch, fsync-on-commit,
//!   segment rotation, and torn-tail truncation on recovery.
//! * [`store`] — [`Store`] ties them together: `create` → `log_batch` per
//!   publish → periodic image commits (rotating and pruning the log) →
//!   [`Store::recover`], which loads the newest valid full checkpoint,
//!   applies the partial-image chain rooted at it, replays the records after
//!   the last applied image and hands back the exact state the service held.
//!   A damaged partial image only ends the chain early — the log is pruned
//!   against retained full checkpoints, so replay always reaches the tip.
//!   [`Store::verify`] is the read-only integrity check for operators.
//!
//! Recovery is *bit-exact*: the DTLP maintenance path applies floating-point
//! deltas incrementally, so the store persists those accumulated values
//! rather than recomputing them, and a recovered service answers every
//! `(source, target, k)` query byte-identically to the service that crashed.
//!
//! # Example
//!
//! ```
//! use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
//! use ksp_graph::{EdgeId, GraphBuilder, UpdateBatch, Weight, WeightUpdate};
//! use ksp_store::{Store, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("ksp-store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! let mut b = GraphBuilder::undirected(6);
//! b.edge(0, 1, 2).edge(1, 2, 1).edge(2, 3, 2).edge(3, 4, 1).edge(4, 5, 2).edge(0, 5, 4);
//! let mut graph = b.build().unwrap();
//! let mut index = DtlpIndex::build(&graph, DtlpConfig::new(3, 2)).unwrap();
//!
//! // Initialise the store, publish two durable epochs, "crash" (drop).
//! let mut store = Store::create(&dir, StoreConfig::default(), 0, &graph, &index).unwrap();
//! for w in [5.0, 0.5] {
//!     let batch = UpdateBatch::new(vec![WeightUpdate::new(EdgeId(0), Weight::new(w))]);
//!     let epoch = graph.apply_batch(&batch).unwrap();
//!     index.apply_batch(&batch).unwrap();
//!     store.log_batch(epoch, &batch).unwrap();
//! }
//! drop(store);
//!
//! // Cold start: checkpoint + replay instead of a full index rebuild.
//! let (_store, recovered) = Store::recover(&dir, StoreConfig::default()).unwrap();
//! assert_eq!(recovered.epoch, 2);
//! assert_eq!(recovered.graph.weight(EdgeId(0)), Weight::new(0.5));
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod graph_codec;
pub mod index_codec;
pub mod io;
pub mod store;
pub mod wal;

pub use checkpoint::{Checkpoint, EncodedCheckpoint, ImageKind, PartialCheckpoint};
pub use codec::{crc32, Reader, StoreCodec, Writer};
pub use error::{CodecError, StoreError};
pub use io::{apply_crash_damage, default_io, FaultyIo, IoClass, RealIo, StorageIo};
pub use store::{Recovered, RecoveryReport, SnapshotManifest, Store, StoreConfig, VerifyReport};
pub use wal::{AppendTimings, DeltaLog, LogRecord, SyncPolicy};
