//! The append-only epoch delta log.
//!
//! Every published update batch becomes one record in the active log segment;
//! replaying the records after the newest checkpoint reproduces the exact
//! epoch sequence the live service went through. Segment files are named
//! `wal-<start-epoch>.log` (epoch zero-padded to 20 digits) and hold the
//! records for a contiguous epoch range; the log rotates to a fresh segment
//! after a bounded number of records and at every checkpoint commit, so
//! segments made wholly redundant by a checkpoint can be deleted.
//!
//! Segment layout (integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "KSPWAL01"
//! 8       4     format version (currently 1)
//! 12      ...   records, back to back
//! ```
//!
//! Record layout:
//!
//! ```text
//! 0       4     payload length in bytes
//! 4       4     CRC-32 of the payload
//! 8       n     payload: epoch (u64) then UpdateBatch (StoreCodec encoding)
//! ```
//!
//! Commit is append + `fsync` (under [`SyncPolicy::Always`], the default):
//! when [`DeltaLog::append`] returns, the batch survives power loss. A crash
//! mid-append leaves a *torn tail* — a record whose length, CRC or payload is
//! incomplete. Recovery detects the tear, truncates the segment back to the
//! last intact record, and continues; only the unacknowledged tail is lost.

use crate::codec::{crc32, Reader, StoreCodec, Writer};
use crate::error::StoreError;
use crate::io::{default_io, IoClass, StorageIo};
use ksp_graph::UpdateBatch;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes identifying a log segment.
pub const SEGMENT_MAGIC: [u8; 8] = *b"KSPWAL01";
/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Size of the segment header in bytes.
pub const SEGMENT_HEADER_LEN: u64 = 12;
/// Size of a record header (length + CRC) in bytes.
pub const RECORD_HEADER_LEN: usize = 8;

/// How one [`DeltaLog::append`] spent its time, split at the durability
/// boundary: record encode + `write_all` vs the `sync_data` that makes the
/// record survive power loss. The write path's per-step timing hook — the
/// serving layer feeds these into its publish-stage histograms and stall
/// triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppendTimings {
    /// Time spent writing the record into the active segment.
    pub write: std::time::Duration,
    /// Time spent in `sync_data`; zero under [`SyncPolicy::Never`].
    pub fsync: std::time::Duration,
}

/// When the log flushes appended records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every appended record: a returned append is durable.
    #[default]
    Always,
    /// Never `fsync` explicitly; durability is whatever the OS provides.
    /// For tests and benchmarks that measure codec/replay cost, not the disk.
    Never,
}

/// The file name of the segment whose first record is `start_epoch`.
pub fn segment_file_name(start_epoch: u64) -> String {
    format!("wal-{start_epoch:020}.log")
}

/// Lists the log segments in `dir` as `(start_epoch, path)`, ascending.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut found = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(|e| StoreError::io(format!("listing {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(format!("listing {}", dir.display()), e))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        let Some(start) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((start, path));
    }
    found.sort_unstable_by_key(|&(start, _)| start);
    Ok(found)
}

/// Removes the newest segment file if a crash during creation/rotation left
/// it without a complete header. Such a remnant (shorter than
/// [`SEGMENT_HEADER_LEN`]) cannot contain any record, so deleting it loses
/// nothing — but leaving it would make every future open fail on an
/// unparseable segment. Returns the number of remnant bytes removed.
pub fn remove_headerless_tail_segment(dir: &Path) -> Result<u64, StoreError> {
    let segments = list_segments(dir)?;
    let Some((_, path)) = segments.last() else { return Ok(0) };
    if !segment_is_headerless_remnant(path)? {
        return Ok(0);
    }
    let len = fs::metadata(path)
        .map_err(|e| StoreError::io(format!("inspecting segment {}", path.display()), e))?
        .len();
    fs::remove_file(path)
        .map_err(|e| StoreError::io(format!("deleting remnant {}", path.display()), e))?;
    crate::checkpoint::sync_dir(dir)?;
    Ok(len.max(1))
}

/// Whether a segment file is a crash remnant with no durable header: shorter
/// than the header, or exactly header-sized with invalid magic/version
/// (a partially persisted header write). Anything longer holds (or held)
/// records behind a once-durable header, so damage there is real corruption,
/// never safely deletable.
pub fn segment_is_headerless_remnant(path: &Path) -> Result<bool, StoreError> {
    let len = fs::metadata(path)
        .map_err(|e| StoreError::io(format!("inspecting segment {}", path.display()), e))?
        .len();
    if len < SEGMENT_HEADER_LEN {
        return Ok(true);
    }
    if len > SEGMENT_HEADER_LEN {
        return Ok(false);
    }
    let bytes = fs::read(path)
        .map_err(|e| StoreError::io(format!("reading segment {}", path.display()), e))?;
    let valid = bytes[..8] == SEGMENT_MAGIC
        && u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) == SEGMENT_VERSION;
    Ok(!valid)
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// The epoch the batch produced when it was published.
    pub epoch: u64,
    /// The published batch.
    pub batch: UpdateBatch,
}

/// The outcome of scanning one segment.
#[derive(Debug, Default)]
pub struct SegmentScan {
    /// The intact records, in append order.
    pub records: Vec<LogRecord>,
    /// Byte offset just past the last intact record (= valid file length).
    pub valid_len: u64,
    /// Bytes of torn tail after the last intact record (0 when clean).
    pub torn_bytes: u64,
    /// Human-readable description of the tear, when there is one.
    pub tear: Option<String>,
}

/// Reads and validates every record of the segment at `path`.
///
/// A malformed record ends the scan: everything before it is returned as
/// intact, everything from its first byte on is reported as the torn tail.
/// The file is not modified; callers decide whether to truncate
/// ([`DeltaLog::open_dir`]) or merely report ([`crate::store::Store::verify`]).
pub fn scan_segment(path: &Path) -> Result<SegmentScan, StoreError> {
    let bytes = fs::read(path)
        .map_err(|e| StoreError::io(format!("reading segment {}", path.display()), e))?;
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        return Err(StoreError::corrupt(path, "file shorter than segment header"));
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return Err(StoreError::corrupt(path, "bad magic (not a log segment)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SEGMENT_VERSION {
        return Err(StoreError::corrupt(path, format!("unsupported segment version {version}")));
    }

    let mut scan = SegmentScan { valid_len: SEGMENT_HEADER_LEN, ..SegmentScan::default() };
    let mut pos = SEGMENT_HEADER_LEN as usize;
    while pos < bytes.len() {
        let tear = |detail: &str| Some(format!("record at offset {pos}: {detail}"));
        if bytes.len() - pos < RECORD_HEADER_LEN {
            scan.tear = tear("header torn");
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload_start = pos + RECORD_HEADER_LEN;
        if bytes.len() - payload_start < len {
            scan.tear = tear("payload torn");
            break;
        }
        let payload = &bytes[payload_start..payload_start + len];
        if crc32(payload) != stored_crc {
            scan.tear = tear("CRC mismatch");
            break;
        }
        let mut r = Reader::new(payload);
        let record = (|| -> Result<LogRecord, crate::error::CodecError> {
            let epoch = r.get_u64()?;
            let batch = UpdateBatch::decode(&mut r)?;
            if !r.is_exhausted() {
                return Err(crate::error::CodecError::InvalidValue("trailing record bytes"));
            }
            Ok(LogRecord { epoch, batch })
        })();
        match record {
            Ok(record) => {
                scan.records.push(record);
                pos = payload_start + len;
                scan.valid_len = pos as u64;
            }
            Err(e) => {
                // The CRC matched but the payload does not decode: this is not
                // a torn append but real corruption (or a format bug) — still
                // treated as ending the segment, with the detail preserved.
                scan.tear = tear(&format!("payload decode failed: {e}"));
                break;
            }
        }
    }
    scan.torn_bytes = bytes.len() as u64 - scan.valid_len;
    Ok(scan)
}

/// The writable epoch delta log of one store directory.
#[derive(Debug)]
pub struct DeltaLog {
    dir: PathBuf,
    /// Existing segments, ascending by start epoch; the last is active.
    segments: Vec<(u64, PathBuf)>,
    active: fs::File,
    records_in_active: u64,
    /// Length of the active segment up to its last *complete* record. A
    /// failed append rewinds the file to this offset, so partial record bytes
    /// never linger in front of later appends.
    active_len: u64,
    /// The epoch the next appended batch must carry.
    next_epoch: u64,
    sync: SyncPolicy,
    max_records_per_segment: u64,
    /// Set when a failed append could not be rewound: the segment may hold
    /// garbage at its tail, so further appends are refused (fail closed).
    impaired: Option<String>,
    /// The I/O backend every content write/fsync goes through (real files by
    /// default; a fault injector under test).
    io: Arc<dyn StorageIo>,
}

impl DeltaLog {
    /// Creates a fresh log in `dir` whose first record will carry
    /// `next_epoch`. Fails if any segment already exists.
    pub fn create(
        dir: &Path,
        next_epoch: u64,
        sync: SyncPolicy,
        max_records_per_segment: u64,
    ) -> Result<Self, StoreError> {
        Self::create_with_io(dir, next_epoch, sync, max_records_per_segment, default_io())
    }

    /// [`DeltaLog::create`] with an explicit I/O backend (fault injection).
    pub fn create_with_io(
        dir: &Path,
        next_epoch: u64,
        sync: SyncPolicy,
        max_records_per_segment: u64,
        io: Arc<dyn StorageIo>,
    ) -> Result<Self, StoreError> {
        if !list_segments(dir)?.is_empty() {
            return Err(StoreError::corrupt(
                dir,
                "refusing to create a log over existing segments",
            ));
        }
        let mut log = DeltaLog {
            dir: dir.to_path_buf(),
            segments: Vec::new(),
            active: new_segment_file(dir, next_epoch, &io)?,
            records_in_active: 0,
            active_len: SEGMENT_HEADER_LEN,
            next_epoch,
            sync,
            max_records_per_segment: max_records_per_segment.max(1),
            impaired: None,
            io,
        };
        log.segments.push((next_epoch, dir.join(segment_file_name(next_epoch))));
        Ok(log)
    }

    /// Opens the log in `dir` for appending after recovery, truncating any
    /// torn tail off the final segment. Returns the log plus the records of
    /// every segment (in epoch order) and the number of torn bytes dropped.
    pub fn open_dir(
        dir: &Path,
        sync: SyncPolicy,
        max_records_per_segment: u64,
    ) -> Result<(Self, Vec<LogRecord>, u64), StoreError> {
        Self::open_dir_with_io(dir, sync, max_records_per_segment, default_io())
    }

    /// [`DeltaLog::open_dir`] with an explicit I/O backend (fault injection).
    pub fn open_dir_with_io(
        dir: &Path,
        sync: SyncPolicy,
        max_records_per_segment: u64,
        io: Arc<dyn StorageIo>,
    ) -> Result<(Self, Vec<LogRecord>, u64), StoreError> {
        let segments = list_segments(dir)?;
        if segments.is_empty() {
            return Err(StoreError::corrupt(dir, "no log segments to open"));
        }
        let mut all_records = Vec::new();
        let mut torn_bytes_total = 0u64;
        let mut last_valid_len = SEGMENT_HEADER_LEN;
        for (i, (start, path)) in segments.iter().enumerate() {
            let scan = scan_segment(path)?;
            let is_last = i == segments.len() - 1;
            if is_last {
                last_valid_len = scan.valid_len;
            }
            if scan.torn_bytes > 0 {
                if !is_last {
                    // A tear anywhere but the newest segment is not a crashed
                    // append — later records were acknowledged after it.
                    return Err(StoreError::corrupt(
                        path,
                        format!(
                            "non-tail segment damaged ({}); refusing recovery",
                            scan.tear.as_deref().unwrap_or("unknown tear")
                        ),
                    ));
                }
                let file = fs::OpenOptions::new().write(true).open(path).map_err(|e| {
                    StoreError::io(format!("opening {} for truncation", path.display()), e)
                })?;
                file.set_len(scan.valid_len).map_err(|e| {
                    StoreError::io(format!("truncating torn tail of {}", path.display()), e)
                })?;
                file.sync_all().map_err(|e| {
                    StoreError::io(format!("fsyncing truncated {}", path.display()), e)
                })?;
                torn_bytes_total += scan.torn_bytes;
            }
            if let Some(first) = scan.records.first() {
                if first.epoch != *start {
                    return Err(StoreError::corrupt(
                        path,
                        format!(
                            "first record epoch {} disagrees with segment name (expected {start})",
                            first.epoch
                        ),
                    ));
                }
            }
            all_records.extend(scan.records);
        }
        for pair in all_records.windows(2) {
            if pair[1].epoch != pair[0].epoch + 1 {
                return Err(StoreError::corrupt(
                    dir,
                    format!("epoch gap in log: {} then {}", pair[0].epoch, pair[1].epoch),
                ));
            }
        }
        let (last_start, last_path) = segments.last().expect("non-empty").clone();
        let next_epoch = all_records.last().map(|r| r.epoch + 1).unwrap_or(last_start);
        let records_in_active = all_records.iter().filter(|r| r.epoch >= last_start).count() as u64;
        // Append mode: every write lands at EOF, so no explicit seek is
        // needed and a rewind via set_len repositions future writes too.
        let active = fs::OpenOptions::new().append(true).open(&last_path).map_err(|e| {
            StoreError::io(format!("opening {} for append", last_path.display()), e)
        })?;
        let log = DeltaLog {
            dir: dir.to_path_buf(),
            segments,
            active,
            records_in_active,
            active_len: last_valid_len,
            next_epoch,
            sync,
            max_records_per_segment: max_records_per_segment.max(1),
            impaired: None,
            io,
        };
        Ok((log, all_records, torn_bytes_total))
    }

    /// The epoch the next appended batch must carry.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Number of segment files currently on disk.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The oldest epoch the log can still replay — the start epoch of the
    /// oldest retained segment. Equals [`DeltaLog::next_epoch`] when the log
    /// holds no records at all (a single empty active segment): the retained
    /// window `[oldest_retained_epoch, next_epoch)` is then empty.
    pub fn oldest_retained_epoch(&self) -> u64 {
        self.segments.first().map(|&(start, _)| start).unwrap_or(self.next_epoch)
    }

    /// Reads the intact records with epoch `>= from_epoch`, in epoch order,
    /// stopping after `max_records` records or once the summed *estimated*
    /// record payload sizes exceed `max_bytes` (at least one record is always
    /// returned when any qualifies) — the log-shipping read path.
    ///
    /// `from_epoch` must be inside the retained window: at least
    /// [`DeltaLog::oldest_retained_epoch`] (older epochs may be pruned — the
    /// caller answers those with a snapshot fallback instead) and at most
    /// [`DeltaLog::next_epoch`] (the future cannot be shipped). Records are
    /// re-validated against their CRCs as they are read, and the returned run
    /// is checked contiguous from `from_epoch`, so a shipped record can never
    /// be torn, corrupt, out of order or skipped.
    pub fn read_from(
        &self,
        from_epoch: u64,
        max_records: usize,
        max_bytes: u64,
    ) -> Result<Vec<LogRecord>, StoreError> {
        if from_epoch < self.oldest_retained_epoch() {
            return Err(StoreError::corrupt(
                &self.dir,
                format!(
                    "epoch {from_epoch} predates the retained log window (oldest retained {})",
                    self.oldest_retained_epoch()
                ),
            ));
        }
        if from_epoch > self.next_epoch {
            return Err(StoreError::corrupt(
                &self.dir,
                format!("epoch {from_epoch} is beyond the log head ({})", self.next_epoch),
            ));
        }
        let mut out: Vec<LogRecord> = Vec::new();
        let mut bytes = 0u64;
        for (i, (_start, path)) in self.segments.iter().enumerate() {
            // Skip segments wholly below the request: a segment's range ends
            // where its successor starts.
            if let Some(&(next_start, _)) = self.segments.get(i + 1) {
                if next_start <= from_epoch {
                    continue;
                }
            }
            for record in scan_segment(path)?.records {
                if record.epoch < from_epoch {
                    continue;
                }
                let expected = from_epoch + out.len() as u64;
                if record.epoch != expected {
                    return Err(StoreError::corrupt(
                        path,
                        format!("expected epoch {expected} next, found {}", record.epoch),
                    ));
                }
                // The same estimate the append path sizes its buffer with;
                // bounding on it keeps a shipped batch safely under the
                // frame payload limit without re-encoding every record.
                bytes += 16 + record.batch.len() as u64 * 12;
                out.push(record);
                if out.len() >= max_records.max(1) || bytes >= max_bytes.max(1) {
                    return Ok(out);
                }
            }
        }
        Ok(out)
    }

    /// Appends one published batch. Durable when this returns (under
    /// [`SyncPolicy::Always`]). Returns how long the append spent writing vs
    /// syncing — the write path's per-step timing hook ([`AppendTimings`]).
    ///
    /// A failed write or fsync rewinds the segment to its last complete
    /// record before the error is returned, so a *retried* append (or the
    /// epochs after it) never lands behind partial bytes — which recovery
    /// would treat as a torn tail and silently truncate together with every
    /// acknowledged record after it. If the rewind itself fails, the log
    /// marks itself impaired and refuses further appends: better a loudly
    /// failing publish path than a log that quietly eats durable epochs.
    pub fn append(&mut self, epoch: u64, batch: &UpdateBatch) -> Result<AppendTimings, StoreError> {
        if let Some(reason) = &self.impaired {
            return Err(StoreError::corrupt(
                &self.dir,
                format!("log refused append after unrecoverable write failure: {reason}"),
            ));
        }
        if epoch != self.next_epoch {
            return Err(StoreError::EpochOutOfOrder { epoch, expected: self.next_epoch });
        }
        let mut payload = Writer::with_capacity(16 + batch.len() * 12);
        payload.put_u64(epoch);
        batch.encode(&mut payload);
        let payload = payload.into_bytes();
        let mut record = Writer::with_capacity(payload.len() + RECORD_HEADER_LEN);
        record.put_u32(payload.len() as u32);
        record.put_u32(crc32(&payload));
        record.put_bytes(&payload);
        let record = record.into_bytes();

        let write_started = std::time::Instant::now();
        let mut timings = AppendTimings::default();
        let io = Arc::clone(&self.io);
        let write_result =
            io.write_all(IoClass::WalRecord, &mut self.active, &record).and_then(|()| {
                timings.write = write_started.elapsed();
                if self.sync == SyncPolicy::Always {
                    let sync_started = std::time::Instant::now();
                    let synced = io.sync_data(IoClass::WalRecord, &self.active);
                    timings.fsync = sync_started.elapsed();
                    synced
                } else {
                    Ok(())
                }
            });
        if let Err(e) = write_result {
            // Drop whatever part of the record reached the file; the segment
            // ends at its previous complete record again (writes are in
            // append mode, so the next write lands at the truncated end).
            let rewind =
                self.active.set_len(self.active_len).and_then(|()| self.active.sync_data());
            if let Err(rewind_err) = rewind {
                self.impaired = Some(format!(
                    "append failed ({e}) and rewind to offset {} failed ({rewind_err})",
                    self.active_len
                ));
            }
            return Err(StoreError::io("appending log record", e));
        }
        self.active_len += record.len() as u64;
        self.next_epoch = epoch + 1;
        self.records_in_active += 1;
        if self.records_in_active >= self.max_records_per_segment {
            // The record above is already durable and the epoch advanced, so
            // a rotation failure must NOT fail this append — the caller
            // would abandon an epoch that recovery will replay, and every
            // retry would be rejected as out of order. Rotation is only a
            // bounding optimisation; a failed one leaves the counters
            // untouched, so the next append simply tries again.
            let _ = self.rotate();
        }
        Ok(timings)
    }

    /// Starts a fresh segment; subsequent appends land there. Idempotent when
    /// the active segment is still empty.
    pub fn rotate(&mut self) -> Result<(), StoreError> {
        if self.records_in_active == 0 {
            return Ok(());
        }
        self.io
            .sync_all(IoClass::WalRecord, &self.active)
            .map_err(|e| StoreError::io("fsyncing rotated segment", e))?;
        self.active = new_segment_file(&self.dir, self.next_epoch, &self.io)?;
        self.segments.push((self.next_epoch, self.dir.join(segment_file_name(self.next_epoch))));
        self.records_in_active = 0;
        self.active_len = SEGMENT_HEADER_LEN;
        Ok(())
    }

    /// Deletes every segment whose records are all covered by a checkpoint at
    /// `epoch` (i.e. whose entire epoch range is ≤ `epoch`). The active
    /// segment is never deleted. Returns how many segments were removed.
    pub fn prune_up_to(&mut self, epoch: u64) -> Result<usize, StoreError> {
        let mut removed = 0;
        // A segment's range ends where the next segment starts; only segments
        // with a successor are candidates, so the active one survives.
        while self.segments.len() > 1 {
            let next_start = self.segments[1].0;
            if next_start == 0 || next_start - 1 > epoch {
                break;
            }
            let (_, path) = self.segments.remove(0);
            fs::remove_file(&path)
                .map_err(|e| StoreError::io(format!("deleting {}", path.display()), e))?;
            removed += 1;
        }
        if removed > 0 {
            crate::checkpoint::sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Whether a failed append left the log refusing writes (fail closed).
    pub fn is_impaired(&self) -> bool {
        self.impaired.is_some()
    }

    /// Probes whether the log can accept appends again: re-attempts the
    /// rewind of an impaired segment, then exercises an fsync on the active
    /// segment through the I/O backend. Success clears the impaired state —
    /// the degraded-mode recovery hook the serving layer's background probe
    /// calls. The fsync goes through the (possibly fault-injecting) backend,
    /// so a still-armed fault keeps the probe failing deterministically.
    pub fn probe(&mut self) -> Result<(), StoreError> {
        if self.impaired.is_some() {
            self.active
                .set_len(self.active_len)
                .and_then(|()| self.active.sync_data())
                .map_err(|e| StoreError::io("rewinding impaired segment", e))?;
            self.impaired = None;
        }
        self.io
            .sync_data(IoClass::WalRecord, &self.active)
            .map_err(|e| StoreError::io("probing log segment", e))
    }
}

/// Deletes zero-length segment files anywhere in `dir`. A crash between a
/// segment file's creation and its header write leaves a zero-length file;
/// such a file can hold no records (losing nothing by removal), but left in
/// place it makes every later open fail on an unparseable segment. Record
/// epoch contiguity is verified independently by [`DeltaLog::open_dir`], so
/// removal in the middle of the list is safe too. Returns how many files
/// were removed.
pub fn remove_zero_length_segments(dir: &Path) -> Result<u64, StoreError> {
    let mut removed = 0;
    for (_, path) in list_segments(dir)? {
        let len = fs::metadata(&path)
            .map_err(|e| StoreError::io(format!("inspecting segment {}", path.display()), e))?
            .len();
        if len == 0 {
            fs::remove_file(&path)
                .map_err(|e| StoreError::io(format!("deleting empty {}", path.display()), e))?;
            removed += 1;
        }
    }
    if removed > 0 {
        crate::checkpoint::sync_dir(dir)?;
    }
    Ok(removed)
}

/// Creates a new segment file with its header written and synced. Opened in
/// append mode: every write lands at the current end of file, which is what
/// lets a failed append rewind with `set_len` alone.
fn new_segment_file(
    dir: &Path,
    start_epoch: u64,
    io: &Arc<dyn StorageIo>,
) -> Result<fs::File, StoreError> {
    let path = dir.join(segment_file_name(start_epoch));
    let mut file = fs::OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(&path)
        .map_err(|e| StoreError::io(format!("creating segment {}", path.display()), e))?;
    let mut header = Writer::with_capacity(SEGMENT_HEADER_LEN as usize);
    header.put_bytes(&SEGMENT_MAGIC);
    header.put_u32(SEGMENT_VERSION);
    let written = io
        .write_all(IoClass::WalHeader, &mut file, &header.into_bytes())
        .map_err(|e| StoreError::io(format!("writing header of {}", path.display()), e))
        .and_then(|()| {
            io.sync_all(IoClass::WalHeader, &file)
                .map_err(|e| StoreError::io(format!("fsyncing new segment {}", path.display()), e))
        })
        .and_then(|()| crate::checkpoint::sync_dir(dir));
    if let Err(e) = written {
        // Never leave a headerless file behind: a later, retried rotation
        // uses a different epoch name, which would strand this remnant
        // mid-list where recovery cannot repair it.
        let _ = fs::remove_file(&path);
        return Err(e);
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::{EdgeId, Weight, WeightUpdate};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ksp-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(seed: u32) -> UpdateBatch {
        UpdateBatch::new(vec![
            WeightUpdate::new(EdgeId(seed), Weight::new(seed as f64 + 0.5)),
            WeightUpdate::new(EdgeId(seed + 1), Weight::new(2.0 * seed as f64 + 1.0)),
        ])
    }

    #[test]
    fn append_and_reopen_replays_every_record() {
        let dir = temp_dir("replay");
        let mut log = DeltaLog::create(&dir, 1, SyncPolicy::Always, 1024).unwrap();
        for epoch in 1..=5u64 {
            log.append(epoch, &batch(epoch as u32)).unwrap();
        }
        drop(log);
        let (log, records, torn) = DeltaLog::open_dir(&dir, SyncPolicy::Always, 1024).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(records.len(), 5);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.epoch, i as u64 + 1);
            assert_eq!(record.batch, batch(record.epoch as u32));
        }
        assert_eq!(log.next_epoch(), 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_epochs_are_rejected() {
        let dir = temp_dir("order");
        let mut log = DeltaLog::create(&dir, 1, SyncPolicy::Never, 1024).unwrap();
        log.append(1, &batch(1)).unwrap();
        assert!(matches!(
            log.append(3, &batch(3)),
            Err(StoreError::EpochOutOfOrder { epoch: 3, expected: 2 })
        ));
        assert!(matches!(log.append(1, &batch(1)), Err(StoreError::EpochOutOfOrder { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_only_the_tail_is_lost() {
        let dir = temp_dir("torn");
        let mut log = DeltaLog::create(&dir, 1, SyncPolicy::Always, 1024).unwrap();
        for epoch in 1..=4u64 {
            log.append(epoch, &batch(epoch as u32)).unwrap();
        }
        drop(log);
        // Tear the last record: chop 3 bytes off the segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        let file = fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let (log, records, torn) = DeltaLog::open_dir(&dir, SyncPolicy::Always, 1024).unwrap();
        assert!(torn > 0);
        assert_eq!(records.len(), 3, "only the torn final record is dropped");
        assert_eq!(log.next_epoch(), 4, "the log re-appends at the dropped epoch");
        drop(log);
        // After truncation the segment scans clean.
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.records.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_middle_record_fails_closed() {
        let dir = temp_dir("midcorrupt");
        let mut log = DeltaLog::create(&dir, 1, SyncPolicy::Always, 2).unwrap();
        for epoch in 1..=4u64 {
            log.append(epoch, &batch(epoch as u32)).unwrap();
        }
        drop(log);
        // Two segments exist (rotation every 2 records). Corrupt the first.
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 2);
        let first = &segments[0].1;
        let mut bytes = fs::read(first).unwrap();
        let mid = bytes.len() - 4;
        bytes[mid] ^= 0xFF;
        fs::write(first, &bytes).unwrap();
        assert!(matches!(
            DeltaLog::open_dir(&dir, SyncPolicy::Always, 2),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_from_serves_the_retained_window_across_rotations() {
        let dir = temp_dir("readfrom");
        let mut log = DeltaLog::create(&dir, 1, SyncPolicy::Never, 2).unwrap();
        for epoch in 1..=7u64 {
            log.append(epoch, &batch(epoch as u32)).unwrap();
        }
        assert_eq!(log.oldest_retained_epoch(), 1);
        // A read spanning several segment boundaries is contiguous.
        let records = log.read_from(2, 100, u64::MAX).unwrap();
        let epochs: Vec<u64> = records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![2, 3, 4, 5, 6, 7]);
        // The record cap truncates, never skips.
        let records = log.read_from(3, 2, u64::MAX).unwrap();
        assert_eq!(records.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![3, 4]);
        // A tiny byte budget still returns at least one record.
        let records = log.read_from(3, 100, 1).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].epoch, 3);
        // Reading at the head is an empty (caught-up) run; beyond it errors.
        assert!(log.read_from(8, 100, u64::MAX).unwrap().is_empty());
        assert!(log.read_from(9, 100, u64::MAX).is_err());
        // Pruning moves the window's lower edge; below it errors (the
        // shipping layer answers that case with a snapshot fallback).
        log.prune_up_to(4).unwrap();
        assert_eq!(log.oldest_retained_epoch(), 5);
        assert!(log.read_from(2, 100, u64::MAX).is_err());
        let records = log.read_from(5, 100, u64::MAX).unwrap();
        assert_eq!(records.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![5, 6, 7]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_pruning_bound_the_log() {
        let dir = temp_dir("prune");
        let mut log = DeltaLog::create(&dir, 1, SyncPolicy::Never, 2).unwrap();
        for epoch in 1..=7u64 {
            log.append(epoch, &batch(epoch as u32)).unwrap();
        }
        // 7 records at 2 per segment: segments start at 1, 3, 5, 7.
        assert_eq!(log.num_segments(), 4);
        // A checkpoint at epoch 4 covers segments [1,2] and [3,4] only.
        let removed = log.prune_up_to(4).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(list_segments(&dir).unwrap().len(), 2);
        // Replay after pruning still yields the uncovered epochs.
        drop(log);
        let (_, records, _) = DeltaLog::open_dir(&dir, SyncPolicy::Never, 2).unwrap();
        let epochs: Vec<u64> = records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![5, 6, 7]);
        let _ = fs::remove_dir_all(&dir);
    }
}
