//! [`StoreCodec`] implementations for the `ksp-graph` types a checkpoint or
//! delta-log record carries.
//!
//! A [`DynamicGraph`] is persisted as its edge-record table (which determines
//! structure, initial weights and current weights) plus the vertex count and
//! version counter; decode rebuilds adjacency through
//! [`DynamicGraph::restore`], so derived lookup structures never hit the disk.

use crate::codec::{encode_slice, Reader, StoreCodec, Writer};
use crate::error::CodecError;
use ksp_graph::subgraph::SubgraphEdge;
use ksp_graph::{
    DynamicGraph, EdgeId, EdgeRecord, Subgraph, SubgraphId, UpdateBatch, VertexId, Weight,
    WeightUpdate,
};

impl StoreCodec for VertexId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(VertexId(r.get_u32()?))
    }
}

impl StoreCodec for EdgeId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EdgeId(r.get_u32()?))
    }
}

impl StoreCodec for SubgraphId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SubgraphId(r.get_u32()?))
    }
}

impl StoreCodec for Weight {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.value());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let value = r.get_f64()?;
        if value.is_nan() || value < 0.0 {
            return Err(CodecError::InvalidValue("weights must be non-negative and not NaN"));
        }
        Ok(Weight::new(value))
    }
}

impl StoreCodec for WeightUpdate {
    fn encode(&self, w: &mut Writer) {
        self.edge.encode(w);
        self.new_weight.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WeightUpdate { edge: EdgeId::decode(r)?, new_weight: Weight::decode(r)? })
    }
}

impl StoreCodec for UpdateBatch {
    fn encode(&self, w: &mut Writer) {
        self.updates.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(UpdateBatch { updates: Vec::decode(r)? })
    }
}

impl StoreCodec for EdgeRecord {
    fn encode(&self, w: &mut Writer) {
        self.u.encode(w);
        self.v.encode(w);
        w.put_u32(self.initial_weight);
        self.current_weight.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EdgeRecord {
            u: VertexId::decode(r)?,
            v: VertexId::decode(r)?,
            initial_weight: r.get_u32()?,
            current_weight: Weight::decode(r)?,
        })
    }
}

impl StoreCodec for DynamicGraph {
    fn encode(&self, w: &mut Writer) {
        (self.is_directed()).encode(w);
        w.put_u64(self.num_vertices() as u64);
        w.put_u64(self.version());
        w.put_u64(self.num_edges() as u64);
        for (_, record) in self.edges() {
            record.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let directed = bool::decode(r)?;
        let num_vertices = r.get_u64()? as usize;
        let version = r.get_u64()?;
        let num_edges = r.get_count(17)?; // minimum encoded EdgeRecord size
        let mut edges = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            edges.push(EdgeRecord::decode(r)?);
        }
        DynamicGraph::restore(directed, num_vertices, edges, version)
            .map_err(|_| CodecError::InvalidValue("edge table inconsistent with vertex count"))
    }
}

impl StoreCodec for SubgraphEdge {
    fn encode(&self, w: &mut Writer) {
        self.global_id.encode(w);
        self.u.encode(w);
        self.v.encode(w);
        w.put_u32(self.initial_weight);
        self.current_weight.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SubgraphEdge {
            global_id: EdgeId::decode(r)?,
            u: VertexId::decode(r)?,
            v: VertexId::decode(r)?,
            initial_weight: r.get_u32()?,
            current_weight: Weight::decode(r)?,
        })
    }
}

impl StoreCodec for Subgraph {
    fn encode(&self, w: &mut Writer) {
        self.id().encode(w);
        self.is_directed().encode(w);
        encode_slice(self.vertices(), w);
        encode_slice(self.edges(), w);
        encode_slice(self.boundary_vertices(), w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let id = SubgraphId::decode(r)?;
        let directed = bool::decode(r)?;
        let vertices = Vec::<VertexId>::decode(r)?;
        let edges = Vec::<SubgraphEdge>::decode(r)?;
        let boundary = Vec::<VertexId>::decode(r)?;
        let vertex_set: std::collections::HashSet<VertexId> = vertices.iter().copied().collect();
        for e in &edges {
            if !vertex_set.contains(&e.u) || !vertex_set.contains(&e.v) {
                return Err(CodecError::InvalidValue("subgraph edge endpoint not in vertex set"));
            }
        }
        Ok(Subgraph::restore(id, directed, vertices, edges, boundary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::GraphBuilder;

    fn sample_graph() -> DynamicGraph {
        let mut b = GraphBuilder::undirected(5);
        b.edge(0, 1, 2).edge(1, 2, 3).edge(2, 3, 1).edge(3, 4, 4).edge(0, 4, 7);
        let mut g = b.build().unwrap();
        let batch = UpdateBatch::new(vec![
            WeightUpdate::new(EdgeId(0), Weight::new(2.75)),
            WeightUpdate::new(EdgeId(3), Weight::new(0.125)),
        ]);
        g.apply_batch(&batch).unwrap();
        g
    }

    #[test]
    fn graph_round_trip_is_byte_identical() {
        let g = sample_graph();
        let bytes = g.to_bytes();
        let decoded = DynamicGraph::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.num_vertices(), g.num_vertices());
        assert_eq!(decoded.num_edges(), g.num_edges());
        assert_eq!(decoded.version(), g.version());
        for (id, record) in g.edges() {
            assert_eq!(decoded.edge(id), record);
        }
        // Re-encoding the decoded graph reproduces the original bytes.
        assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn update_batch_round_trips() {
        let batch = UpdateBatch::new(vec![
            WeightUpdate::new(EdgeId(3), Weight::new(1.5)),
            WeightUpdate::new(EdgeId(0), Weight::new(0.0)),
        ]);
        assert_eq!(UpdateBatch::from_bytes(&batch.to_bytes()).unwrap(), batch);
    }

    #[test]
    fn negative_weight_bits_are_rejected() {
        let mut w = Writer::new();
        w.put_f64(-1.0);
        let err = Weight::from_bytes(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::InvalidValue(_)));
    }

    #[test]
    fn subgraph_round_trip_preserves_boundary_and_weights() {
        use ksp_graph::{PartitionConfig, Partitioner};
        let g = sample_graph();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(3)).partition(&g).unwrap();
        for sg in partitioning.subgraphs() {
            let decoded = Subgraph::from_bytes(&sg.to_bytes()).unwrap();
            assert_eq!(decoded.id(), sg.id());
            assert_eq!(decoded.vertices(), sg.vertices());
            assert_eq!(decoded.edges(), sg.edges());
            assert_eq!(decoded.boundary_vertices(), sg.boundary_vertices());
        }
    }

    #[test]
    fn inconsistent_subgraph_edges_are_rejected() {
        // An edge table referencing a vertex outside the vertex set must fail
        // decoding instead of panicking inside Subgraph construction.
        let mut w = Writer::new();
        SubgraphId(0).encode(&mut w);
        false.encode(&mut w);
        vec![VertexId(0), VertexId(1)].encode(&mut w);
        vec![SubgraphEdge {
            global_id: EdgeId(0),
            u: VertexId(0),
            v: VertexId(9),
            initial_weight: 1,
            current_weight: Weight::new(1.0),
        }]
        .encode(&mut w);
        Vec::<VertexId>::new().encode(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(Subgraph::from_bytes(&bytes), Err(CodecError::InvalidValue(_))));
    }
}
