//! The protocol endpoint of a [`QueryService`]: request dispatch, the
//! in-process transport and the TCP server.
//!
//! [`QueryService::handle`] turns any protocol [`Request`] into a
//! [`Response`] — it is the single dispatch both transports funnel into, so a
//! query answered over a socket runs exactly the code path (and produces the
//! bit-identical answer) of a query answered in process:
//!
//! * [`InProcTransport`] hands the request straight to `handle` — nothing is
//!   serialised, paths move by pointer, and the transport's byte counters
//!   stay at zero (the baseline the communication-cost experiments compare
//!   the wire against).
//! * [`TcpServer`] runs one acceptor thread plus one worker thread per
//!   connection. Each worker reads length-prefixed CRC-guarded frames,
//!   decodes, dispatches to `handle`, and writes the response frame back.
//!   Malformed, truncated, corrupt or foreign-version frames are answered
//!   with a typed [`ErrorReply`] and a clean disconnect — never a panic, and
//!   never a hung client.
//!
//! Shutdown is graceful: dropping (or explicitly shutting down) the server
//! stops the acceptor, half-closes every live connection so its worker
//! observes end-of-stream, and joins all threads before returning.

use crate::metrics::MetricsReport;
use crate::service::{PublishError, QueryResponse, QueryService, ServiceError};
use ksp_obs::EventKind;
use ksp_proto::frame::{frame_len, read_frame, write_frame, FrameError, FrameKind};
use ksp_proto::message::{
    ErrorReply, QueryAnswer, QueryOutcome, Request, Response, WireMetrics, WireQueueGauge,
    PROTOCOL_VERSION, PROTOCOL_VERSION_MAX,
};
use ksp_proto::obs::{WireCounter, WireGauge, WireObsSnapshot};
use ksp_proto::transport::{Transport, TransportError, TransportStats};
use ksp_store::StoreCodec;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

impl From<ServiceError> for ErrorReply {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Overloaded { depth, retry_after_ms } => {
                ErrorReply::Overloaded { depth: depth as u64, retry_after_ms }
            }
            ServiceError::ShuttingDown => ErrorReply::ShuttingDown,
            ServiceError::InvalidQuery(g) => ErrorReply::InvalidQuery(g.to_string()),
            ServiceError::InvalidK => ErrorReply::InvalidK,
        }
    }
}

impl From<PublishError> for ErrorReply {
    fn from(e: PublishError) -> Self {
        match e {
            PublishError::Graph(g) => ErrorReply::InvalidBatch(g.to_string()),
            PublishError::Store(s) => ErrorReply::Storage(s.to_string()),
            PublishError::Degraded(reason) => ErrorReply::Degraded(reason),
        }
    }
}

/// The replication endpoint a [`QueryService`] delegates `ShipSegment`,
/// `SnapshotChunk` and `ReplAck` requests to, when one is registered via
/// [`QueryService::set_replication_hook`].
///
/// `ksp-serve` knows nothing about log shipping — the hook inverts the
/// dependency so `ksp-repl` can plug a leader-side `ReplicationSource` into
/// the service *after* construction, and both transports (thread-per-connection
/// and event loop) route through it automatically because they both funnel
/// into [`QueryService::handle`].
pub trait ReplicationHook: Send + Sync {
    /// Answers one replication request. Only the three replication variants
    /// are ever dispatched here; anything else is a service bug.
    fn handle(&self, request: &Request) -> Response;

    /// Metric families (`ksp_repl_*`) the hook contributes to the service's
    /// observability snapshot, appended to every `ObsSnapshot` response.
    fn metric_families(&self) -> (Vec<ksp_obs::Counter>, Vec<ksp_obs::Gauge>);
}

fn answer_from(response: QueryResponse) -> QueryAnswer {
    QueryAnswer {
        epoch: response.epoch,
        cache_hit: response.cache_hit,
        latency_micros: response.latency.as_micros().min(u64::MAX as u128) as u64,
        stats: (&response.stats).into(),
        paths: response.paths,
    }
}

/// Flattens a [`MetricsReport`] into its wire form — including the
/// `rejected` admission counter and the per-shard queue gauges, so overload
/// is observable through a remote `Metrics` request exactly as it is in
/// process.
pub fn wire_metrics(report: &MetricsReport) -> WireMetrics {
    let micros = |d: std::time::Duration| d.as_micros().min(u64::MAX as u128) as u64;
    WireMetrics {
        completed: report.completed,
        rejected: report.rejected,
        cache_hits: report.cache_hits,
        cache_misses: report.cache_misses,
        epochs_published: report.epochs_published,
        p50_micros: micros(report.p50),
        p95_micros: micros(report.p95),
        p99_micros: micros(report.p99),
        mean_micros: micros(report.mean),
        max_micros: micros(report.max),
        queue_gauges: report
            .queue_gauges
            .iter()
            .map(|g| WireQueueGauge {
                depth: g.depth as u64,
                high_water: g.high_water as u64,
                max_depth: g.max_depth as u64,
            })
            .collect(),
        steals: report.steals,
        cache_retained: report.cache_retained,
        cache_evicted: report.cache_evicted,
        epoch_age_ms: report.epoch_age.as_millis().min(u64::MAX as u128) as u64,
    }
}

impl QueryService {
    /// Answers one protocol request. This is the generic dispatch both
    /// transports call into; [`QueryService::query`] and
    /// [`QueryService::apply_batch`] are the typed fast paths it routes
    /// through, so in-process and remote callers observe identical behaviour.
    ///
    /// A `Request::Traced` envelope is unwrapped first and its context echoed
    /// back around the response — around typed error replies too — and the
    /// trace id is threaded into the query path so any flight dump the
    /// request triggers carries it.
    pub fn handle(&self, request: Request) -> Response {
        let (trace, request) = request.into_parts();
        let trace_id = trace.map(|t| t.trace_id).unwrap_or(0);
        let response = self.handle_inner(request, trace_id);
        match trace {
            Some(trace) => Response::Traced { trace, inner: Box::new(response) },
            None => response,
        }
    }

    fn handle_inner(&self, request: Request, trace_id: u64) -> Response {
        match request {
            // `into_parts` unwraps exactly one envelope, and the wire decoder
            // rejects nesting, so this arm is only reachable for an
            // in-process caller that built a nested envelope by hand.
            Request::Traced { .. } => Response::Error(ErrorReply::Malformed(
                "nested trace envelopes are not supported".to_string(),
            )),
            Request::Ping { protocol_version, min_version, max_version } => {
                if min_version == 0 && max_version == 0 {
                    // Legacy handshake: the client speaks exactly one version.
                    // `negotiated_version: 0` keeps the Pong wire-identical to
                    // the pre-negotiation encoding, so old clients decode it.
                    if protocol_version != PROTOCOL_VERSION {
                        Response::Error(ErrorReply::UnsupportedVersion {
                            server: PROTOCOL_VERSION,
                            client: protocol_version,
                        })
                    } else {
                        Response::Pong {
                            protocol_version: PROTOCOL_VERSION,
                            epoch: self.current_epoch(),
                            num_shards: self.num_shards() as u64,
                            negotiated_version: 0,
                        }
                    }
                } else if min_version > PROTOCOL_VERSION_MAX
                    || max_version < PROTOCOL_VERSION
                    || min_version > max_version
                {
                    // The announced range and ours are disjoint (or nonsense).
                    Response::Error(ErrorReply::UnsupportedVersion {
                        server: PROTOCOL_VERSION_MAX,
                        client: max_version,
                    })
                } else {
                    Response::Pong {
                        protocol_version: PROTOCOL_VERSION,
                        epoch: self.current_epoch(),
                        num_shards: self.num_shards() as u64,
                        negotiated_version: max_version.min(PROTOCOL_VERSION_MAX),
                    }
                }
            }
            Request::Query(key) => match self.query_traced(key.source, key.target, key.k, trace_id)
            {
                Ok(response) => Response::Query(answer_from(response)),
                Err(e) => Response::Error(e.into()),
            },
            Request::QueryBatch(keys) => Response::QueryBatch(
                keys.into_iter()
                    .map(|key| match self.query_traced(key.source, key.target, key.k, trace_id) {
                        Ok(response) => QueryOutcome::Answer(answer_from(response)),
                        Err(e) => QueryOutcome::Error(e.into()),
                    })
                    .collect(),
            ),
            Request::ApplyBatch(batch) => match self.apply_batch(&batch) {
                Ok(epoch) => Response::ApplyBatch { epoch },
                Err(e) => Response::Error(e.into()),
            },
            Request::Metrics => Response::Metrics(wire_metrics(&self.metrics())),
            Request::CheckpointNow => match self.checkpoint_now() {
                Ok(epoch) => Response::CheckpointNow { epoch },
                Err(e) => Response::Error(e.into()),
            },
            Request::ObsSnapshot => {
                Response::ObsSnapshot(WireObsSnapshot::from(&self.obs_snapshot()))
            }
            request @ (Request::ShipSegment { .. }
            | Request::SnapshotChunk { .. }
            | Request::ReplAck { .. }) => match self.replication_hook() {
                Some(hook) => hook.handle(&request),
                None => Response::Error(ErrorReply::Unsupported(
                    "replication is not enabled on this server".to_string(),
                )),
            },
        }
    }
}

/// The zero-copy in-process transport: requests are dispatched straight into
/// [`QueryService::handle`] on the caller's thread. No bytes are produced, so
/// [`TransportStats`] reports zero wire cost — by design, as the baseline the
/// TCP path is priced against.
pub struct InProcTransport {
    service: Arc<QueryService>,
    stats: TransportStats,
}

impl InProcTransport {
    /// Wraps a shared service handle.
    pub fn new(service: Arc<QueryService>) -> Self {
        InProcTransport { service, stats: TransportStats::default() }
    }
}

impl Transport for InProcTransport {
    fn roundtrip(&mut self, request: Request) -> Result<Response, TransportError> {
        self.stats.requests += 1;
        let response = self.service.handle(request);
        self.stats.responses += 1;
        Ok(response)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// Per-connection transport accounting, shared between the connection worker
/// (which updates it) and the registry (which snapshots it into `ObsSnapshot`
/// responses). All counters are cumulative over the connection's lifetime.
#[derive(Debug, Default)]
struct ConnStats {
    /// Request frames read from this connection.
    frames_in: AtomicU64,
    /// Response frames written to this connection.
    frames_out: AtomicU64,
    /// Wire bytes read (headers + payloads).
    bytes_in: AtomicU64,
    /// Wire bytes written (headers + payloads).
    bytes_out: AtomicU64,
    /// Cumulative microseconds spent inside `handle` for this connection's
    /// requests — server-side service time, excluding socket I/O.
    handle_micros: AtomicU64,
}

/// One live connection's registry entry: the half-closable stream plus its
/// transport accounting.
struct ConnEntry {
    stream: TcpStream,
    stats: Arc<ConnStats>,
}

struct ServerShared {
    service: Arc<QueryService>,
    shutting_down: AtomicBool,
    /// Live connections by id, half-closed at shutdown so blocked worker
    /// reads observe end-of-stream. A worker deregisters its entry on exit —
    /// the registry tracks live connections only, and a socket closes the
    /// moment its worker is done with it.
    conns: Mutex<HashMap<u64, ConnEntry>>,
    next_conn_id: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A TCP serving endpoint over a [`QueryService`]: one acceptor thread, one
/// worker thread per connection, graceful shutdown on drop.
pub struct TcpServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts accepting
    /// connections for `service`.
    pub fn bind(service: Arc<QueryService>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service,
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let acceptor = std::thread::Builder::new()
            .name("ksp-serve-acceptor".to_string())
            .spawn({
                let shared = shared.clone();
                move || acceptor_main(&listener, &shared)
            })
            .expect("failed to spawn acceptor");
        Ok(TcpServer { local_addr, shared, acceptor: Some(acceptor) })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serving threads this server has spawned so far: the acceptor plus one
    /// worker per accepted connection. Workers are joined only at shutdown,
    /// so while connections are live this is also the peak — the number the
    /// event loop's fixed [`thread_count`](crate::EventLoopServer::thread_count)
    /// is compared against.
    pub fn thread_count(&self) -> usize {
        1 + self.shared.workers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Stops accepting, disconnects every live connection and joins all
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor: a throwaway connection makes `accept` return,
        // after which the acceptor observes the flag and exits.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Half-close every live connection; blocked worker reads observe EOF
        // and the workers exit cleanly.
        for (_, conn) in self.shared.conns.lock().unwrap_or_else(|e| e.into_inner()).drain() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        let workers: Vec<_> =
            self.shared.workers.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_main(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent accept error (classically EMFILE when the fd
                // limit is hit) must not peg a core in a tight retry loop.
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::new(ConnStats::default());
        if let Ok(registered) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(conn_id, ConnEntry { stream: registered, stats: stats.clone() });
        }
        let worker = std::thread::Builder::new().name("ksp-serve-conn".to_string()).spawn({
            let shared = shared.clone();
            move || connection_main(conn_id, stream, &shared, &stats)
        });
        match worker {
            Ok(handle) => {
                let mut workers = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
                // Drop handles of connections that already finished (a
                // detached finished thread needs no join), so the registry
                // tracks live workers instead of growing per connection ever
                // accepted.
                workers.retain(|h| !h.is_finished());
                workers.push(handle);
            }
            Err(e) => {
                eprintln!("ksp-serve: failed to spawn connection worker: {e}");
                // The spawn consumed (and dropped) the accepted stream, but
                // the registry clone would keep the socket open with nobody
                // serving it — deregister and close so the peer sees EOF
                // instead of a hang.
                if let Some(conn) =
                    shared.conns.lock().unwrap_or_else(|e| e.into_inner()).remove(&conn_id)
                {
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
    }
}

/// Hostile-frame reason codes carried in the [`EventKind::HostileFrame`]
/// flight events (payload word `a`).
pub mod hostile_frame {
    /// The frame parsed but its request payload did not decode.
    pub const UNDECODABLE_PAYLOAD: u64 = 0;
    /// The peer sent a response-kind frame to a server.
    pub const RESPONSE_KIND_FRAME: u64 = 1;
    /// The peer's frame header announced a foreign protocol version
    /// (payload word `b` = the version it announced).
    pub const VERSION_MISMATCH: u64 = 2;
    /// Framing was lost: bad magic, CRC mismatch, truncation or an oversized
    /// length.
    pub const FRAMING_LOST: u64 = 3;
}

/// Serves one connection until the peer disconnects, sends unrecoverable
/// bytes, or the server shuts down. Protocol failures are answered with a
/// typed [`ErrorReply`] before the connection closes; once framing is lost
/// the stream cannot be resynchronised, so the close is part of the
/// contract.
///
/// Every hostile frame is also an anomaly trigger: the service's flight
/// recorder captures a dump tagged with the [`hostile_frame`] reason code, so
/// an operator scraping `ObsSnapshot` sees what the service was doing when a
/// peer started speaking garbage.
fn connection_main(conn_id: u64, stream: TcpStream, shared: &ServerShared, stats: &ConnStats) {
    if let Ok(read_half) = stream.try_clone() {
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        serve_connection(&mut reader, &mut writer, shared, stats);
        // Close the socket *now*: the registry may still hold a clone (until
        // the deregistration below), and a clean disconnect after an error
        // reply is part of the protocol contract.
        let _ = writer.flush();
        let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
    } else {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    shared.conns.lock().unwrap_or_else(|e| e.into_inner()).remove(&conn_id);
}

fn serve_connection(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    shared: &ServerShared,
    stats: &ConnStats,
) {
    let send = |writer: &mut BufWriter<TcpStream>, response: &Response| {
        let payload = response.to_bytes();
        match write_frame(writer, FrameKind::Response, &payload) {
            Ok(()) => {
                let ok = writer.flush().is_ok();
                if ok {
                    stats.frames_out.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_out.fetch_add(frame_len(payload.len()) as u64, Ordering::Relaxed);
                }
                ok
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {
                // The response exceeds the frame cap. write_frame refused it
                // before any byte reached the stream, so framing is intact:
                // answer typed and keep the connection alive.
                let reply = Response::Error(ErrorReply::Unsupported(format!(
                    "response does not fit one frame ({e}); split the request"
                )));
                let reply_payload = reply.to_bytes();
                let ok = write_frame(writer, FrameKind::Response, &reply_payload)
                    .and_then(|()| writer.flush())
                    .is_ok();
                if ok {
                    stats.frames_out.fetch_add(1, Ordering::Relaxed);
                    stats
                        .bytes_out
                        .fetch_add(frame_len(reply_payload.len()) as u64, Ordering::Relaxed);
                }
                ok
            }
            Err(_) => false,
        }
    };
    loop {
        match read_frame(reader) {
            Ok(None) => return, // clean disconnect at a frame boundary
            Ok(Some((FrameKind::Request, payload))) => {
                stats.frames_in.fetch_add(1, Ordering::Relaxed);
                stats.bytes_in.fetch_add(frame_len(payload.len()) as u64, Ordering::Relaxed);
                match Request::from_bytes(&payload) {
                    Ok(request) => {
                        let started = std::time::Instant::now();
                        let mut response = shared.service.handle(request);
                        stats.handle_micros.fetch_add(
                            started.elapsed().as_micros().min(u64::MAX as u128) as u64,
                            Ordering::Relaxed,
                        );
                        append_connection_metrics(shared, &mut response);
                        let disconnect = matches!(
                            response,
                            Response::Error(ErrorReply::UnsupportedVersion { .. })
                        );
                        if !send(writer, &response) || disconnect {
                            return;
                        }
                    }
                    Err(e) => {
                        shared.service.observability().trigger(
                            EventKind::HostileFrame,
                            hostile_frame::UNDECODABLE_PAYLOAD,
                            0,
                            0,
                            None,
                        );
                        let reply = Response::Error(ErrorReply::Malformed(format!(
                            "request payload did not decode: {e}"
                        )));
                        send(writer, &reply);
                        return;
                    }
                }
            }
            Ok(Some((FrameKind::Response, _))) => {
                shared.service.observability().trigger(
                    EventKind::HostileFrame,
                    hostile_frame::RESPONSE_KIND_FRAME,
                    0,
                    0,
                    None,
                );
                let reply = Response::Error(ErrorReply::Malformed(
                    "clients must send request frames".to_string(),
                ));
                send(writer, &reply);
                return;
            }
            Err(FrameError::VersionMismatch { ours, theirs }) => {
                shared.service.observability().trigger(
                    EventKind::HostileFrame,
                    hostile_frame::VERSION_MISMATCH,
                    theirs as u64,
                    0,
                    None,
                );
                let reply = Response::Error(ErrorReply::UnsupportedVersion {
                    server: ours,
                    client: theirs,
                });
                send(writer, &reply);
                return;
            }
            Err(FrameError::Io(_)) => return, // peer is gone; nothing to tell it
            Err(e) => {
                // BadMagic / CRC mismatch / truncation / oversized length:
                // answer typed, then close — frame synchronisation is lost.
                shared.service.observability().trigger(
                    EventKind::HostileFrame,
                    hostile_frame::FRAMING_LOST,
                    0,
                    0,
                    None,
                );
                let reply = Response::Error(ErrorReply::Malformed(e.to_string()));
                send(writer, &reply);
                return;
            }
        }
    }
}

/// Appends the TCP layer's per-connection transport accounting to an
/// `ObsSnapshot` response (unwrapping a trace envelope if present): one
/// `ksp_connection_*` counter per live connection per family, grouped by
/// family so the text renderer emits a single `# TYPE` per family, plus the
/// `ksp_open_connections` gauge. These families exist only over TCP — the
/// service itself cannot see sockets, so they are appended here rather than
/// in [`QueryService::obs_snapshot`].
fn append_connection_metrics(shared: &ServerShared, response: &mut Response) {
    let snapshot = match response {
        Response::ObsSnapshot(s) => s,
        Response::Traced { inner, .. } => match inner.as_mut() {
            Response::ObsSnapshot(s) => s,
            _ => return,
        },
        _ => return,
    };
    let mut entries: Vec<(u64, Arc<ConnStats>)> = shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(&id, entry)| (id, entry.stats.clone()))
        .collect();
    entries.sort_unstable_by_key(|&(id, _)| id);
    type StatAccessor = fn(&ConnStats) -> u64;
    let families: [(&str, StatAccessor); 5] = [
        ("ksp_connection_frames_in_total", |s| s.frames_in.load(Ordering::Relaxed)),
        ("ksp_connection_frames_out_total", |s| s.frames_out.load(Ordering::Relaxed)),
        ("ksp_connection_bytes_in_total", |s| s.bytes_in.load(Ordering::Relaxed)),
        ("ksp_connection_bytes_out_total", |s| s.bytes_out.load(Ordering::Relaxed)),
        ("ksp_connection_handle_micros_total", |s| s.handle_micros.load(Ordering::Relaxed)),
    ];
    for (name, value_of) in families {
        for (id, stats) in &entries {
            snapshot.counters.push(WireCounter {
                name: name.to_string(),
                labels: format!("conn=\"{id}\""),
                value: value_of(stats),
            });
        }
    }
    snapshot.gauges.push(WireGauge {
        name: "ksp_open_connections".to_string(),
        labels: String::new(),
        value: entries.len() as f64,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use ksp_core::dtlp::DtlpConfig;
    use ksp_graph::{VertexId, WeightUpdate};
    use ksp_proto::message::QueryKey;
    use ksp_proto::KspClient;
    use ksp_workload::{RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel};

    fn service(n: usize, shards: usize, seed: u64) -> (Arc<QueryService>, ksp_graph::DynamicGraph) {
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n))
            .generate(seed)
            .unwrap()
            .graph;
        let config = ServiceConfig::new(shards, DtlpConfig::new(16, 2));
        let service = Arc::new(QueryService::start(graph.clone(), config).unwrap());
        (service, graph)
    }

    #[test]
    fn handle_dispatches_the_full_operator_surface() {
        let (service, graph) = service(150, 2, 3);
        let last = VertexId(graph.num_vertices() as u32 - 1);

        // Legacy Ping: agreeing versions get a wire-identical legacy Pong
        // (negotiated_version 0), foreign versions a typed error.
        let pong = service.handle(Request::ping_legacy(PROTOCOL_VERSION));
        assert_eq!(
            pong,
            Response::Pong {
                protocol_version: PROTOCOL_VERSION,
                epoch: 0,
                num_shards: 2,
                negotiated_version: 0,
            }
        );
        assert!(matches!(
            service.handle(Request::ping_legacy(999)),
            Response::Error(ErrorReply::UnsupportedVersion { client: 999, .. })
        ));

        // Range Ping: the server picks the highest mutually supported
        // version; a disjoint range is rejected with its own ceiling.
        assert!(matches!(
            service.handle(Request::ping()),
            Response::Pong { negotiated_version: PROTOCOL_VERSION_MAX, .. }
        ));
        assert!(matches!(
            service.handle(Request::Ping {
                protocol_version: PROTOCOL_VERSION,
                min_version: PROTOCOL_VERSION_MAX + 1,
                max_version: PROTOCOL_VERSION_MAX + 5,
            }),
            Response::Error(ErrorReply::UnsupportedVersion { server: PROTOCOL_VERSION_MAX, .. })
        ));

        // Replication requests are typed-unsupported until a hook registers.
        assert!(matches!(
            service.handle(Request::ShipSegment { from_epoch: 1, max_records: 8, max_bytes: 1024 }),
            Response::Error(ErrorReply::Unsupported(_))
        ));

        // Query: answers equal the direct path bit for bit.
        let direct = service.query(VertexId(0), last, 2).unwrap();
        let Response::Query(answer) =
            service.handle(Request::Query(QueryKey::new(VertexId(0), last, 2)))
        else {
            panic!("expected a Query response");
        };
        assert_eq!(answer.epoch, direct.epoch);
        assert_eq!(answer.paths.len(), direct.paths.len());
        for (a, b) in answer.paths.iter().zip(direct.paths.iter()) {
            assert_eq!(a.vertices(), b.vertices());
            assert_eq!(a.distance().value().to_bits(), b.distance().value().to_bits());
        }

        // QueryBatch: per-query outcomes, failures isolated.
        let bad = VertexId(graph.num_vertices() as u32 + 9);
        let Response::QueryBatch(outcomes) = service.handle(Request::QueryBatch(vec![
            QueryKey::new(VertexId(0), last, 1),
            QueryKey::new(bad, last, 1),
            QueryKey::new(VertexId(0), last, 0),
        ])) else {
            panic!("expected a QueryBatch response");
        };
        assert_eq!(outcomes.len(), 3);
        assert!(matches!(outcomes[0], QueryOutcome::Answer(_)));
        assert!(matches!(outcomes[1], QueryOutcome::Error(ErrorReply::InvalidQuery(_))));
        assert!(matches!(outcomes[2], QueryOutcome::Error(ErrorReply::InvalidK)));

        // ApplyBatch publishes; the epoch is visible to later requests.
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.4), 5);
        let Response::ApplyBatch { epoch } =
            service.handle(Request::ApplyBatch(traffic.next_snapshot()))
        else {
            panic!("expected an ApplyBatch response");
        };
        assert_eq!(epoch, 1);
        assert_eq!(service.current_epoch(), 1);

        // An invalid batch fails typed and publishes nothing.
        let bogus = ksp_graph::UpdateBatch::new(vec![WeightUpdate::new(
            ksp_graph::EdgeId(graph.num_edges() as u32 + 7),
            ksp_graph::Weight::new(1.0),
        )]);
        assert!(matches!(
            service.handle(Request::ApplyBatch(bogus)),
            Response::Error(ErrorReply::InvalidBatch(_))
        ));
        assert_eq!(service.current_epoch(), 1);

        // Metrics carries the rejected counter and per-shard gauges.
        let Response::Metrics(metrics) = service.handle(Request::Metrics) else {
            panic!("expected a Metrics response");
        };
        assert_eq!(metrics.epochs_published, 1);
        assert_eq!(metrics.rejected, 0);
        assert_eq!(metrics.queue_gauges.len(), 2);

        // CheckpointNow on an in-memory service is a typed no-op.
        assert_eq!(service.handle(Request::CheckpointNow), Response::CheckpointNow { epoch: None });

        // ObsSnapshot mirrors the in-process snapshot through the wire types
        // losslessly.
        let Response::ObsSnapshot(wire) = service.handle(Request::ObsSnapshot) else {
            panic!("expected an ObsSnapshot response");
        };
        let snap = wire.into_snapshot().unwrap();
        assert_eq!(snap.counter("ksp_requests_completed_total"), metrics.completed);
        assert_eq!(snap.counter("ksp_epochs_published_total"), 1);
        assert_eq!(snap.end_to_end.count, metrics.completed);
    }

    #[test]
    fn in_proc_transport_is_zero_copy_and_counts_requests() {
        let (service, graph) = service(120, 1, 11);
        let last = VertexId(graph.num_vertices() as u32 - 1);
        let (mut client, info) =
            KspClient::handshake(InProcTransport::new(service.clone())).unwrap();
        assert_eq!(info.protocol_version, PROTOCOL_VERSION);
        assert_eq!(info.num_shards, 1);
        let answer = client.query(VertexId(0), last, 2).unwrap();
        assert_eq!(answer.epoch, 0);
        assert!(!answer.paths.is_empty());
        let stats = client.stats();
        assert_eq!(stats.requests, 2); // ping + query
        assert_eq!(stats.bytes_sent, 0, "in-process moves no bytes");
        assert_eq!(stats.bytes_received, 0);
    }

    #[test]
    fn tcp_server_round_trips_and_shuts_down_gracefully() {
        let (service, graph) = service(130, 2, 17);
        let last = VertexId(graph.num_vertices() as u32 - 1);
        let mut server = TcpServer::bind(service.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (mut client, info) = KspClient::connect(addr).unwrap();
        assert_eq!(info.protocol_version, PROTOCOL_VERSION);
        let over_wire = client.query(VertexId(0), last, 2).unwrap();
        let direct = service.query(VertexId(0), last, 2).unwrap();
        assert_eq!(over_wire.paths.len(), direct.paths.len());
        for (a, b) in over_wire.paths.iter().zip(direct.paths.iter()) {
            assert_eq!(a.vertices(), b.vertices());
            assert_eq!(a.distance().value().to_bits(), b.distance().value().to_bits());
        }
        let stats = client.stats();
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);

        // Graceful shutdown: the held connection is closed, not leaked.
        server.shutdown();
        assert!(client.ping().is_err(), "connection must be closed after shutdown");
    }

    #[test]
    fn scrape_and_hostile_frames_over_tcp() {
        use std::io::{Read as _, Write as _};
        let (service, graph) = service(130, 2, 23);
        let last = VertexId(graph.num_vertices() as u32 - 1);
        let mut server = TcpServer::bind(service.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (mut client, _) = KspClient::connect(addr).unwrap();
        client.query(VertexId(0), last, 2).unwrap();
        let text = client.scrape_text().unwrap();
        for family in ["ksp_stage_duration_seconds", "ksp_request_duration_seconds"] {
            assert!(text.contains(family), "scrape must carry {family}");
        }
        assert!(text.contains("stage=\"engine\""));
        assert!(text.contains("ksp_requests_completed_total 1"));

        // A peer speaking garbage is answered typed *and* captured as a
        // flight-recorder anomaly with the framing-lost reason code.
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"this is not a KSPF frame at all").unwrap();
        raw.flush().unwrap();
        let mut reply = Vec::new();
        let _ = raw.read_to_end(&mut reply); // typed Malformed reply, then EOF
        assert!(!reply.is_empty(), "hostile bytes still get a typed reply");
        let dump = service.observability().flight().last_dump().expect("hostile frame dumps");
        assert_eq!(dump.cause.kind, EventKind::HostileFrame);
        assert_eq!(dump.cause.a, hostile_frame::FRAMING_LOST);

        // The dump travels: a fresh scrape decodes it back out of the wire.
        let snapshot = client.obs_snapshot().unwrap();
        let wired = snapshot.dump.expect("the dump rides the ObsSnapshot response");
        assert_eq!(wired.cause.kind, EventKind::HostileFrame);
        server.shutdown();
    }
}
