//! Epoch-stamped LRU cache of query results with dirty-set-aware survival.
//!
//! The paper observes that weight updates arrive in periodic batches
//! (Section 6.2), so between two epochs the answer to a repeated
//! `(source, target, k)` request is bit-identical. Entries are therefore
//! stamped with the epoch they are exact for — but unlike the original
//! wholesale-clear design, an epoch publish no longer empties the cache.
//! Every entry carries the [`QueryTrace`] of its answer: the set of subgraphs
//! the answer depended on (level-one lookups plus the skeleton survival
//! sweep). [`ResultCache::retain_for_publish`] evicts exactly the entries
//! whose trace intersects the batch's dirty set and *re-stamps* the rest to
//! the new epoch, so under steady small-batch churn the hit rate tracks the
//! locality of the updates instead of collapsing to zero at every publish —
//! the read-path counterpart of maintenance cost scaling with what changed.
//!
//! The implementation is a classic O(1) LRU: a `HashMap` from key to a slot in
//! a slab of doubly linked entries, with the most recently used entry at the
//! head of the list.

use ksp_algo::Path;
use ksp_core::kspdg::QueryTrace;
use ksp_graph::{SubgraphSet, VertexId};
use std::collections::{HashMap, VecDeque};

/// Cache key: the full query identity. The epoch an entry is exact for is
/// stored *in* the entry (and advanced by survival), not in the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Query source vertex.
    pub source: VertexId,
    /// Query target vertex.
    pub target: VertexId,
    /// Number of paths requested.
    pub k: usize,
}

/// What [`ResultCache::retain_for_publish`] did to the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheRetention {
    /// Entries whose trace was disjoint from the dirty set: re-stamped to the
    /// new epoch and still servable.
    pub retained: usize,
    /// Entries evicted because their trace intersected a dirty set, their
    /// trace was incomplete, or they lagged further behind than the dirty-set
    /// ring could certify.
    pub evicted: usize,
    /// Entries stamped *older* than the previous epoch — a worker raced a
    /// publish (or several) and inserted an answer computed against an old
    /// snapshot — rescued because the ring of recent dirty sets covered every
    /// intervening publish and the trace was disjoint from all of them.
    /// Disjoint from `retained`, which counts only one-epoch survivors.
    pub ring_retained: usize,
    /// Capacity (insert-time) evictions since the previous publish walk in
    /// which the trace-size weight overrode plain LRU order — the victim was
    /// *not* the least recently used entry, because a nearby entry's huge (or
    /// incomplete) trace made it the better sacrifice. Drained into the
    /// outcome by [`ResultCache::retain_for_publish`].
    pub weighted_evicted: usize,
}

const NIL: usize = usize::MAX;

/// Default length of the dirty-set ring ([`ResultCache::with_history_depth`]).
/// Deep enough to bridge the handful of publishes a slow query can race
/// against, small enough that the per-publish clone of the dirty set stays
/// negligible next to the retention walk itself.
pub const DEFAULT_HISTORY_DEPTH: usize = 8;

/// How many entries from the LRU tail the weighted victim scan considers.
/// Bounded so an insert stays O(1); large enough that a huge-trace entry
/// sitting a few slots off the tail is still sacrificed before a small
/// survivable one.
const EVICTION_SCAN: usize = 8;

#[derive(Debug)]
struct Entry {
    key: CacheKey,
    value: Vec<Path>,
    /// The epoch the cached answer is exact for.
    epoch: u64,
    /// The answer's subgraph dependency set.
    trace: SubgraphSet,
    /// Whether `trace` certifies the answer (see [`QueryTrace::complete`]);
    /// uncertified entries never survive a publish.
    complete: bool,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from [`CacheKey`] to the k shortest paths.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    /// Capacity evictions where the trace-size weight picked a victim other
    /// than the plain-LRU tail; drained by [`ResultCache::retain_for_publish`].
    weighted_evictions: usize,
    /// Ring of the last [`ResultCache::history_depth`] publishes, oldest
    /// first: `(epoch, dirty)` records that the publish which produced
    /// `epoch` dirtied exactly `dirty`. Lets an entry lagging several epochs
    /// survive when the ring certifies every publish it slept through.
    history: VecDeque<(u64, SubgraphSet)>,
    /// Maximum ring length; `0` disables multi-epoch survival entirely,
    /// restoring the strict one-publish-at-a-time rule.
    history_depth: usize,
}

impl ResultCache {
    /// Creates a cache that holds at most `capacity` entries, with the
    /// default dirty-set ring depth ([`DEFAULT_HISTORY_DEPTH`]).
    pub fn new(capacity: usize) -> Self {
        Self::with_history_depth(capacity, DEFAULT_HISTORY_DEPTH)
    }

    /// Creates a cache that holds at most `capacity` entries and remembers
    /// the dirty sets of the last `history_depth` publishes for multi-epoch
    /// survival. `history_depth == 0` turns the ring off: entries then only
    /// ever survive the single publish they are current for.
    pub fn with_history_depth(capacity: usize, history_depth: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        ResultCache {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            weighted_evictions: 0,
            history: VecDeque::with_capacity(history_depth),
            history_depth,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, returning the paths only if the entry is exact for
    /// `epoch`; a hit marks the entry as most recently used. A stale entry
    /// (one that did not survive into `epoch`) is left in place to be
    /// overwritten by the recomputed answer or aged out by LRU churn.
    pub fn get(&mut self, key: &CacheKey, epoch: u64) -> Option<&[Path]> {
        let slot = *self.map.get(key)?;
        if self.slab[slot].epoch != epoch {
            return None;
        }
        self.detach(slot);
        self.attach_front(slot);
        Some(&self.slab[slot].value)
    }

    /// Whether a [`ResultCache::get`] for `key` at `epoch` would hit, without
    /// bumping recency. The admission path uses this to *predict* a request's
    /// cost class before deciding whether to enqueue it; only the worker's
    /// actual `get` marks the entry as used.
    pub fn peek_fresh(&self, key: &CacheKey, epoch: u64) -> bool {
        self.map.get(key).is_some_and(|&slot| self.slab[slot].epoch == epoch)
    }

    /// Inserts or replaces the entry for `key` with an answer exact for
    /// `epoch` carrying dependency set `trace`, evicting a victim if the
    /// cache is full.
    ///
    /// Victim choice is trace-size-weighted LRU: among the [`EVICTION_SCAN`]
    /// least recently used entries, evict the one with an incomplete trace
    /// (it cannot survive any publish) or, failing that, the largest trace —
    /// a huge dependency set intersects almost any batch's dirty set, so the
    /// entry would die at the next publish anyway, while a small-trace entry
    /// is the one worth keeping alive. Ties fall back to plain LRU order.
    pub fn insert(&mut self, key: CacheKey, epoch: u64, trace: QueryTrace, value: Vec<Path>) {
        if let Some(&slot) = self.map.get(&key) {
            let entry = &mut self.slab[slot];
            entry.value = value;
            entry.epoch = epoch;
            entry.complete = trace.complete;
            entry.trace = trace.subgraphs;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.weighted_victim();
            debug_assert_ne!(victim, NIL);
            if victim != self.tail {
                self.weighted_evictions += 1;
            }
            self.detach(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let entry = Entry {
            key,
            value,
            epoch,
            complete: trace.complete,
            trace: trace.subgraphs,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    /// Applies one epoch publish (`prev_epoch` → `new_epoch`, dirtying
    /// `dirty`) to the cache: entries stamped `prev_epoch` whose trace is
    /// complete and disjoint from `dirty` are re-stamped to `new_epoch`;
    /// entries already stamped `new_epoch` (inserted by a worker that loaded
    /// the new snapshot before this walk ran) are kept untouched.
    ///
    /// Entries stamped *older* than `prev_epoch` — a worker computed against
    /// an old snapshot and inserted after further publishes raced past it —
    /// get a second chance through the dirty-set ring: if the ring still
    /// holds every publish in `(entry_epoch, new_epoch]` and the entry's
    /// trace is disjoint from all of those dirty sets, the answer is provably
    /// still exact and is re-stamped too (counted as
    /// [`CacheRetention::ring_retained`]). A gap in the ring — the laggard
    /// slept through a publish whose dirty set has already been forgotten —
    /// means the union of intervening dirtiness is unknown, so the entry is
    /// evicted.
    pub fn retain_for_publish(
        &mut self,
        prev_epoch: u64,
        new_epoch: u64,
        dirty: &SubgraphSet,
    ) -> CacheRetention {
        if self.history_depth > 0 {
            if self.history.len() == self.history_depth {
                self.history.pop_front();
            }
            self.history.push_back((new_epoch, dirty.clone()));
        }
        let mut outcome = CacheRetention {
            // Hand the insert-time weighted-eviction count to the publish
            // that collects retention totals, then restart the window.
            weighted_evicted: std::mem::take(&mut self.weighted_evictions),
            ..CacheRetention::default()
        };
        let mut evict: Vec<usize> = Vec::new();
        for &slot in self.map.values() {
            let entry = &self.slab[slot];
            if entry.epoch == new_epoch {
                continue;
            }
            if !entry.complete {
                evict.push(slot);
            } else if entry.epoch == prev_epoch && !entry.trace.intersects(dirty) {
                outcome.retained += 1;
            } else if entry.epoch < prev_epoch
                && self.ring_certifies(entry.epoch, new_epoch, &entry.trace)
            {
                outcome.ring_retained += 1;
            } else {
                evict.push(slot);
            }
        }
        for slot in evict {
            self.detach(slot);
            self.map.remove(&self.slab[slot].key);
            self.slab[slot].value = Vec::new();
            self.free.push(slot);
            outcome.evicted += 1;
        }
        // Re-stamp survivors after the eviction pass so the map iteration
        // above never observes a half-updated cache.
        for &slot in self.map.values() {
            let entry = &mut self.slab[slot];
            if entry.epoch < new_epoch {
                entry.epoch = new_epoch;
            }
        }
        outcome
    }

    /// Whether the dirty-set ring proves that an entry stamped `entry_epoch`
    /// is still exact at `new_epoch`: the ring must hold an unbroken chain of
    /// publishes for every epoch in `(entry_epoch, new_epoch]`, each with a
    /// dirty set disjoint from `trace`. The current publish has already been
    /// pushed, so the walk runs newest-to-oldest from the ring's tail.
    fn ring_certifies(&self, entry_epoch: u64, new_epoch: u64, trace: &SubgraphSet) -> bool {
        let mut need = new_epoch;
        for (epoch, dirty) in self.history.iter().rev() {
            if *epoch != need || trace.intersects(dirty) {
                return false;
            }
            if need == entry_epoch + 1 {
                return true;
            }
            need -= 1;
        }
        false
    }

    /// Drops every entry — the wholesale invalidation the survival path
    /// replaced, kept as the baseline for benchmarks and for services
    /// configured without cache survival. The dirty-set ring is *not*
    /// cleared: it records publish history, which remains true regardless of
    /// what the cache holds, so entries inserted afterwards at older epochs
    /// can still be certified.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.weighted_evictions = 0;
    }

    /// Picks the capacity-eviction victim: walks up to [`EVICTION_SCAN`]
    /// entries from the LRU tail and returns the slot with the highest
    /// sacrifice score `(incomplete trace, trace length, age)`. With equal
    /// weights this degenerates to the plain tail, so the weighted policy is
    /// a strict refinement of LRU, never a replacement.
    fn weighted_victim(&self) -> usize {
        let mut best = self.tail;
        if best == NIL {
            return NIL;
        }
        // Age rank descends from the tail; fold it into the score so ties on
        // (incomplete, trace length) resolve to the oldest candidate.
        let mut best_score = (!self.slab[best].complete, self.slab[best].trace.len(), usize::MAX);
        let mut slot = self.slab[best].prev;
        for age in 1..EVICTION_SCAN {
            if slot == NIL {
                break;
            }
            let entry = &self.slab[slot];
            let score = (!entry.complete, entry.trace.len(), usize::MAX - age);
            if score > best_score {
                best = slot;
                best_score = score;
            }
            slot = entry.prev;
        }
        best
    }

    /// Capacity evictions so far in which the trace-size weight overrode
    /// plain LRU order (the victim was not the tail).
    pub fn weighted_evictions(&self) -> usize {
        self.weighted_evictions
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::{SubgraphId, Weight};

    fn key(s: u32, t: u32, k: usize) -> CacheKey {
        CacheKey { source: VertexId(s), target: VertexId(t), k }
    }

    fn path(len: f64) -> Vec<Path> {
        vec![Path::new(vec![VertexId(0), VertexId(1)], Weight::new(len))]
    }

    fn trace(ids: &[u32]) -> QueryTrace {
        QueryTrace { subgraphs: ids.iter().map(|&i| SubgraphId(i)).collect(), complete: true }
    }

    fn dirty(ids: &[u32]) -> SubgraphSet {
        ids.iter().map(|&i| SubgraphId(i)).collect()
    }

    #[test]
    fn get_returns_inserted_value_for_matching_epoch() {
        let mut cache = ResultCache::new(4);
        cache.insert(key(0, 1, 2), 0, trace(&[1]), path(3.0));
        let hit = cache.get(&key(0, 1, 2), 0).expect("hit");
        assert_eq!(hit.len(), 1);
        assert!(hit[0].distance().approx_eq(Weight::new(3.0)));
        assert!(cache.get(&key(0, 1, 2), 1).is_none(), "different epoch must miss");
        assert!(cache.get(&key(0, 1, 3), 0).is_none(), "different k must miss");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(0, 1, 1), 0, trace(&[]), path(1.0));
        cache.insert(key(0, 2, 1), 0, trace(&[]), path(2.0));
        assert!(cache.get(&key(0, 1, 1), 0).is_some()); // 0->1 now most recent
        cache.insert(key(0, 3, 1), 0, trace(&[]), path(3.0)); // evicts 0->2
        assert!(cache.get(&key(0, 2, 1), 0).is_none());
        assert!(cache.get(&key(0, 1, 1), 0).is_some());
        assert!(cache.get(&key(0, 3, 1), 0).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_replaces_value_and_epoch_without_growth() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(0, 1, 1), 0, trace(&[1]), path(1.0));
        cache.insert(key(0, 1, 1), 3, trace(&[2]), path(9.0));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(0, 1, 1), 0).is_none(), "old epoch is gone");
        let hit = cache.get(&key(0, 1, 1), 3).unwrap();
        assert!(hit[0].distance().approx_eq(Weight::new(9.0)));
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = ResultCache::new(8);
        for t in 1..5 {
            cache.insert(key(0, t, 2), 0, trace(&[t]), path(t as f64));
        }
        assert_eq!(cache.len(), 4);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(&key(0, 1, 2), 0).is_none());
        cache.insert(key(0, 1, 2), 1, trace(&[1]), path(1.0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn dirty_trace_intersection_always_evicts() {
        // The invalidation contract: an entry whose trace intersects the
        // publish's dirty set must never survive, no matter how it overlaps.
        for overlap in [&[3u32][..], &[3, 9], &[0, 3, 200]] {
            let mut cache = ResultCache::new(4);
            cache.insert(key(0, 1, 2), 0, trace(&[3, 7]), path(1.0));
            let outcome = cache.retain_for_publish(0, 1, &dirty(overlap));
            assert_eq!(outcome, CacheRetention { evicted: 1, ..CacheRetention::default() });
            assert!(cache.get(&key(0, 1, 2), 1).is_none(), "dirty entry served after publish");
            assert!(cache.is_empty());
        }
    }

    #[test]
    fn disjoint_trace_survives_and_is_restamped() {
        let mut cache = ResultCache::new(4);
        cache.insert(key(0, 1, 2), 0, trace(&[3, 7]), path(1.0));
        cache.insert(key(0, 2, 2), 0, trace(&[5]), path(2.0));
        let outcome = cache.retain_for_publish(0, 1, &dirty(&[5, 8]));
        assert_eq!(
            outcome,
            CacheRetention { retained: 1, evicted: 1, ..CacheRetention::default() }
        );
        assert!(cache.get(&key(0, 1, 2), 1).is_some(), "disjoint entry must survive");
        assert!(cache.get(&key(0, 1, 2), 0).is_none(), "survivor now carries the new epoch");
        assert!(cache.get(&key(0, 2, 2), 1).is_none(), "dirtied entry must be gone");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn incomplete_traces_and_uncovered_laggards_never_survive() {
        let mut cache = ResultCache::new(4);
        // Incomplete trace (iteration-capped answer): disjoint but uncertified.
        cache.insert(
            key(0, 1, 2),
            0,
            QueryTrace { subgraphs: dirty(&[1]), complete: false },
            path(1.0),
        );
        // An entry that sleeps through a publish the ring never saw: the
        // intervening dirty set is unknown, so it must not be re-stamped
        // even with a disjoint trace.
        cache.insert(key(0, 2, 2), 0, trace(&[2]), path(2.0));
        let first = cache.retain_for_publish(0, 1, &dirty(&[9]));
        assert_eq!(first.retained, 1, "only the complete entry survives epoch 1");
        // Simulate the gap: entry 0->2 now claims epoch 1; hand-publish
        // epoch 2 -> 3 so the ring is missing epoch 2's dirty set.
        let second = cache.retain_for_publish(2, 3, &dirty(&[9]));
        assert_eq!(second.retained, 0);
        assert_eq!(second.ring_retained, 0, "a ring gap must not certify the laggard");
        assert_eq!(second.evicted, 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn laggard_survives_when_the_ring_covers_every_missed_publish() {
        let mut cache = ResultCache::new(4);
        cache.retain_for_publish(0, 1, &dirty(&[5]));
        cache.retain_for_publish(1, 2, &dirty(&[6]));
        // A worker that computed against the epoch-0 snapshot inserts only
        // now — two publishes late. Its trace is disjoint from every dirty
        // set the ring holds, so the next publish can prove it still exact.
        cache.insert(key(0, 1, 2), 0, trace(&[3]), path(1.0));
        let outcome = cache.retain_for_publish(2, 3, &dirty(&[7]));
        assert_eq!(outcome.ring_retained, 1, "ring-covered laggard must be rescued");
        assert_eq!(outcome.retained, 0);
        assert_eq!(outcome.evicted, 0);
        assert!(cache.get(&key(0, 1, 2), 3).is_some(), "rescued entry serves the new epoch");
    }

    #[test]
    fn laggard_dies_when_any_covered_dirty_set_intersects() {
        let mut cache = ResultCache::new(4);
        cache.retain_for_publish(0, 1, &dirty(&[5]));
        cache.retain_for_publish(1, 2, &dirty(&[6]));
        // Trace hits epoch 2's dirty set — an update it slept through touched
        // a subgraph it depends on, so the cached answer may be wrong.
        cache.insert(key(0, 1, 2), 0, trace(&[6]), path(1.0));
        let outcome = cache.retain_for_publish(2, 3, &dirty(&[7]));
        assert_eq!(outcome.ring_retained, 0);
        assert_eq!(outcome.evicted, 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn history_depth_zero_disables_multi_epoch_survival() {
        let mut cache = ResultCache::with_history_depth(4, 0);
        cache.retain_for_publish(0, 1, &dirty(&[5]));
        cache.retain_for_publish(1, 2, &dirty(&[6]));
        cache.insert(key(0, 1, 2), 0, trace(&[3]), path(1.0));
        let outcome = cache.retain_for_publish(2, 3, &dirty(&[7]));
        assert_eq!(outcome.ring_retained, 0, "no ring, no rescue");
        assert_eq!(outcome.evicted, 1);
        // The one-publish fast path must still work without a ring.
        cache.insert(key(0, 2, 2), 3, trace(&[3]), path(2.0));
        let next = cache.retain_for_publish(3, 4, &dirty(&[7]));
        assert_eq!(next.retained, 1);
    }

    #[test]
    fn ring_forgets_publishes_beyond_its_depth() {
        let mut cache = ResultCache::with_history_depth(4, 2);
        cache.retain_for_publish(0, 1, &dirty(&[5]));
        cache.retain_for_publish(1, 2, &dirty(&[6]));
        // Laggard from epoch 0 needs dirty sets for epochs 1..=3, but the
        // depth-2 ring will have dropped epoch 1's by the time epoch 3
        // publishes; a laggard from epoch 1 only needs 2..=3, still covered.
        cache.insert(key(0, 1, 2), 0, trace(&[3]), path(1.0));
        cache.insert(key(0, 2, 2), 1, trace(&[3]), path(2.0));
        let outcome = cache.retain_for_publish(2, 3, &dirty(&[7]));
        assert_eq!(outcome.ring_retained, 1, "only the in-window laggard survives");
        assert_eq!(outcome.evicted, 1);
        assert!(cache.get(&key(0, 2, 2), 3).is_some());
        assert!(cache.get(&key(0, 1, 2), 3).is_none());
    }

    #[test]
    fn entries_already_at_the_new_epoch_are_untouched() {
        let mut cache = ResultCache::new(4);
        // A worker that loaded the new snapshot inserted before the publish
        // walk: the walk must keep it as-is, dirty trace or not.
        cache.insert(key(0, 1, 2), 1, trace(&[3]), path(1.0));
        let outcome = cache.retain_for_publish(0, 1, &dirty(&[3]));
        assert_eq!(outcome, CacheRetention::default());
        assert!(cache.get(&key(0, 1, 2), 1).is_some());
    }

    #[test]
    fn survival_chains_across_many_publishes() {
        let mut cache = ResultCache::new(4);
        cache.insert(key(0, 1, 2), 0, trace(&[3]), path(1.0));
        for epoch in 0..50u64 {
            let outcome = cache.retain_for_publish(epoch, epoch + 1, &dirty(&[4]));
            assert_eq!(outcome.retained, 1, "entry must survive publish {epoch}");
        }
        assert!(cache.get(&key(0, 1, 2), 50).is_some());
    }

    #[test]
    fn peek_fresh_predicts_get_without_bumping_recency() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(0, 1, 1), 3, trace(&[1]), path(1.0));
        assert!(cache.peek_fresh(&key(0, 1, 1), 3));
        assert!(!cache.peek_fresh(&key(0, 1, 1), 4), "stale epoch must predict a miss");
        assert!(!cache.peek_fresh(&key(0, 9, 1), 3), "absent key must predict a miss");
        // The peek must not have bumped 0->1: after inserting 0->2, the next
        // insert still evicts 0->1 (it stayed least recently used).
        cache.insert(key(0, 2, 1), 3, trace(&[1]), path(2.0));
        let _ = cache.get(&key(0, 2, 1), 3);
        assert!(cache.peek_fresh(&key(0, 1, 1), 3));
        cache.insert(key(0, 3, 1), 3, trace(&[1]), path(3.0));
        assert!(!cache.peek_fresh(&key(0, 1, 1), 3), "peek kept LRU order intact");
    }

    #[test]
    fn eviction_sacrifices_the_huge_trace_entry_first() {
        // Three entries, oldest first: a small-trace one at the tail, a
        // huge-trace one just above it. Plain LRU would evict the tail; the
        // weighted policy must sacrifice the huge trace instead — it dies to
        // almost any publish anyway — and count the override.
        let mut cache = ResultCache::new(3);
        cache.insert(key(0, 1, 1), 0, trace(&[1]), path(1.0));
        cache.insert(key(0, 2, 1), 0, trace(&(0..64).collect::<Vec<_>>()), path(2.0));
        cache.insert(key(0, 3, 1), 0, trace(&[2]), path(3.0));
        assert_eq!(cache.weighted_evictions(), 0);
        cache.insert(key(0, 4, 1), 0, trace(&[3]), path(4.0));
        assert!(cache.get(&key(0, 2, 1), 0).is_none(), "huge-trace entry was the victim");
        assert!(cache.get(&key(0, 1, 1), 0).is_some(), "small-trace tail survived");
        assert_eq!(cache.weighted_evictions(), 1);
    }

    #[test]
    fn eviction_prefers_incomplete_traces_over_any_size() {
        // An uncertified entry can never survive a publish: it outranks even
        // a larger complete trace as the sacrifice.
        let mut cache = ResultCache::new(2);
        cache.insert(key(0, 1, 1), 0, trace(&(0..32).collect::<Vec<_>>()), path(1.0));
        cache.insert(
            key(0, 2, 1),
            0,
            QueryTrace { subgraphs: dirty(&[5]), complete: false },
            path(2.0),
        );
        cache.insert(key(0, 3, 1), 0, trace(&[9]), path(3.0));
        assert!(cache.get(&key(0, 2, 1), 0).is_none(), "incomplete entry was the victim");
        assert!(cache.get(&key(0, 1, 1), 0).is_some());
        assert_eq!(cache.weighted_evictions(), 1);
    }

    #[test]
    fn equal_weights_degenerate_to_plain_lru() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(0, 1, 1), 0, trace(&[1]), path(1.0));
        cache.insert(key(0, 2, 1), 0, trace(&[2]), path(2.0));
        cache.insert(key(0, 3, 1), 0, trace(&[3]), path(3.0));
        assert!(cache.get(&key(0, 1, 1), 0).is_none(), "tail evicted on equal weights");
        assert_eq!(cache.weighted_evictions(), 0, "no override happened");
    }

    #[test]
    fn retain_for_publish_drains_the_weighted_counter() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(0, 1, 1), 0, trace(&[1]), path(1.0));
        cache.insert(key(0, 2, 1), 0, trace(&(0..64).collect::<Vec<_>>()), path(2.0));
        cache.insert(key(0, 3, 1), 0, trace(&[3]), path(3.0)); // weighted eviction
        let outcome = cache.retain_for_publish(0, 1, &dirty(&[99]));
        assert_eq!(outcome.weighted_evicted, 1, "publish walk collects the window");
        let next = cache.retain_for_publish(1, 2, &dirty(&[99]));
        assert_eq!(next.weighted_evicted, 0, "the window restarted");
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let mut cache = ResultCache::new(8);
        for round in 0u64..200 {
            for t in 0..16u32 {
                cache.insert(key(t, t + 1, 1), round % 3, trace(&[t % 5]), path(t as f64));
                let _ = cache.get(&key(t / 2, t / 2 + 1, 1), round % 3);
            }
            if round % 7 == 0 {
                cache.retain_for_publish(round % 3, round % 3 + 1, &dirty(&[round as u32 % 5]));
            }
        }
        assert_eq!(cache.len(), 8);
    }
}
