//! Epoch-keyed LRU cache of query results.
//!
//! The paper observes that weight updates arrive in periodic batches
//! (Section 6.2), so between two epochs the answer to a repeated
//! `(source, target, k)` request is bit-identical. The cache key therefore
//! includes the epoch: entries for a superseded epoch can never be returned,
//! and the service clears the cache wholesale at every publish to release the
//! memory immediately rather than waiting for LRU churn.
//!
//! The implementation is a classic O(1) LRU: a `HashMap` from key to a slot in
//! a slab of doubly linked entries, with the most recently used entry at the
//! head of the list.

use ksp_algo::Path;
use ksp_graph::VertexId;
use std::collections::HashMap;

/// Cache key: the full query identity plus the epoch it was answered against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Query source vertex.
    pub source: VertexId,
    /// Query target vertex.
    pub target: VertexId,
    /// Number of paths requested.
    pub k: usize,
    /// Epoch the cached answer is exact for.
    pub epoch: u64,
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry {
    key: CacheKey,
    value: Vec<Path>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from [`CacheKey`] to the k shortest paths.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl ResultCache {
    /// Creates a cache that holds at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        ResultCache {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking the entry as most recently used on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<&[Path]> {
        let slot = *self.map.get(key)?;
        self.detach(slot);
        self.attach_front(slot);
        Some(&self.slab[slot].value)
    }

    /// Inserts or replaces the entry for `key`, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, key: CacheKey, value: Vec<Path>) {
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.map.remove(&self.slab[lru].key);
            self.free.push(lru);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry { key, value, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.slab.push(Entry { key, value, prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    /// Drops every entry (the wholesale invalidation at epoch publish).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::Weight;

    fn key(s: u32, t: u32, k: usize, epoch: u64) -> CacheKey {
        CacheKey { source: VertexId(s), target: VertexId(t), k, epoch }
    }

    fn path(len: f64) -> Vec<Path> {
        vec![Path::new(vec![VertexId(0), VertexId(1)], Weight::new(len))]
    }

    #[test]
    fn get_returns_inserted_value() {
        let mut cache = ResultCache::new(4);
        cache.insert(key(0, 1, 2, 0), path(3.0));
        let hit = cache.get(&key(0, 1, 2, 0)).expect("hit");
        assert_eq!(hit.len(), 1);
        assert!(hit[0].distance().approx_eq(Weight::new(3.0)));
        assert!(cache.get(&key(0, 1, 2, 1)).is_none(), "different epoch must miss");
        assert!(cache.get(&key(0, 1, 3, 0)).is_none(), "different k must miss");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(0, 1, 1, 0), path(1.0));
        cache.insert(key(0, 2, 1, 0), path(2.0));
        assert!(cache.get(&key(0, 1, 1, 0)).is_some()); // 0->1 now most recent
        cache.insert(key(0, 3, 1, 0), path(3.0)); // evicts 0->2
        assert!(cache.get(&key(0, 2, 1, 0)).is_none());
        assert!(cache.get(&key(0, 1, 1, 0)).is_some());
        assert!(cache.get(&key(0, 3, 1, 0)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_replaces_value_without_growth() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(0, 1, 1, 0), path(1.0));
        cache.insert(key(0, 1, 1, 0), path(9.0));
        assert_eq!(cache.len(), 1);
        let hit = cache.get(&key(0, 1, 1, 0)).unwrap();
        assert!(hit[0].distance().approx_eq(Weight::new(9.0)));
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = ResultCache::new(8);
        for t in 1..5 {
            cache.insert(key(0, t, 2, 0), path(t as f64));
        }
        assert_eq!(cache.len(), 4);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(&key(0, 1, 2, 0)).is_none());
        cache.insert(key(0, 1, 2, 1), path(1.0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let mut cache = ResultCache::new(8);
        for round in 0u64..200 {
            for t in 0..16u32 {
                cache.insert(key(t, t + 1, 1, round % 3), path(t as f64));
                let _ = cache.get(&key(t / 2, t / 2 + 1, 1, round % 3));
            }
        }
        assert_eq!(cache.len(), 8);
    }
}
