//! Readiness-polled TCP serving: one epoll-driven poller thread and a small
//! fixed pool of dispatch workers, replacing thread-per-connection scaling.
//!
//! [`TcpServer`](crate::rpc::TcpServer) spends one OS thread (and its stack)
//! per connection; at a thousand mostly-idle clients that is a thousand
//! blocked threads the scheduler has to care about. [`EventLoopServer`] serves
//! the same wire protocol — same frames, same typed errors, same
//! hostile-frame contract — on a *bounded* thread count:
//!
//! ```text
//!              ┌────────────────────────────────────────────┐
//!   accept ──▶ │ poller thread (epoll: listener + N socks)  │
//!              │  · non-blocking read → reassemble frames   │
//!              │  · admission (backlog cap + SLO predictor) │
//!              │  · non-blocking write of queued responses  │
//!              └───────┬───────────────────────▲────────────┘
//!                 jobs │                       │ completions (self-pipe wake)
//!              ┌───────▼───────────────────────┴────────────┐
//!              │ dispatch workers (fixed pool)              │
//!              │  · decode-free: QueryService::handle       │
//!              └────────────────────────────────────────────┘
//! ```
//!
//! The poller owns every socket. Incoming bytes accumulate in a
//! per-connection buffer and are cut into frames *incrementally* — a client
//! may dribble a frame one byte per segment or coalesce several frames into
//! one segment; both decode to exactly what the blocking
//! [`read_frame`](ksp_proto::frame::read_frame) would have produced, in the
//! same validation order (magic → version → kind → length cap → payload →
//! CRC). Responses are framed by the worker and handed back through a
//! completion queue; a self-pipe wakes the poller to write them out.
//!
//! Requests of one connection are dispatched strictly in arrival order, one
//! at a time — a pipelined client gets its responses in request order, just
//! as it would from the thread-per-connection server.
//!
//! # Admission at the socket
//!
//! The dispatch queue in the sketch above is the queue a request actually
//! waits in, so admission control runs *here*, at arrival, before a request
//! ever occupies queue memory: the outstanding-job backlog is capped
//! (`max_backlog`, the static cap), and when the service has an SLO budget
//! the shared [`AdmissionController`](crate::admission::AdmissionController)
//! predicts the request's end-to-end latency (backlog × blended service-time
//! EWMA + its own cost class, trace-check-peeked from the home shard's
//! cache) and rejects with a typed
//! [`ErrorReply::Overloaded`]`{ retry_after_ms }` when the prediction would
//! breach the budget. A rejected request is *answered*, never dropped: the
//! connection stays healthy.
//!
//! Aggregate `ksp_eventloop_*` counters/gauges are appended to every
//! `ObsSnapshot` response served through the loop, next to the service's own
//! exposition.

use crate::admission::{AdmissionVerdict, CostClass};
use crate::rpc::hostile_frame;
use crate::service::{route_shard, QueryService};
use ksp_obs::EventKind;
use ksp_proto::frame::{
    frame_len, write_frame, FrameError, FrameKind, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_PAYLOAD,
};
use ksp_proto::message::{ErrorReply, QueryOutcome, Request, Response, PROTOCOL_VERSION};
use ksp_proto::obs::{WireCounter, WireGauge};
use ksp_store::{crc32, StoreCodec};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Raw, dependency-free bindings to the handful of kernel calls the loop
/// needs: epoll for readiness, a pipe for cross-thread wakeup. `std` already
/// links libc on Linux, so these resolve without any external crate.
mod sys {
    use std::io;
    use std::os::raw::{c_int, c_void};

    /// One epoll readiness record. The kernel packs `struct epoll_event`
    /// on x86-64 *only*; every other Linux arch lays it out naturally
    /// aligned (4 padding bytes after `events`, `data` at offset 8). The
    /// repr must mirror the kernel's per-arch layout or every record after
    /// the first in an `epoll_wait` batch is read at the wrong offset. On
    /// the packed arch, field reads must copy (never borrow) — both fields
    /// are plain integers, which keeps that invisible.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bit set (`EPOLLIN` | `EPOLLOUT` | ...).
        pub events: u32,
        /// The caller's token, echoed back verbatim.
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// An owned epoll instance.
    pub struct Epoll {
        fd: c_int,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: c_int, fd: c_int, token: u64, interest: u32) -> io::Result<()> {
            let mut ev = EpollEvent { events: interest, data: token };
            if unsafe { epoll_ctl(self.fd, op, fd, &mut ev) } == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }

        pub fn add(&self, fd: c_int, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: c_int, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn delete(&self, fd: c_int) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Blocks up to `timeout_ms` for readiness, retrying on `EINTR`.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
            loop {
                let n = unsafe {
                    epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
                };
                if n >= 0 {
                    return Ok(n as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }

    /// A non-blocking self-pipe: workers write a byte to wake the poller out
    /// of `epoll_wait`; the poller drains it on wakeup.
    pub struct WakePipe {
        read_fd: c_int,
        write_fd: c_int,
    }

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            let mut fds: [c_int; 2] = [0; 2];
            if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(WakePipe { read_fd: fds[0], write_fd: fds[1] })
        }

        pub fn read_fd(&self) -> c_int {
            self.read_fd
        }

        pub fn write_fd(&self) -> c_int {
            self.write_fd
        }

        /// Empties the pipe. A full pipe means a wake is already pending, so
        /// short reads and `EAGAIN` are both fine.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
                if n <= 0 {
                    return;
                }
            }
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    /// Writes one wake byte. Failure (pipe full) means a wake is already
    /// pending — exactly as good.
    pub fn wake(write_fd: c_int) {
        let byte = [1u8];
        let _ = unsafe { write(write_fd, byte.as_ptr() as *const c_void, 1) };
    }
}

/// Token the listener registers under; connection tokens count up from zero
/// and cannot collide before the heat death of the universe.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token of the self-pipe's read end.
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Decoded-but-undispatched requests one connection may hold before the
/// poller stops reading its socket (TCP backpressure takes over) — the bound
/// that keeps a hostile pipeliner from growing server memory without limit.
const PENDING_CAP: usize = 64;
/// How long `epoll_wait` may sleep with nothing to do; bounds shutdown
/// latency if a wake byte is ever lost.
const IDLE_POLL_MS: i32 = 500;

/// Tuning for an [`EventLoopServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLoopConfig {
    /// Dispatch workers decoding nothing and calling
    /// [`QueryService::handle`]; the server's only per-request threads. The
    /// total thread count is `dispatch_workers + 1` regardless of how many
    /// connections are open.
    pub dispatch_workers: usize,
    /// Static cap on outstanding dispatched-but-unanswered requests across
    /// all connections; query requests beyond it are rejected with a typed
    /// `Overloaded` carrying a drain-time hint.
    pub max_backlog: usize,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig { dispatch_workers: 2, max_backlog: 1024 }
    }
}

impl EventLoopConfig {
    /// Validates the configuration.
    pub fn validate(&self) {
        assert!(self.dispatch_workers >= 1, "dispatch_workers must be at least 1");
        assert!(self.max_backlog >= 1, "max_backlog must be at least 1");
    }
}

/// Point-in-time view of the loop's aggregate transport accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventLoopStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Currently open connections.
    pub open_connections: u64,
    /// Most connections ever open at once.
    pub peak_connections: u64,
    /// Request frames decoded.
    pub frames_in: u64,
    /// Response frames queued for write (including typed error replies).
    pub frames_out: u64,
    /// Wire bytes of decoded request frames (headers + payloads).
    pub bytes_in: u64,
    /// Wire bytes of queued response frames.
    pub bytes_out: u64,
    /// `Overloaded` rejections sent through the loop — by loop-level
    /// admission (backlog cap or SLO predictor) or by the service's own
    /// per-shard assessment after dispatch. Always answered, never dropped.
    pub rejected: u64,
    /// Hostile frames answered with a typed error and a disconnect.
    pub hostile_frames: u64,
    /// Requests dispatched and not yet answered.
    pub dispatch_backlog: u64,
}

/// Aggregate counters, shared between the poller (which drives most of them)
/// and the workers (which stamp handle time and read them for `ObsSnapshot`).
#[derive(Debug, Default)]
struct LoopMetrics {
    accepted: AtomicU64,
    open: AtomicU64,
    peak: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    rejected: AtomicU64,
    hostile: AtomicU64,
    handle_micros: AtomicU64,
    outstanding: AtomicU64,
}

/// One decoded request on its way to a dispatch worker.
struct Job {
    token: u64,
    request: Request,
    /// When loop admission accepted the request — the echoed per-query
    /// latency is restamped to `admitted → reply ready` so it covers the
    /// dispatch-queue wait, the queue this server actually queues in.
    admitted: Instant,
}

/// One framed response on its way back to the poller.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    /// Close the connection after this response flushes (the
    /// `UnsupportedVersion` handshake contract).
    disconnect: bool,
}

struct DispatchState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The unbounded-by-type, admission-bounded-in-practice job queue between the
/// poller and the worker pool. Depth is bounded by loop admission
/// (`max_backlog`), not by this structure.
struct DispatchQueue {
    state: Mutex<DispatchState>,
    ready: Condvar,
}

impl DispatchQueue {
    fn new() -> Self {
        DispatchQueue {
            state: Mutex::new(DispatchState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return; // shutting down; the connection is about to die anyway
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// State shared by the poller, the workers and the server handle.
struct LoopShared {
    service: Arc<QueryService>,
    shutting_down: AtomicBool,
    dispatch: DispatchQueue,
    completions: Mutex<Vec<Completion>>,
    /// Write end of the self-pipe; valid for the server's whole lifetime
    /// (the poller owns the pipe and outlives every writer).
    wake_fd: std::os::raw::c_int,
    metrics: LoopMetrics,
    threads: usize,
    max_backlog: usize,
}

impl LoopShared {
    fn complete(&self, completion: Completion) {
        self.completions.lock().unwrap_or_else(|e| e.into_inner()).push(completion);
        sys::wake(self.wake_fd);
    }

    fn stats(&self) -> EventLoopStats {
        let m = &self.metrics;
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        EventLoopStats {
            accepted: load(&m.accepted),
            open_connections: load(&m.open),
            peak_connections: load(&m.peak),
            frames_in: load(&m.frames_in),
            frames_out: load(&m.frames_out),
            bytes_in: load(&m.bytes_in),
            bytes_out: load(&m.bytes_out),
            rejected: load(&m.rejected),
            hostile_frames: load(&m.hostile),
            dispatch_backlog: load(&m.outstanding),
        }
    }
}

/// A readiness-polled TCP serving endpoint over a [`QueryService`]: one
/// epoll poller thread plus a fixed dispatch pool, graceful shutdown on drop.
/// Speaks exactly the wire protocol of [`TcpServer`](crate::rpc::TcpServer) —
/// a [`KspClient`](ksp_proto::KspClient) cannot tell them apart — on a thread
/// count independent of the connection count.
pub struct EventLoopServer {
    local_addr: SocketAddr,
    shared: Arc<LoopShared>,
    poller: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl EventLoopServer {
    /// Binds `addr` (port 0 for ephemeral) with the default configuration.
    pub fn bind(service: Arc<QueryService>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::bind_with(service, addr, EventLoopConfig::default())
    }

    /// Binds `addr` and starts the poller and `config.dispatch_workers`
    /// workers.
    pub fn bind_with(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        config: EventLoopConfig,
    ) -> io::Result<Self> {
        config.validate();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let epoll = sys::Epoll::new()?;
        let wake = sys::WakePipe::new()?;
        epoll.add(listener.as_raw_fd(), LISTENER_TOKEN, sys::EPOLLIN)?;
        epoll.add(wake.read_fd(), WAKE_TOKEN, sys::EPOLLIN)?;
        let shared = Arc::new(LoopShared {
            service,
            shutting_down: AtomicBool::new(false),
            dispatch: DispatchQueue::new(),
            completions: Mutex::new(Vec::new()),
            wake_fd: wake.write_fd(),
            metrics: LoopMetrics::default(),
            threads: config.dispatch_workers + 1,
            max_backlog: config.max_backlog,
        });
        let mut workers = Vec::with_capacity(config.dispatch_workers);
        for i in 0..config.dispatch_workers {
            let shared = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ksp-evloop-worker-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("failed to spawn dispatch worker"),
            );
        }
        let poller = std::thread::Builder::new()
            .name("ksp-evloop-poll".to_string())
            .spawn({
                let shared = shared.clone();
                move || Poller::new(listener, epoll, wake, shared).run()
            })
            .expect("failed to spawn poller");
        Ok(EventLoopServer { local_addr, shared, poller: Some(poller), workers })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Total serving threads (poller + dispatch workers). Constant for the
    /// server's lifetime — the property the event loop exists for.
    pub fn thread_count(&self) -> usize {
        self.shared.threads
    }

    /// Snapshot of the loop's aggregate transport accounting.
    pub fn stats(&self) -> EventLoopStats {
        self.shared.stats()
    }

    /// Stops accepting, disconnects every live connection and joins all
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Workers first: they may still be finishing requests, and their
        // completions need the poller (and the wake pipe) alive.
        self.shared.dispatch.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        sys::wake(self.shared.wake_fd);
        if let Some(poller) = self.poller.take() {
            let _ = poller.join();
        }
    }
}

impl Drop for EventLoopServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_main(shared: &Arc<LoopShared>) {
    while let Some(job) = shared.dispatch.pop() {
        let started = Instant::now();
        let mut response = shared.service.handle(job.request);
        shared.metrics.handle_micros.fetch_add(
            started.elapsed().as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        // Loop admission runs on the aggregate dispatch backlog; the service
        // re-assesses on the sharper per-shard queue signal and may still
        // reject an admitted request. Fold those verdicts into the loop's
        // counter so `ksp_eventloop_rejected_total` covers every Overloaded
        // reply sent through the loop, wherever the verdict was made.
        let overloaded = count_overloaded(&response);
        if overloaded > 0 {
            shared.metrics.rejected.fetch_add(overloaded, Ordering::Relaxed);
        }
        stamp_loop_latency(&mut response, job.admitted);
        append_eventloop_metrics(shared, &mut response);
        // Same contract as the blocking server: a failed version handshake is
        // answered, then disconnected.
        let disconnect = matches!(response, Response::Error(ErrorReply::UnsupportedVersion { .. }));
        let bytes = encode_response(&response);
        shared.complete(Completion { token: job.token, bytes, disconnect });
    }
}

/// Number of `Overloaded` replies a response carries: one for a rejected
/// single request, one per rejected element of a batch (each batch element
/// passes service-side admission independently).
fn count_overloaded(response: &Response) -> u64 {
    let inner = match response {
        Response::Traced { inner, .. } => inner.as_ref(),
        other => other,
    };
    match inner {
        Response::Error(ErrorReply::Overloaded { .. }) => 1,
        Response::QueryBatch(outcomes) => outcomes
            .iter()
            .filter(|o| matches!(o, QueryOutcome::Error(ErrorReply::Overloaded { .. })))
            .count() as u64,
        _ => 0,
    }
}

/// Restamps the echoed per-query latency to `admitted → reply ready`. The
/// service measures a query from *its* submission, but over the event loop a
/// request spends its queueing life in the dispatch queue before
/// [`QueryService::handle`] ever sees it — the very wait the loop's
/// admission control predicts and bounds. Without the restamp the echoed
/// number understates exactly the component an overload inflates.
fn stamp_loop_latency(response: &mut Response, admitted: Instant) {
    let micros = admitted.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let inner = match response {
        Response::Traced { inner, .. } => inner.as_mut(),
        other => other,
    };
    match inner {
        Response::Query(answer) => answer.latency_micros = micros,
        Response::QueryBatch(outcomes) => {
            for outcome in outcomes.iter_mut() {
                if let QueryOutcome::Answer(answer) = outcome {
                    answer.latency_micros = micros;
                }
            }
        }
        _ => {}
    }
}

/// Frames a response, substituting the typed `Unsupported` reply when the
/// payload exceeds the frame cap — `write_frame` refuses before emitting a
/// byte, so framing stays intact and the connection stays alive, exactly as
/// on the blocking path.
fn encode_response(response: &Response) -> Vec<u8> {
    let payload = response.to_bytes();
    let mut frame = Vec::with_capacity(frame_len(payload.len().min(4096)));
    match write_frame(&mut frame, FrameKind::Response, &payload) {
        Ok(()) => frame,
        Err(e) => {
            frame.clear();
            let reply = Response::Error(ErrorReply::Unsupported(format!(
                "response does not fit one frame ({e}); split the request"
            )));
            let reply_payload = reply.to_bytes();
            write_frame(&mut frame, FrameKind::Response, &reply_payload)
                .expect("a typed error reply always fits one frame");
            frame
        }
    }
}

/// Appends the loop's aggregate transport metrics to an `ObsSnapshot`
/// response (unwrapping a trace envelope if present) — the event-loop
/// analogue of the blocking server's per-connection `ksp_connection_*`
/// families, aggregated because a thousand per-connection series would drown
/// the exposition the loop exists to keep cheap.
fn append_eventloop_metrics(shared: &LoopShared, response: &mut Response) {
    let snapshot = match response {
        Response::ObsSnapshot(s) => s,
        Response::Traced { inner, .. } => match inner.as_mut() {
            Response::ObsSnapshot(s) => s,
            _ => return,
        },
        _ => return,
    };
    let stats = shared.stats();
    let handle_micros = shared.metrics.handle_micros.load(Ordering::Relaxed);
    let counters = [
        ("ksp_eventloop_accepted_total", stats.accepted),
        ("ksp_eventloop_frames_in_total", stats.frames_in),
        ("ksp_eventloop_frames_out_total", stats.frames_out),
        ("ksp_eventloop_bytes_in_total", stats.bytes_in),
        ("ksp_eventloop_bytes_out_total", stats.bytes_out),
        ("ksp_eventloop_rejected_total", stats.rejected),
        ("ksp_eventloop_hostile_frames_total", stats.hostile_frames),
        ("ksp_eventloop_handle_micros_total", handle_micros),
    ];
    for (name, value) in counters {
        snapshot.counters.push(WireCounter {
            name: name.to_string(),
            labels: String::new(),
            value,
        });
    }
    let gauges = [
        ("ksp_eventloop_open_connections", stats.open_connections as f64),
        ("ksp_eventloop_peak_connections", stats.peak_connections as f64),
        ("ksp_eventloop_dispatch_backlog", stats.dispatch_backlog as f64),
        ("ksp_eventloop_threads", shared.threads as f64),
    ];
    for (name, value) in gauges {
        snapshot.gauges.push(WireGauge { name: name.to_string(), labels: String::new(), value });
    }
}

/// One step of the incremental frame decoder.
enum Decoded {
    /// Not enough buffered bytes for a verdict.
    NeedMore,
    /// One complete, CRC-verified frame (consumed from the buffer).
    Frame(FrameKind, Vec<u8>),
    /// The buffered bytes can never become a valid frame.
    Fail(FrameError),
}

/// Cuts one frame off the front of `buf`, validating in exactly the blocking
/// reader's order: magic → version → kind → length cap (all on the complete
/// 17-byte header) → payload bytes → CRC. Anything the blocking
/// [`read_frame`](ksp_proto::frame::read_frame) rejects, this rejects with
/// the same [`FrameError`]; anything it accepts arrives here byte-identical.
fn try_decode(buf: &mut Vec<u8>) -> Decoded {
    if buf.len() < FRAME_HEADER_LEN {
        return Decoded::NeedMore;
    }
    if buf[0..4] != FRAME_MAGIC {
        return Decoded::Fail(FrameError::BadMagic {
            found: buf[0..4].try_into().expect("4 bytes"),
        });
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if version != PROTOCOL_VERSION {
        return Decoded::Fail(FrameError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        });
    }
    let kind = match buf[8] {
        0 => FrameKind::Request,
        1 => FrameKind::Response,
        tag => return Decoded::Fail(FrameError::BadKind(tag)),
    };
    let declared = u32::from_le_bytes(buf[9..13].try_into().expect("4 bytes"));
    if declared > MAX_FRAME_PAYLOAD {
        return Decoded::Fail(FrameError::Oversized { declared });
    }
    let total = FRAME_HEADER_LEN + declared as usize;
    if buf.len() < total {
        return Decoded::NeedMore;
    }
    let expected = u32::from_le_bytes(buf[13..17].try_into().expect("4 bytes"));
    let payload = buf[FRAME_HEADER_LEN..total].to_vec();
    buf.drain(..total);
    let actual = crc32(&payload);
    if actual != expected {
        return Decoded::Fail(FrameError::CrcMismatch { expected, actual });
    }
    Decoded::Frame(kind, payload)
}

/// One connection's state machine, owned by the poller.
struct Conn {
    stream: TcpStream,
    token: u64,
    /// Received, not-yet-framed bytes.
    read_buf: Vec<u8>,
    /// Framed responses awaiting socket capacity; `write_pos` marks the
    /// already-written prefix.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Decoded requests waiting for their in-order dispatch slot.
    pending: VecDeque<Request>,
    /// Whether a request of this connection is dispatched and unanswered
    /// (at most one — that is what keeps pipelined responses in order).
    inflight: bool,
    /// The final typed error frame of a hostile-frame incident, sent after
    /// every earlier request is answered, then the connection closes.
    tail: Option<Vec<u8>>,
    /// No more bytes will be read (EOF, framing lost, or handshake failure).
    read_dead: bool,
    /// Reading paused for backpressure (`PENDING_CAP` decoded requests wait).
    paused: bool,
    /// Close once `write_buf` drains.
    close_after_flush: bool,
    /// The socket failed hard; close immediately, nothing to flush or tell.
    io_dead: bool,
    /// Interest bits currently registered with epoll.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream, token: u64) -> Self {
        Conn {
            stream,
            token,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            pending: VecDeque::new(),
            inflight: false,
            tail: None,
            read_dead: false,
            paused: false,
            close_after_flush: false,
            io_dead: false,
            interest: sys::EPOLLIN,
        }
    }

    fn has_write_pending(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    fn desired_interest(&self) -> u32 {
        let mut interest = 0;
        if !self.read_dead && !self.paused {
            interest |= sys::EPOLLIN;
        }
        if self.has_write_pending() {
            interest |= sys::EPOLLOUT;
        }
        interest
    }

    /// Appends one framed response and accounts it.
    fn queue_reply(&mut self, bytes: &[u8], metrics: &LoopMetrics) {
        metrics.frames_out.fetch_add(1, Ordering::Relaxed);
        metrics.bytes_out.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.write_buf.extend_from_slice(bytes);
    }
}

/// Verdict of loop-level admission for one decoded request.
enum AdmissionOutcome {
    /// Dispatch it.
    Admitted(Request),
    /// Answer with this pre-framed `Overloaded` reply instead.
    Rejected(Vec<u8>),
}

/// Admission at the socket, for query-bearing requests only (control-plane
/// requests — ping, metrics, publish, checkpoint, snapshot — always pass,
/// as they do on the blocking path). Mirrors the service-side policy and
/// bookkeeping: static backlog cap first, then the SLO predictor with a
/// cost-class peek, with `Rejection` events and one `AdmissionBreach` flight
/// dump per episode.
fn loop_admission(shared: &LoopShared, request: Request) -> AdmissionOutcome {
    let probe = match &request {
        Request::Traced { inner, .. } => query_probe(inner),
        other => query_probe(other),
    };
    let Some(key) = probe else {
        return AdmissionOutcome::Admitted(request);
    };
    let controller = shared.service.admission_controller();
    let backlog = shared.metrics.outstanding.load(Ordering::Relaxed) as usize;
    let verdict = if backlog >= shared.max_backlog {
        Some((controller.queue_full_hint_ms(backlog), None))
    } else if controller.is_adaptive() {
        let class = match key {
            Some((source, target, k)) => shared.service.predict_cost(source, target, k),
            // A batch mixes identities; predict conservatively.
            None => CostClass::EngineRun,
        };
        match controller.assess(backlog, class) {
            AdmissionVerdict::Admit => None,
            AdmissionVerdict::Reject(r) => Some((r.retry_after_ms, Some(r))),
        }
    } else {
        None
    };
    let Some((retry_after_ms, rejection)) = verdict else {
        return AdmissionOutcome::Admitted(request);
    };
    let shard_id =
        key.map(|(s, t, k)| route_shard(s, t, k, shared.service.num_shards()) as u64).unwrap_or(0);
    let (trace, _) = request.into_parts();
    let trace_id = trace.as_ref().map(|t| t.trace_id).unwrap_or(0);
    let obs = shared.service.observability();
    obs.record(EventKind::Rejection, shard_id, backlog as u64, retry_after_ms);
    if let Some(r) = rejection {
        if r.entered_breach {
            let micros = |d: Duration| d.as_micros().min(u64::MAX as u128) as u64;
            obs.trigger_traced(
                EventKind::AdmissionBreach,
                shard_id,
                micros(r.estimated_wait),
                micros(r.budget),
                None,
                trace_id,
            );
        }
    }
    let inner = Response::Error(ErrorReply::Overloaded { depth: backlog as u64, retry_after_ms });
    let response = match trace {
        Some(trace) => Response::Traced { trace, inner: Box::new(inner) },
        None => inner,
    };
    AdmissionOutcome::Rejected(encode_response(&response))
}

/// `Some(identity)` when `request` is admission-controlled: a single query's
/// `(source, target, k)`, or `Some(None)` for a batch (no single identity).
#[allow(clippy::type_complexity)]
fn query_probe(
    request: &Request,
) -> Option<Option<(ksp_graph::VertexId, ksp_graph::VertexId, usize)>> {
    match request {
        Request::Query(key) => Some(Some((key.source, key.target, key.k))),
        Request::QueryBatch(_) => Some(None),
        _ => None,
    }
}

/// The poller: owns the listener, the epoll instance, the wake pipe and
/// every connection. Single-threaded by construction — no connection state
/// is ever touched off this thread.
struct Poller {
    listener: TcpListener,
    epoll: sys::Epoll,
    wake: sys::WakePipe,
    shared: Arc<LoopShared>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl Poller {
    fn new(
        listener: TcpListener,
        epoll: sys::Epoll,
        wake: sys::WakePipe,
        shared: Arc<LoopShared>,
    ) -> Self {
        Poller { listener, epoll, wake, shared, conns: HashMap::new(), next_token: 0 }
    }

    fn run(mut self) {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 256];
        loop {
            let n = match self.epoll.wait(&mut events, IDLE_POLL_MS) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("ksp-evloop: epoll_wait failed: {e}");
                    break;
                }
            };
            for event in &events[..n] {
                let ev = *event;
                let (bits, token) = (ev.events, ev.data);
                match token {
                    WAKE_TOKEN => self.wake.drain(),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_ready(token, bits),
                }
            }
            // Completions are applied every cycle — a worker's wake byte may
            // coalesce with socket readiness, so this must not depend on
            // having seen WAKE_TOKEN.
            self.apply_completions();
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
        }
        for (_, conn) in self.conns.drain() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        self.shared.metrics.open.store(0, Ordering::Relaxed);
    }

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // EMFILE and friends: stop for this cycle; level-triggered
                // epoll re-offers the listener next wait, which is the retry
                // backoff.
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            if self.epoll.add(stream.as_raw_fd(), token, sys::EPOLLIN).is_err() {
                continue;
            }
            self.conns.insert(token, Conn::new(stream, token));
            let metrics = &self.shared.metrics;
            metrics.accepted.fetch_add(1, Ordering::Relaxed);
            let open = metrics.open.fetch_add(1, Ordering::Relaxed) + 1;
            metrics.peak.fetch_max(open, Ordering::Relaxed);
        }
    }

    fn conn_ready(&mut self, token: u64, bits: u32) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            conn.io_dead = true;
        } else {
            if bits & sys::EPOLLIN != 0 {
                on_readable(conn, &self.shared);
            }
            if bits & sys::EPOLLOUT != 0 {
                flush_writes(conn);
            }
        }
        self.service_conn(token);
    }

    fn apply_completions(&mut self) {
        let completions =
            std::mem::take(&mut *self.shared.completions.lock().unwrap_or_else(|e| e.into_inner()));
        for completion in completions {
            self.shared.metrics.outstanding.fetch_sub(1, Ordering::Relaxed);
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                continue; // the connection died while its request was served
            };
            conn.inflight = false;
            conn.queue_reply(&completion.bytes, &self.shared.metrics);
            if completion.disconnect {
                conn.pending.clear();
                conn.tail = None;
                conn.read_dead = true;
                conn.close_after_flush = true;
            } else {
                // Full parse, not just dispatch: the freed slot may unblock
                // requests already buffered in `read_buf` past PENDING_CAP,
                // which no future EPOLLIN will announce.
                parse_frames(conn, &self.shared);
            }
            self.service_conn(completion.token);
        }
    }

    /// Settles a connection after any activity: appends a due tail reply,
    /// flushes what the socket will take, closes if finished, and keeps the
    /// epoll interest registration in sync with what the connection is
    /// actually waiting for.
    fn service_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.tail.is_some() && !conn.inflight && conn.pending.is_empty() {
            let bytes = conn.tail.take().expect("checked is_some");
            conn.queue_reply(&bytes, &self.shared.metrics);
            conn.close_after_flush = true;
        }
        if conn.read_dead && conn.tail.is_none() && !conn.inflight && conn.pending.is_empty() {
            conn.close_after_flush = true;
        }
        flush_writes(conn);
        if conn.io_dead || (conn.close_after_flush && !conn.has_write_pending()) {
            self.close_conn(token);
            return;
        }
        let want = conn.desired_interest();
        if want != conn.interest && self.epoll.modify(conn.stream.as_raw_fd(), token, want).is_ok()
        {
            conn.interest = want;
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.epoll.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.shared.metrics.open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Pumps the socket into the connection's read buffer until it would block,
/// then cuts and handles as many complete frames as arrived.
fn on_readable(conn: &mut Conn, shared: &LoopShared) {
    if conn.read_dead {
        return;
    }
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.read_dead = true;
                break;
            }
            Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // The blocking server's FrameError::Io arm: the peer is
                // gone, there is nobody to answer.
                conn.io_dead = true;
                return;
            }
        }
    }
    parse_frames(conn, shared);
}

/// Cuts complete frames off `read_buf`, dispatching well-formed requests and
/// converting the first protocol violation into the blocking server's typed
/// reply-then-close, deferred behind any earlier requests still in flight so
/// responses keep arrival order.
///
/// Decoding and dispatch alternate until neither can advance. The loop
/// matters: a pipelined burst larger than `PENDING_CAP` sits fully buffered
/// in `read_buf` with no further `EPOLLIN` coming, so every slot that
/// dispatch frees (inline rejections free them without any completion) must
/// be refilled *here* — stopping after one decode pass would strand the
/// remainder of the buffer forever.
fn parse_frames(conn: &mut Conn, shared: &LoopShared) {
    loop {
        decode_frames(conn, shared);
        let stalled_at_cap = conn.paused;
        admit_and_dispatch(conn, shared);
        // Re-decode only when the pass above stopped at PENDING_CAP and
        // dispatch just freed slots; otherwise the buffer holds no complete
        // frame (or the connection is condemned) and the loop must not spin.
        if !(stalled_at_cap && !conn.paused && conn.tail.is_none()) {
            break;
        }
    }
}

/// One decode pass of [`parse_frames`]: cuts frames until the buffer runs
/// out of complete ones, `pending` reaches `PENDING_CAP`, or a protocol
/// violation condemns the connection.
fn decode_frames(conn: &mut Conn, shared: &LoopShared) {
    let obs = shared.service.observability();
    while conn.tail.is_none() {
        if conn.pending.len() >= PENDING_CAP {
            conn.paused = true;
            break;
        }
        conn.paused = false;
        match try_decode(&mut conn.read_buf) {
            Decoded::NeedMore => break,
            Decoded::Frame(FrameKind::Request, payload) => {
                let metrics = &shared.metrics;
                metrics.frames_in.fetch_add(1, Ordering::Relaxed);
                metrics.bytes_in.fetch_add(frame_len(payload.len()) as u64, Ordering::Relaxed);
                match Request::from_bytes(&payload) {
                    Ok(request) => conn.pending.push_back(request),
                    Err(e) => {
                        shared.metrics.hostile.fetch_add(1, Ordering::Relaxed);
                        obs.trigger(
                            EventKind::HostileFrame,
                            hostile_frame::UNDECODABLE_PAYLOAD,
                            0,
                            0,
                            None,
                        );
                        let reply = Response::Error(ErrorReply::Malformed(format!(
                            "request payload did not decode: {e}"
                        )));
                        conn.tail = Some(encode_response(&reply));
                    }
                }
            }
            Decoded::Frame(FrameKind::Response, _) => {
                shared.metrics.hostile.fetch_add(1, Ordering::Relaxed);
                obs.trigger(
                    EventKind::HostileFrame,
                    hostile_frame::RESPONSE_KIND_FRAME,
                    0,
                    0,
                    None,
                );
                let reply = Response::Error(ErrorReply::Malformed(
                    "clients must send request frames".to_string(),
                ));
                conn.tail = Some(encode_response(&reply));
            }
            Decoded::Fail(FrameError::VersionMismatch { ours, theirs }) => {
                shared.metrics.hostile.fetch_add(1, Ordering::Relaxed);
                obs.trigger(
                    EventKind::HostileFrame,
                    hostile_frame::VERSION_MISMATCH,
                    theirs as u64,
                    0,
                    None,
                );
                let reply = Response::Error(ErrorReply::UnsupportedVersion {
                    server: ours,
                    client: theirs,
                });
                conn.tail = Some(encode_response(&reply));
            }
            Decoded::Fail(e) => {
                // BadMagic / CRC mismatch / oversized length / bad kind:
                // framing is lost, answer typed and close.
                shared.metrics.hostile.fetch_add(1, Ordering::Relaxed);
                obs.trigger(EventKind::HostileFrame, hostile_frame::FRAMING_LOST, 0, 0, None);
                let reply = Response::Error(ErrorReply::Malformed(e.to_string()));
                conn.tail = Some(encode_response(&reply));
            }
        }
    }
    if conn.tail.is_some() {
        conn.read_dead = true;
        conn.read_buf.clear();
    } else if conn.read_dead && !conn.read_buf.is_empty() {
        // EOF mid-frame: the blocking reader's Truncated error, answered
        // typed exactly as it would be.
        let while_reading =
            if conn.read_buf.len() < FRAME_HEADER_LEN { "frame header" } else { "frame payload" };
        shared.metrics.hostile.fetch_add(1, Ordering::Relaxed);
        obs.trigger(EventKind::HostileFrame, hostile_frame::FRAMING_LOST, 0, 0, None);
        let reply = Response::Error(ErrorReply::Malformed(
            FrameError::Truncated { while_reading }.to_string(),
        ));
        conn.tail = Some(encode_response(&reply));
        conn.read_buf.clear();
    }
}

/// Moves decoded requests toward the workers: at most one in flight per
/// connection (in-order responses), loop admission deciding each one.
/// Rejections are answered inline, preserving their position in the response
/// order.
fn admit_and_dispatch(conn: &mut Conn, shared: &LoopShared) {
    while !conn.inflight {
        let Some(request) = conn.pending.pop_front() else { break };
        match loop_admission(shared, request) {
            AdmissionOutcome::Admitted(request) => {
                conn.inflight = true;
                shared.metrics.outstanding.fetch_add(1, Ordering::Relaxed);
                shared.dispatch.push(Job { token: conn.token, request, admitted: Instant::now() });
            }
            AdmissionOutcome::Rejected(bytes) => {
                shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                conn.queue_reply(&bytes, &shared.metrics);
            }
        }
    }
    if conn.pending.len() < PENDING_CAP {
        conn.paused = false;
    }
}

/// Writes as much of the queued response bytes as the socket accepts,
/// compacting the buffer when it drains (or when the written prefix grows
/// large enough to be worth reclaiming).
fn flush_writes(conn: &mut Conn) {
    if conn.io_dead {
        return;
    }
    while conn.write_pos < conn.write_buf.len() {
        match (&conn.stream).write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.io_dead = true;
                return;
            }
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.io_dead = true;
                return;
            }
        }
    }
    if conn.write_pos >= conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    } else if conn.write_pos > 64 * 1024 {
        conn.write_buf.drain(..conn.write_pos);
        conn.write_pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_proto::frame::read_frame;
    use std::io::Cursor;

    fn framed(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, payload).unwrap();
        buf
    }

    #[test]
    fn incremental_decode_matches_the_blocking_reader_at_every_split() {
        let bytes = framed(FrameKind::Request, b"incremental decode parity");
        for split in 0..=bytes.len() {
            let mut buf = bytes[..split].to_vec();
            match try_decode(&mut buf) {
                Decoded::NeedMore => assert!(split < bytes.len(), "full frame must decode"),
                Decoded::Frame(kind, payload) => {
                    assert_eq!(split, bytes.len(), "partial frame must not decode");
                    assert_eq!(kind, FrameKind::Request);
                    assert_eq!(payload, b"incremental decode parity");
                    assert!(buf.is_empty(), "the frame must be consumed");
                }
                Decoded::Fail(e) => panic!("split {split} must not fail, got {e}"),
            }
        }
    }

    #[test]
    fn incremental_decode_cuts_coalesced_frames_in_order() {
        let mut buf = framed(FrameKind::Request, b"first");
        buf.extend_from_slice(&framed(FrameKind::Request, b"second"));
        buf.extend_from_slice(&framed(FrameKind::Request, b"third")[..9]); // torn tail
        let Decoded::Frame(_, p1) = try_decode(&mut buf) else { panic!("first frame") };
        let Decoded::Frame(_, p2) = try_decode(&mut buf) else { panic!("second frame") };
        assert_eq!((p1.as_slice(), p2.as_slice()), (&b"first"[..], &b"second"[..]));
        assert!(matches!(try_decode(&mut buf), Decoded::NeedMore));
        assert_eq!(buf.len(), 9, "the torn tail stays buffered");
    }

    #[test]
    fn incremental_decode_validates_in_the_blocking_readers_order() {
        // Bad magic.
        let mut bad_magic = framed(FrameKind::Request, b"x");
        bad_magic[0] = b'Z';
        assert!(matches!(try_decode(&mut bad_magic), Decoded::Fail(FrameError::BadMagic { .. })));
        // Foreign version beats bad kind: version is validated first.
        let mut foreign = framed(FrameKind::Request, b"x");
        foreign[4..8].copy_from_slice(&0xBEEF_u32.to_le_bytes());
        foreign[8] = 9;
        assert!(matches!(
            try_decode(&mut foreign),
            Decoded::Fail(FrameError::VersionMismatch { theirs: 0xBEEF, .. })
        ));
        // Bad kind.
        let mut bad_kind = framed(FrameKind::Request, b"x");
        bad_kind[8] = 7;
        assert!(matches!(try_decode(&mut bad_kind), Decoded::Fail(FrameError::BadKind(7))));
        // Oversized declared length fails on the header alone — no payload
        // bytes needed, no allocation made.
        let mut oversized = framed(FrameKind::Request, b"x")[..FRAME_HEADER_LEN].to_vec();
        oversized[9..13].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(try_decode(&mut oversized), Decoded::Fail(FrameError::Oversized { .. })));
        // CRC mismatch, only once the payload is complete.
        let mut corrupt = framed(FrameKind::Request, b"payload");
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert!(matches!(try_decode(&mut corrupt), Decoded::Fail(FrameError::CrcMismatch { .. })));
    }

    #[test]
    fn decoded_frames_equal_the_blocking_readers_output() {
        for payload in [&b""[..], b"a", b"some longer payload with bytes \x00\xff"] {
            let bytes = framed(FrameKind::Response, payload);
            let blocking = read_frame(&mut Cursor::new(bytes.clone())).unwrap().unwrap();
            let mut buf = bytes;
            let Decoded::Frame(kind, incremental) = try_decode(&mut buf) else {
                panic!("must decode")
            };
            assert_eq!((kind, incremental), blocking);
        }
    }

    #[test]
    fn config_defaults_are_validated_and_bounded() {
        let config = EventLoopConfig::default();
        config.validate();
        assert!(config.dispatch_workers >= 1);
        assert!(config.max_backlog >= 1);
    }
}
