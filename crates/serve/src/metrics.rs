//! Latency/throughput metrics for the serving subsystem.
//!
//! Everything on the hot path is an atomic counter: workers record into a
//! log-scale latency histogram and per-shard busy-time counters without locks,
//! and [`ServiceMetrics::report`] folds the counters into the summary the
//! operator cares about — p50/p95/p99 latency, cache hit rate, admission
//! rejections and epochs published. Per-shard busy time is exported through the
//! measurement cluster's [`ServerLoad`] accounting so the same load-balance
//! reporting used for the paper's Section 6.6 figures applies to service shards.
//!
//! The histogram type itself lives in `ksp-obs` (re-exported here), which also
//! supplies the per-stage histograms ([`StageHistograms`]) that span chains
//! aggregate into alongside the end-to-end one.
//!
//! **Counter semantics.** Every `u64` counter in [`MetricsReport`] —
//! `completed`, `rejected`, `cache_hits`, `cache_misses`, `epochs_published`,
//! `cache_retained`, `cache_evicted`, `steals` — is *cumulative-monotonic*
//! over the service's lifetime: it only ever grows, and a report is a
//! point-in-time snapshot of the running totals. Rates and per-interval
//! figures are derived by differencing two reports with
//! [`MetricsReport::delta_since`], never by resetting counters.

use ksp_cluster::{LoadBalanceReport, ServerLoad};
pub use ksp_obs::LatencyHistogram;
use ksp_obs::{PublishStageHistograms, StageHistograms};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Per-shard hot-path counters.
#[derive(Debug, Default)]
pub struct ShardCounters {
    busy_nanos: AtomicU64,
    requests: AtomicU64,
    steals: AtomicU64,
}

impl ShardCounters {
    /// Attributes `elapsed` of compute time (one request) to this shard.
    pub fn record(&self, elapsed: Duration) {
        self.busy_nanos
            .fetch_add(elapsed.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that this shard's worker stole `count` requests from another
    /// shard's queue.
    pub fn record_steals(&self, count: usize) {
        self.steals.fetch_add(count as u64, Ordering::Relaxed);
    }

    /// Requests this shard's worker stole from other shards so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Converts the counters into the cluster's per-server accounting record.
    pub fn as_server_load(&self) -> ServerLoad {
        ServerLoad {
            busy_time: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
            items_processed: self.requests.load(Ordering::Relaxed) as usize,
            memory_bytes: 0,
        }
    }
}

/// All counters of one [`crate::QueryService`].
#[derive(Debug)]
pub struct ServiceMetrics {
    /// End-to-end latency of completed requests (queueing + compute).
    pub latency: LatencyHistogram,
    /// Per-stage latency histograms, populated from finished request span
    /// chains when observability is enabled.
    pub stages: StageHistograms,
    /// Per-write-path-stage latency histograms, populated from finished
    /// publish span chains when observability is enabled.
    pub publish_stages: PublishStageHistograms,
    /// End-to-end publish latency (batch submission through retention, plus
    /// checkpoint encode/commit for checkpoint epochs). The write-path stage
    /// histograms telescope to exactly this distribution.
    pub publish_latency: LatencyHistogram,
    /// Completed requests.
    pub completed: AtomicU64,
    /// Requests rejected by admission control (static cap + adaptive, total).
    pub rejected: AtomicU64,
    /// Requests the admission path accepted into a shard queue.
    pub admission_accepted: AtomicU64,
    /// Rejections from the static queue cap (the queue held `max_queue_depth`
    /// requests).
    pub admission_rejected_queue_full: AtomicU64,
    /// Rejections from the adaptive controller (predicted latency breached
    /// the SLO budget before the request queued).
    pub admission_rejected_predicted: AtomicU64,
    /// Requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Requests that had to run the engine.
    pub cache_misses: AtomicU64,
    /// Epochs published (excluding the initial build).
    pub epochs_published: AtomicU64,
    /// Cache entries re-stamped (kept servable) across epoch publishes by
    /// dirty-set retention, summed over all shards.
    pub cache_retained: AtomicU64,
    /// Cache entries evicted at epoch publishes (dirty trace, incomplete
    /// trace, or wholesale clears), summed over all shards.
    pub cache_evicted: AtomicU64,
    /// Cache entries stamped older than the previous epoch that the dirty-set
    /// ring certified across every missed publish (summed over all shards;
    /// disjoint from `cache_retained`).
    pub cache_ring_retained: AtomicU64,
    /// Capacity evictions where the trace-size weight overrode plain LRU
    /// order (collected from the per-shard caches at each publish).
    pub cache_weighted_evictions: AtomicU64,
    /// Per-shard busy accounting.
    pub shards: Vec<ShardCounters>,
    /// When these metrics were created (service boot).
    started: Instant,
    /// Microseconds after `started` at which the last epoch publish
    /// completed; 0 until the first publish (the boot epoch counts as
    /// published at boot).
    last_publish_micros: AtomicU64,
}

impl ServiceMetrics {
    /// Creates zeroed metrics for `num_shards` shards.
    pub fn new(num_shards: usize) -> Self {
        ServiceMetrics {
            latency: LatencyHistogram::default(),
            stages: StageHistograms::new(),
            publish_stages: PublishStageHistograms::new(),
            publish_latency: LatencyHistogram::default(),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            admission_accepted: AtomicU64::new(0),
            admission_rejected_queue_full: AtomicU64::new(0),
            admission_rejected_predicted: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            epochs_published: AtomicU64::new(0),
            cache_retained: AtomicU64::new(0),
            cache_evicted: AtomicU64::new(0),
            cache_ring_retained: AtomicU64::new(0),
            cache_weighted_evictions: AtomicU64::new(0),
            shards: (0..num_shards).map(|_| ShardCounters::default()).collect(),
            started: Instant::now(),
            last_publish_micros: AtomicU64::new(0),
        }
    }

    /// Stamps "an epoch was just published" for the staleness gauge.
    pub fn note_publish(&self) {
        let now = self.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.last_publish_micros.fetch_max(now, Ordering::Relaxed);
    }

    /// Time since the last epoch publish (since boot, before the first one).
    pub fn epoch_age(&self) -> Duration {
        let now = self.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        Duration::from_micros(now.saturating_sub(self.last_publish_micros.load(Ordering::Relaxed)))
    }

    /// Folds the live counters into an immutable report.
    pub fn report(&self) -> MetricsReport {
        let per_shard: Vec<ServerLoad> = self.shards.iter().map(|s| s.as_server_load()).collect();
        let per_shard_steals: Vec<u64> = self.shards.iter().map(|s| s.steals()).collect();
        let completed = self.completed.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        MetricsReport {
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            admission_accepted: self.admission_accepted.load(Ordering::Relaxed),
            admission_rejected_queue_full: self
                .admission_rejected_queue_full
                .load(Ordering::Relaxed),
            admission_rejected_predicted: self.admission_rejected_predicted.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            cache_retained: self.cache_retained.load(Ordering::Relaxed),
            cache_evicted: self.cache_evicted.load(Ordering::Relaxed),
            cache_ring_retained: self.cache_ring_retained.load(Ordering::Relaxed),
            cache_weighted_evictions: self.cache_weighted_evictions.load(Ordering::Relaxed),
            steals: per_shard_steals.iter().sum(),
            per_shard_steals,
            epoch_age: self.epoch_age(),
            p50: self.latency.quantile(0.50),
            p95: self.latency.quantile(0.95),
            p99: self.latency.quantile(0.99),
            mean: self.latency.mean(),
            max: self.latency.max(),
            load_balance: LoadBalanceReport::from_loads(&per_shard),
            per_shard,
            queue_gauges: Vec::new(),
        }
    }
}

/// Point-in-time backlog gauges of one shard's request queue.
///
/// Groundwork for adaptive admission control: the current depth is the
/// instantaneous queueing-delay signal, and the high-water mark tells the
/// operator how close the shard has come to its configured rejection depth
/// since the service started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardQueueGauge {
    /// Requests admitted and waiting right now.
    pub depth: usize,
    /// Deepest the queue has ever been.
    pub high_water: usize,
    /// The configured depth at which submissions are rejected.
    pub max_depth: usize,
}

impl ShardQueueGauge {
    /// High-water backlog as a fraction of the configured depth, in `[0, 1]`.
    /// A value near 1 means admission control has been the binding constraint.
    pub fn saturation(&self) -> f64 {
        if self.max_depth == 0 {
            0.0
        } else {
            self.high_water as f64 / self.max_depth as f64
        }
    }
}

/// A point-in-time summary of a service's metrics. All `u64` counters are
/// cumulative-monotonic (see the module docs); difference two reports with
/// [`MetricsReport::delta_since`] for per-interval figures.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Requests answered.
    pub completed: u64,
    /// Requests rejected by admission control (static cap + adaptive, total).
    pub rejected: u64,
    /// Requests accepted into a shard queue.
    pub admission_accepted: u64,
    /// Rejections from the static queue cap.
    pub admission_rejected_queue_full: u64,
    /// Rejections from the adaptive controller's SLO-budget prediction.
    pub admission_rejected_predicted: u64,
    /// Requests served from the result cache.
    pub cache_hits: u64,
    /// Requests that ran the engine.
    pub cache_misses: u64,
    /// Epochs published since the service started.
    pub epochs_published: u64,
    /// Cache entries that survived epoch publishes via dirty-set retention.
    pub cache_retained: u64,
    /// Cache entries dropped at epoch publishes.
    pub cache_evicted: u64,
    /// Multi-epoch laggards rescued by the dirty-set ring at publishes.
    pub cache_ring_retained: u64,
    /// Capacity evictions where the trace-size weight overrode plain LRU.
    pub cache_weighted_evictions: u64,
    /// Requests answered by a worker that stole them from another shard's
    /// queue, total.
    pub steals: u64,
    /// Steal counts attributed to the *thief* shard, indexed like `per_shard`.
    pub per_shard_steals: Vec<u64>,
    /// Time since the last epoch publish when the report was taken (time
    /// since boot, before the first publish) — the staleness gauge a replica
    /// or freshness SLO watches.
    pub epoch_age: Duration,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 95th-percentile end-to-end latency.
    pub p95: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99: Duration,
    /// Mean end-to-end latency.
    pub mean: Duration,
    /// Worst observed end-to-end latency.
    pub max: Duration,
    /// Busy time and request count attributed to each shard.
    pub per_shard: Vec<ServerLoad>,
    /// Shard load balance through the cluster crate's accounting.
    pub load_balance: LoadBalanceReport,
    /// Per-shard queue backlog gauges (empty when the report was produced
    /// directly from [`ServiceMetrics::report`], which cannot see the queues;
    /// [`crate::QueryService::metrics`] fills them in).
    pub queue_gauges: Vec<ShardQueueGauge>,
}

/// The counter increments between two [`MetricsReport`]s — what happened
/// *during* an interval, as opposed to since boot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsDelta {
    /// Requests answered in the interval.
    pub completed: u64,
    /// Requests rejected in the interval.
    pub rejected: u64,
    /// Cache hits in the interval.
    pub cache_hits: u64,
    /// Cache misses in the interval.
    pub cache_misses: u64,
    /// Epochs published in the interval.
    pub epochs_published: u64,
    /// Cache entries retained across publishes in the interval.
    pub cache_retained: u64,
    /// Cache entries evicted at publishes in the interval.
    pub cache_evicted: u64,
    /// Multi-epoch laggards rescued by the dirty-set ring in the interval.
    pub cache_ring_retained: u64,
    /// Requests served via work stealing in the interval.
    pub steals: u64,
}

impl MetricsDelta {
    /// Fraction of the interval's completed requests answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let denom = self.cache_hits + self.cache_misses;
        if denom == 0 {
            0.0
        } else {
            self.cache_hits as f64 / denom as f64
        }
    }
}

impl MetricsReport {
    /// Fraction of completed requests answered from the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let denom = self.cache_hits + self.cache_misses;
        if denom == 0 {
            0.0
        } else {
            self.cache_hits as f64 / denom as f64
        }
    }

    /// The counter increments between `prev` (taken earlier on the same
    /// service) and this report. Saturating: a mismatched pair (e.g. reports
    /// from different services) yields zeros rather than wrap-around noise.
    pub fn delta_since(&self, prev: &MetricsReport) -> MetricsDelta {
        MetricsDelta {
            completed: self.completed.saturating_sub(prev.completed),
            rejected: self.rejected.saturating_sub(prev.rejected),
            cache_hits: self.cache_hits.saturating_sub(prev.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(prev.cache_misses),
            epochs_published: self.epochs_published.saturating_sub(prev.epochs_published),
            cache_retained: self.cache_retained.saturating_sub(prev.cache_retained),
            cache_evicted: self.cache_evicted.saturating_sub(prev.cache_evicted),
            cache_ring_retained: self.cache_ring_retained.saturating_sub(prev.cache_ring_retained),
            steals: self.steals.saturating_sub(prev.steals),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_computes_hit_rate_and_shard_loads() {
        let m = ServiceMetrics::new(3);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        m.completed.fetch_add(4, Ordering::Relaxed);
        m.shards[1].record(Duration::from_millis(5));
        m.latency.record(Duration::from_millis(2));
        let report = m.report();
        assert!((report.cache_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(report.per_shard.len(), 3);
        assert_eq!(report.per_shard[1].items_processed, 1);
        assert_eq!(report.load_balance.num_servers, 3);
        assert!(report.p50 > Duration::ZERO);
    }

    #[test]
    fn report_surfaces_the_rejected_admission_counter() {
        // Regression guard: overload must stay observable — the `rejected`
        // counter the admission path increments has to reach the report (and
        // from there the wire `Metrics` response) unchanged.
        let m = ServiceMetrics::new(1);
        m.rejected.fetch_add(5, Ordering::Relaxed);
        m.completed.fetch_add(2, Ordering::Relaxed);
        assert_eq!(m.report().rejected, 5);
    }

    #[test]
    fn report_splits_admission_counters_by_cause() {
        // The total `rejected` stays the compatibility counter; the split —
        // static cap vs adaptive SLO-budget prediction — plus the accepted
        // count must each reach the report for the `ksp_admission_*`
        // exposition families.
        let m = ServiceMetrics::new(1);
        m.admission_accepted.fetch_add(10, Ordering::Relaxed);
        m.admission_rejected_queue_full.fetch_add(3, Ordering::Relaxed);
        m.admission_rejected_predicted.fetch_add(4, Ordering::Relaxed);
        m.rejected.fetch_add(7, Ordering::Relaxed);
        let report = m.report();
        assert_eq!(report.admission_accepted, 10);
        assert_eq!(report.admission_rejected_queue_full, 3);
        assert_eq!(report.admission_rejected_predicted, 4);
        assert_eq!(report.rejected, 7);
    }

    #[test]
    fn report_surfaces_steal_and_retention_counters() {
        // Regression guard for the work-stealing + cache-survival telemetry:
        // thief-side steal counts and publish-time retention totals must
        // reach the report (and from there the wire `Metrics` response).
        let m = ServiceMetrics::new(3);
        m.shards[2].record_steals(4);
        m.shards[0].record_steals(1);
        m.cache_retained.fetch_add(17, Ordering::Relaxed);
        m.cache_evicted.fetch_add(3, Ordering::Relaxed);
        let report = m.report();
        assert_eq!(report.steals, 5);
        assert_eq!(report.per_shard_steals, vec![1, 0, 4]);
        assert_eq!(report.cache_retained, 17);
        assert_eq!(report.cache_evicted, 3);
    }

    #[test]
    fn epoch_age_resets_on_publish() {
        let m = ServiceMetrics::new(1);
        std::thread::sleep(Duration::from_millis(5));
        let before = m.epoch_age();
        assert!(before >= Duration::from_millis(5), "age accrues from boot: {before:?}");
        m.note_publish();
        let after = m.epoch_age();
        assert!(after < before, "publish resets the staleness gauge");
        assert!(m.report().epoch_age >= after);
    }

    #[test]
    fn delta_since_yields_interval_increments() {
        let m = ServiceMetrics::new(2);
        m.completed.fetch_add(10, Ordering::Relaxed);
        m.cache_hits.fetch_add(4, Ordering::Relaxed);
        m.cache_misses.fetch_add(6, Ordering::Relaxed);
        m.epochs_published.fetch_add(2, Ordering::Relaxed);
        let first = m.report();
        m.completed.fetch_add(5, Ordering::Relaxed);
        m.cache_hits.fetch_add(5, Ordering::Relaxed);
        m.epochs_published.fetch_add(1, Ordering::Relaxed);
        m.cache_retained.fetch_add(7, Ordering::Relaxed);
        m.shards[0].record_steals(3);
        let second = m.report();
        let delta = second.delta_since(&first);
        assert_eq!(delta.completed, 5);
        assert_eq!(delta.cache_hits, 5);
        assert_eq!(delta.cache_misses, 0);
        assert_eq!(delta.epochs_published, 1);
        assert_eq!(delta.cache_retained, 7);
        assert_eq!(delta.steals, 3);
        assert_eq!(delta.cache_hit_rate(), 1.0);
        // Reversed order saturates to zero instead of wrapping.
        assert_eq!(first.delta_since(&second), MetricsDelta::default());
    }

    #[test]
    fn queue_gauge_saturation_is_a_fraction_of_the_cap() {
        let gauge = ShardQueueGauge { depth: 3, high_water: 48, max_depth: 64 };
        assert!((gauge.saturation() - 0.75).abs() < 1e-9);
        assert_eq!(ShardQueueGauge::default().saturation(), 0.0);
    }
}
