//! Closed-loop load driver: replays a [`QueryWorkload`] against a serving
//! endpoint from many client threads while a [`TrafficModel`] keeps
//! publishing weight-update epochs.
//!
//! Each client owns one in-flight request at a time (closed loop), cycling
//! through the workload from its own offset so concurrent clients exercise
//! different shards. The optional updater thread applies a traffic snapshot at
//! a fixed cadence, which is exactly the paper's serving regime: queries and
//! update batches interleave and every answer must be exact for some published
//! epoch.
//!
//! The driver comes in two forms:
//!
//! * [`run_closed_loop`] — the original in-process path, calling
//!   [`QueryService::query`] directly.
//! * [`run_closed_loop_over`] — generic over any [`Transport`] via
//!   [`KspClient`]: the *same* closed loop drives the in-process transport
//!   and a TCP connection interchangeably, and the returned
//!   [`WireLoadReport`] carries the transport's physical byte counters — so
//!   an experiment can price the protocol by running both and diffing.

use crate::metrics::{MetricsDelta, MetricsReport};
use crate::service::{QueryService, ServiceError};
use ksp_obs::{HistogramSnapshot, LatencyHistogram};
use ksp_proto::{KspClient, Transport, TransportStats, WireMetrics};
use ksp_workload::{QueryWorkload, TrafficModel};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadDriverConfig {
    /// Number of concurrent client threads.
    pub num_clients: usize,
    /// Requests each client issues before the run ends.
    pub requests_per_client: usize,
    /// Cadence of traffic publishes; `None` disables the updater thread.
    pub update_every: Option<Duration>,
}

impl LoadDriverConfig {
    /// A configuration with the given client count and per-client request count,
    /// without traffic updates.
    pub fn new(num_clients: usize, requests_per_client: usize) -> Self {
        LoadDriverConfig { num_clients, requests_per_client, update_every: None }
    }

    /// Enables the updater thread at the given cadence.
    pub fn with_updates_every(mut self, cadence: Duration) -> Self {
        self.update_every = Some(cadence);
        self
    }
}

/// Outcome of a closed-loop run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Epochs published during the run.
    pub epochs_published: u64,
    /// Service metrics snapshot taken at the end of the run. Counters are
    /// cumulative since service boot, not since the run started — use
    /// [`LoadReport::delta`] for what this run contributed.
    pub metrics: MetricsReport,
    /// The counter increments attributable to this run: the end-of-run report
    /// differenced against the start-of-run report with
    /// [`MetricsReport::delta_since`].
    pub delta: MetricsDelta,
}

impl LoadReport {
    /// Completed requests per second of wall-clock time.
    pub fn throughput_qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Runs a closed loop of `config.num_clients` clients against `service`.
///
/// When `config.update_every` is set, `traffic` must be provided; its snapshots
/// are applied through [`QueryService::apply_batch`] until every client
/// finishes.
pub fn run_closed_loop(
    service: &QueryService,
    workload: &QueryWorkload,
    traffic: Option<&mut TrafficModel>,
    config: LoadDriverConfig,
) -> LoadReport {
    assert!(config.num_clients >= 1, "need at least one client");
    assert!(!workload.is_empty(), "workload must not be empty");
    if config.update_every.is_some() {
        assert!(traffic.is_some(), "update cadence set but no traffic model provided");
    }

    let before = service.metrics();
    let completed = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    // Unexpected errors are counted (not panicked on inside the scope): a
    // client panic would leave the watcher and updater threads spinning on a
    // request total that can never be reached, deadlocking the whole run.
    // Every client accounts each of its requests under exactly one of the
    // three counters, so the watcher's termination condition always fires.
    let failed = AtomicUsize::new(0);
    let first_failure: Mutex<Option<String>> = Mutex::new(None);
    let done = AtomicBool::new(false);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for client in 0..config.num_clients {
            let completed = &completed;
            let rejected = &rejected;
            let failed = &failed;
            let first_failure = &first_failure;
            scope.spawn(move || {
                // Stagger starting offsets so clients spread over the workload
                // (and therefore over shards) instead of marching in lockstep.
                let stride = (workload.len() / config.num_clients.max(1)).max(1);
                let replay = workload.cycle_from(client * stride);
                for q in replay.take(config.requests_per_client) {
                    match service.query(q.source, q.target, q.k) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServiceError::Overloaded { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            // Closed loop: back off briefly before the next request.
                            std::thread::yield_now();
                        }
                        Err(other) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            first_failure.lock().get_or_insert_with(|| other.to_string());
                        }
                    }
                }
            });
        }

        if let (Some(cadence), Some(traffic)) = (config.update_every, traffic) {
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(cadence);
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    let batch = traffic.next_snapshot();
                    service.apply_batch(&batch).expect("epoch publish failed");
                }
            });
        }

        // `scope` joins the clients when this closure returns; flag the updater
        // from a watcher thread that waits for all client work to finish.
        let total = config.num_clients * config.requests_per_client;
        let completed = &completed;
        let rejected = &rejected;
        let failed = &failed;
        let done = &done;
        scope.spawn(move || {
            while completed.load(Ordering::Relaxed)
                + rejected.load(Ordering::Relaxed)
                + failed.load(Ordering::Relaxed)
                < total
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    // All threads are joined; surface unexpected errors now that nothing can
    // deadlock on the missing counts.
    let failures = failed.into_inner();
    if failures > 0 {
        let detail = first_failure.into_inner().unwrap_or_default();
        panic!("{failures} request(s) failed with unexpected service errors; first: {detail}");
    }

    let metrics = service.metrics();
    let delta = metrics.delta_since(&before);
    LoadReport {
        completed: completed.into_inner(),
        rejected: rejected.into_inner(),
        elapsed: started.elapsed(),
        epochs_published: delta.epochs_published,
        metrics,
        delta,
    }
}

/// Outcome of a closed-loop run over a [`Transport`].
#[derive(Debug, Clone)]
pub struct WireLoadReport {
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Epochs published during the run (observed through the wire metrics).
    pub epochs_published: u64,
    /// Physical communication cost summed over every client (and the
    /// updater), as counted by the transport. Zero for in-process transports.
    pub wire: TransportStats,
    /// Server metrics snapshot fetched over the transport at the end of the
    /// run.
    pub metrics: WireMetrics,
    /// Client-perceived end-to-end latency (serialize + network + server +
    /// decode), pooled across every query client. The gap between these
    /// percentiles and the server-side ones in [`WireLoadReport::metrics`] is
    /// the protocol's own cost.
    pub perceived: HistogramSnapshot,
    /// Overload retries performed across every query client — non-zero only
    /// when the clients were built with
    /// [`ClientConfig::retry_on_overload`](ksp_proto::ClientConfig) enabled.
    pub retries: u64,
}

impl WireLoadReport {
    /// Completed requests per second of wall-clock time.
    pub fn throughput_qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Client-perceived p50 across every query client's requests.
    pub fn perceived_p50(&self) -> Duration {
        self.perceived.quantile(0.50)
    }

    /// Client-perceived p95 across every query client's requests.
    pub fn perceived_p95(&self) -> Duration {
        self.perceived.quantile(0.95)
    }

    /// Client-perceived p99 across every query client's requests.
    pub fn perceived_p99(&self) -> Duration {
        self.perceived.quantile(0.99)
    }
}

/// Runs the closed loop of [`run_closed_loop`] through [`KspClient`] handles
/// instead of direct service calls, making the driver generic over the
/// transport: hand it a factory producing in-process clients and it measures
/// the zero-copy path; hand it one producing TCP connections and the same
/// loop measures the wire — including its physical byte cost.
///
/// `make_client` is called `config.num_clients` times for the query clients,
/// once more for the updater when `config.update_every` is set, and once for
/// the control client that scrapes metrics. Each client runs on its own
/// thread with its own connection, which is how real clients behave.
///
/// Requests failing with the admission-control backpressure signal are
/// counted as rejected; any other error fails the run (panics), matching the
/// in-process driver's contract.
pub fn run_closed_loop_over<T, F>(
    mut make_client: F,
    workload: &QueryWorkload,
    traffic: Option<&mut TrafficModel>,
    config: LoadDriverConfig,
) -> WireLoadReport
where
    T: Transport,
    F: FnMut() -> KspClient<T>,
{
    assert!(config.num_clients >= 1, "need at least one client");
    assert!(!workload.is_empty(), "workload must not be empty");
    if config.update_every.is_some() {
        assert!(traffic.is_some(), "update cadence set but no traffic model provided");
    }

    let mut control = make_client();
    let epochs_before = control.metrics().expect("metrics before the run").epochs_published;
    // Every query client feeds the same perceived-latency histogram, so the
    // report's client-side percentiles pool the whole fleet. The control and
    // updater clients stay out of it: a metrics scrape or an epoch publish is
    // not a query and would skew the quantiles.
    let perceived = Arc::new(LatencyHistogram::default());
    let mut clients: Vec<KspClient<T>> = (0..config.num_clients)
        .map(|_| {
            let mut client = make_client();
            client.set_perceived_sink(perceived.clone());
            client
        })
        .collect();
    let mut updater_client = config.update_every.map(|_| make_client());

    let completed = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    // As in `run_closed_loop`: count unexpected failures instead of panicking
    // inside the scope, so the watcher's termination condition always fires.
    let failed = AtomicUsize::new(0);
    let first_failure: Mutex<Option<String>> = Mutex::new(None);
    let done = AtomicBool::new(false);
    let started = Instant::now();

    let mut wire = TransportStats::default();
    let mut retries = 0u64;
    std::thread::scope(|scope| {
        let mut client_threads = Vec::with_capacity(config.num_clients);
        for (client_id, mut client) in clients.drain(..).enumerate() {
            let completed = &completed;
            let rejected = &rejected;
            let failed = &failed;
            let first_failure = &first_failure;
            client_threads.push(scope.spawn(move || {
                let stride = (workload.len() / config.num_clients.max(1)).max(1);
                let replay = workload.cycle_from(client_id * stride);
                for q in replay.take(config.requests_per_client) {
                    match client.query(q.source, q.target, q.k) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_overloaded() => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            std::thread::yield_now();
                        }
                        Err(other) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            first_failure.lock().get_or_insert_with(|| other.to_string());
                        }
                    }
                }
                (client.stats(), client.retries())
            }));
        }

        let updater_thread = match (config.update_every, traffic, updater_client.take()) {
            (Some(cadence), Some(traffic), Some(mut client)) => {
                let done = &done;
                Some(scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        std::thread::sleep(cadence);
                        if done.load(Ordering::Relaxed) {
                            break;
                        }
                        let batch = traffic.next_snapshot();
                        client.apply_batch(&batch).expect("epoch publish over transport failed");
                    }
                    client.stats()
                }))
            }
            _ => None,
        };

        let total = config.num_clients * config.requests_per_client;
        let completed = &completed;
        let rejected = &rejected;
        let failed = &failed;
        let done = &done;
        scope.spawn(move || {
            while completed.load(Ordering::Relaxed)
                + rejected.load(Ordering::Relaxed)
                + failed.load(Ordering::Relaxed)
                < total
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            done.store(true, Ordering::Relaxed);
        });

        for thread in client_threads {
            let (stats, client_retries) = thread.join().expect("client thread panicked");
            wire.absorb(&stats);
            retries += client_retries;
        }
        if let Some(thread) = updater_thread {
            wire.absorb(&thread.join().expect("updater thread panicked"));
        }
    });

    let failures = failed.into_inner();
    if failures > 0 {
        let detail = first_failure.into_inner().unwrap_or_default();
        panic!("{failures} request(s) failed with unexpected errors; first: {detail}");
    }

    let elapsed = started.elapsed();
    let metrics = control.metrics().expect("metrics after the run");
    wire.absorb(&control.stats());
    WireLoadReport {
        completed: completed.into_inner(),
        rejected: rejected.into_inner(),
        elapsed,
        epochs_published: metrics.epochs_published.saturating_sub(epochs_before),
        wire,
        metrics,
        perceived: perceived.snapshot(),
        retries,
    }
}

/// Configuration of one open-loop run: a fixed fleet of connections, each
/// issuing requests on a fixed arrival schedule *regardless of how fast the
/// answers come back*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopConfig {
    /// Number of concurrent connections in the fleet.
    pub num_connections: usize,
    /// Requests each connection offers before the run ends.
    pub requests_per_connection: usize,
    /// Per-connection inter-arrival interval: the fleet's offered rate is
    /// `num_connections / interval`.
    pub interval: Duration,
}

impl OpenLoopConfig {
    /// An open-loop fleet of `num_connections` connections, each offering
    /// `requests_per_connection` requests at one request per `interval`.
    pub fn new(num_connections: usize, requests_per_connection: usize, interval: Duration) -> Self {
        OpenLoopConfig { num_connections, requests_per_connection, interval }
    }

    /// The offered arrival rate in requests per second.
    pub fn offered_qps(&self) -> f64 {
        if self.interval.is_zero() {
            f64::INFINITY
        } else {
            self.num_connections as f64 / self.interval.as_secs_f64()
        }
    }
}

/// Outcome of an open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Requests the schedule offered (`num_connections × requests_per_connection`).
    pub offered: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests rejected by admission control (typed `Overloaded`).
    pub rejected: usize,
    /// Rejections that carried a non-zero `retry_after_ms` hint — the
    /// adaptive controller's signature; static-cap rejections carry none.
    pub rejected_with_hint: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Client-perceived latency of every *accepted* request, sorted
    /// ascending. Under overload this is the distribution admission control
    /// is defending: rejections are excluded because a fast typed rejection
    /// is the mechanism, not the service. Kept as raw samples (an open-loop
    /// run offers few enough) so quantiles are exact order statistics — an
    /// SLO comparison must not inherit a power-of-two histogram bucket edge.
    pub accepted_latencies: Vec<Duration>,
    /// Server-reported latency (submission to completion, *including* server
    /// queueing — the echoed `QueryAnswer::latency_micros`) of every accepted
    /// request, sorted ascending. This is the quantity the admission
    /// controller predicts and the quantity the service's own `slo_p99`
    /// breach detection measures; the client-perceived numbers above add wire
    /// transit and client-side scheduling on top, which no server-side
    /// controller can defend. Hold *this* distribution against the SLO.
    pub accepted_server_latencies: Vec<Duration>,
    /// Overload retries performed across the fleet — non-zero only when the
    /// connections were built with
    /// [`ClientConfig::retry_on_overload`](ksp_proto::ClientConfig) enabled.
    /// A retried-then-accepted request counts once in `completed` and its
    /// backoff rides inside its accepted latency.
    pub retries: u64,
}

impl OpenLoopReport {
    /// Completed requests per second of wall-clock time.
    pub fn achieved_qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Exact quantile of the accepted-request latencies (nearest-rank);
    /// zero when nothing was accepted.
    pub fn accepted_quantile(&self, q: f64) -> Duration {
        if self.accepted_latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((self.accepted_latencies.len() as f64 * q).ceil() as usize)
            .clamp(1, self.accepted_latencies.len());
        self.accepted_latencies[rank - 1]
    }

    /// Accepted-request p50.
    pub fn accepted_p50(&self) -> Duration {
        self.accepted_quantile(0.50)
    }

    /// Accepted-request p99 as the client perceives it.
    pub fn accepted_p99(&self) -> Duration {
        self.accepted_quantile(0.99)
    }

    /// Exact quantile of the server-reported accepted-request latencies
    /// (nearest-rank); zero when nothing was accepted.
    pub fn server_quantile(&self, q: f64) -> Duration {
        if self.accepted_server_latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((self.accepted_server_latencies.len() as f64 * q).ceil() as usize)
            .clamp(1, self.accepted_server_latencies.len());
        self.accepted_server_latencies[rank - 1]
    }

    /// Server-reported accepted p99 — the number to hold against the SLO.
    pub fn server_p99(&self) -> Duration {
        self.server_quantile(0.99)
    }
}

/// Runs an **open-loop** fleet against a serving endpoint: each connection
/// fires its requests on an absolute schedule (`start + i × interval`),
/// sleeping when ahead and firing immediately when behind, so a slow server
/// faces a backlog of due arrivals instead of a politely waiting client.
///
/// This is the overload-experiment companion of [`run_closed_loop_over`]: a
/// closed loop self-throttles (each client waits for its answer), which makes
/// sustained 2× overload impossible to offer; the open loop keeps offering
/// it, and what admission control does about it shows up in the split between
/// `completed`, `rejected` and the accepted-only latency histogram.
///
/// One caveat inherent to blocking connections: a connection cannot overlap
/// its own requests, so per-connection the loop is closed and the open-loop
/// pressure comes from the fleet width. Scale `num_connections` (keeping
/// `offered_qps` fixed) to tighten the approximation.
pub fn run_open_loop_over<T, F>(
    mut make_client: F,
    workload: &QueryWorkload,
    config: OpenLoopConfig,
) -> OpenLoopReport
where
    T: Transport,
    F: FnMut() -> KspClient<T>,
{
    assert!(config.num_connections >= 1, "need at least one connection");
    assert!(!workload.is_empty(), "workload must not be empty");

    let clients: Vec<KspClient<T>> = (0..config.num_connections).map(|_| make_client()).collect();
    let completed = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let rejected_with_hint = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let first_failure: Mutex<Option<String>> = Mutex::new(None);
    let accepted: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let accepted_server: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let retries = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for (conn_id, mut client) in clients.into_iter().enumerate() {
            let completed = &completed;
            let rejected = &rejected;
            let rejected_with_hint = &rejected_with_hint;
            let failed = &failed;
            let first_failure = &first_failure;
            let accepted = &accepted;
            let accepted_server = &accepted_server;
            let retries = &retries;
            scope.spawn(move || {
                let stride = (workload.len() / config.num_connections.max(1)).max(1);
                let replay = workload.cycle_from(conn_id * stride);
                // Phase the fleet so arrivals spread across the interval
                // instead of firing in lockstep bursts.
                let phase = config.interval.mul_f64(conn_id as f64 / config.num_connections as f64);
                let origin = started + phase;
                for (i, q) in replay.take(config.requests_per_connection).enumerate() {
                    let due = origin + config.interval * i as u32;
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let sent = Instant::now();
                    // The cumulative server-reported micros before and after
                    // the call bracket this one request's server-side latency.
                    let server_before = client.latency_breakdown().server_micros;
                    match client.query(q.source, q.target, q.k) {
                        Ok(_) => {
                            accepted.lock().push(sent.elapsed());
                            let server_micros = client
                                .latency_breakdown()
                                .server_micros
                                .saturating_sub(server_before);
                            accepted_server.lock().push(Duration::from_micros(server_micros));
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ksp_proto::ClientError::Server(reply)) if reply.is_overloaded() => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            if reply.retry_after_ms().is_some() {
                                rejected_with_hint.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(other) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            first_failure.lock().get_or_insert_with(|| other.to_string());
                        }
                    }
                }
                retries.fetch_add(client.retries(), Ordering::Relaxed);
            });
        }
    });

    let failures = failed.into_inner();
    if failures > 0 {
        let detail = first_failure.into_inner().unwrap_or_default();
        panic!("{failures} open-loop request(s) failed unexpectedly; first: {detail}");
    }

    let mut accepted = accepted.into_inner();
    accepted.sort_unstable();
    let mut accepted_server = accepted_server.into_inner();
    accepted_server.sort_unstable();
    OpenLoopReport {
        offered: config.num_connections * config.requests_per_connection,
        completed: completed.into_inner(),
        rejected: rejected.into_inner(),
        rejected_with_hint: rejected_with_hint.into_inner(),
        elapsed: started.elapsed(),
        accepted_latencies: accepted,
        accepted_server_latencies: accepted_server,
        retries: retries.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::InProcTransport;
    use crate::service::ServiceConfig;
    use ksp_core::dtlp::DtlpConfig;
    use ksp_workload::{
        QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
    };

    #[test]
    fn closed_loop_completes_all_requests_without_updates() {
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(150))
            .generate(23)
            .unwrap()
            .graph;
        let service =
            QueryService::start(graph.clone(), ServiceConfig::new(2, DtlpConfig::new(15, 2)))
                .unwrap();
        let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(12, 2), 7);
        let report = run_closed_loop(&service, &workload, None, LoadDriverConfig::new(3, 8));
        assert_eq!(report.completed + report.rejected, 24);
        assert!(report.completed > 0);
        assert_eq!(report.epochs_published, 0);
        assert!(report.throughput_qps() > 0.0);
        // Every request is either a cache hit or a miss.
        assert_eq!(
            report.metrics.cache_hits + report.metrics.cache_misses,
            report.completed as u64
        );
        // The run's delta matches the driver's own accounting: nothing else
        // was loading the service, so the interval increments are the run.
        assert_eq!(report.delta.completed, report.completed as u64);
        assert_eq!(report.delta.rejected, report.rejected as u64);
        assert_eq!(report.delta.epochs_published, 0);
        assert_eq!(report.delta.cache_hits + report.delta.cache_misses, report.delta.completed);
    }

    #[test]
    fn closed_loop_with_updates_publishes_epochs() {
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(150))
            .generate(29)
            .unwrap()
            .graph;
        let service =
            QueryService::start(graph.clone(), ServiceConfig::new(2, DtlpConfig::new(15, 2)))
                .unwrap();
        let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(10, 2), 11);
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.4), 5);
        let report = run_closed_loop(
            &service,
            &workload,
            Some(&mut traffic),
            LoadDriverConfig::new(4, 25).with_updates_every(Duration::from_millis(5)),
        );
        assert_eq!(report.completed + report.rejected, 100);
        assert!(report.epochs_published >= 1, "updater must have published");
        assert_eq!(service.current_epoch(), report.epochs_published);
    }

    #[test]
    fn wire_driver_over_the_in_process_transport_matches_the_direct_path() {
        use std::sync::Arc;
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(150))
            .generate(31)
            .unwrap()
            .graph;
        let service = Arc::new(
            QueryService::start(graph.clone(), ServiceConfig::new(2, DtlpConfig::new(15, 2)))
                .unwrap(),
        );
        let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(10, 2), 13);
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.4), 7);
        let report = run_closed_loop_over(
            || KspClient::new(InProcTransport::new(service.clone())),
            &workload,
            Some(&mut traffic),
            LoadDriverConfig::new(3, 10).with_updates_every(Duration::from_millis(5)),
        );
        assert_eq!(report.completed + report.rejected, 30);
        assert!(report.completed > 0);
        assert!(report.throughput_qps() > 0.0);
        // The in-process transport moves no bytes — that is the baseline the
        // TCP path is compared against.
        assert_eq!(report.wire.bytes_sent, 0);
        assert_eq!(report.wire.bytes_received, 0);
        assert!(report.wire.requests >= 30, "every query plus metrics/publish calls");
        assert_eq!(report.metrics.completed, report.completed as u64);
        assert_eq!(service.current_epoch(), report.epochs_published);
        // Every query roundtrip (answered or rejected) lands one observation
        // in the pooled client-perceived histogram; the control and updater
        // clients contribute nothing.
        assert_eq!(report.perceived.count, 30);
        assert!(report.perceived_p99() >= report.perceived_p50());
    }

    #[test]
    fn open_loop_accounts_every_offered_request() {
        use std::sync::Arc;
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(150))
            .generate(37)
            .unwrap()
            .graph;
        let service = Arc::new(
            QueryService::start(graph.clone(), ServiceConfig::new(2, DtlpConfig::new(15, 2)))
                .unwrap(),
        );
        let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(10, 2), 17);
        let config = OpenLoopConfig::new(3, 8, Duration::from_millis(1));
        assert!(config.offered_qps() > 0.0);
        let report = run_open_loop_over(
            || KspClient::new(InProcTransport::new(service.clone())),
            &workload,
            config,
        );
        assert_eq!(report.offered, 24);
        assert_eq!(report.completed + report.rejected, report.offered);
        // Hints are a subset of rejections, and only accepted requests are
        // measured.
        assert!(report.rejected_with_hint <= report.rejected);
        assert_eq!(report.accepted_latencies.len(), report.completed);
        assert_eq!(report.accepted_server_latencies.len(), report.completed);
        if report.completed > 0 {
            assert!(report.achieved_qps() > 0.0);
            assert!(report.accepted_p99() >= report.accepted_p50());
            // The server-side latency is a component of the perceived one.
            assert!(report.server_p99() <= report.accepted_p99());
        }
    }
}
