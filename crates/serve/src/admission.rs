//! Bounded request queues with admission control.
//!
//! Each shard owns one [`BoundedQueue`]. Producers (`submit`) are rejected with
//! [`QueueFull`] once the queue holds `max_depth` requests — backpressure the
//! client observes immediately instead of unbounded queueing delay. The shard's
//! worker drains requests in batches of up to `max_batch`, which lets it load
//! the current epoch once (and take its cache lock once) per batch instead of
//! per request.
//!
//! For the work-stealing scheduler the queue additionally supports a timed
//! drain ([`BoundedQueue::pop_batch_timeout`]) — an idle worker wakes after
//! the timeout to look for a victim — and a non-blocking
//! [`BoundedQueue::steal_batch`] that removes the *oldest* queued requests, so
//! a thief always relieves the requests that have waited longest (the ones
//! driving the victim's tail latency).
//!
//! On top of the static cap sits the **adaptive controller**
//! ([`AdmissionController`]): it keeps a per-cost-class EWMA of recent service
//! times ([`CostEstimator`]) — a request whose trace-checked cache entry
//! survived costs microseconds, an evicted/incomplete one costs a full engine
//! run — and predicts each arriving request's end-to-end latency as
//!
//! ```text
//! predicted = queue_depth × blended_service_time + own_class_service_time
//! ```
//!
//! When the prediction breaches the `slo_p99`-derived budget the request is
//! rejected *before* it queues, with a `retry_after_ms` hint telling the
//! client how far over budget the backlog currently is. Overload thus shows up
//! as fast typed rejections instead of SLO breaches on admitted work.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Admission-control settings for every shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum number of queued (admitted but not yet executing) requests per
    /// shard; submissions beyond this are rejected.
    pub max_queue_depth: usize,
    /// Maximum number of requests a worker drains per batch.
    pub max_batch: usize,
    /// When `true` (the default) and the service's [`ksp_obs::ObsConfig`]
    /// sets a non-zero `slo_p99`, the adaptive controller rejects requests
    /// whose predicted latency (queue depth × service-time EWMA + own
    /// predicted cost) would breach the SLO budget — before they queue. When
    /// `false`, or when no SLO is configured, only the static `max_queue_depth`
    /// cap rejects: the pre-adaptive behaviour, kept as the overload baseline.
    pub adaptive: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { max_queue_depth: 1024, max_batch: 32, adaptive: true }
    }
}

impl AdmissionConfig {
    /// Validates the configuration.
    pub fn validate(&self) {
        assert!(self.max_queue_depth >= 1, "max_queue_depth must be at least 1");
        assert!(self.max_batch >= 1, "max_batch must be at least 1");
    }
}

/// Rejection marker: the shard's queue is at its configured depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured depth that was reached.
    pub depth: usize,
}

/// Outcome of a [`BoundedQueue::pop_batch_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum TimedPop<T> {
    /// At least one item arrived within the timeout.
    Items(Vec<T>),
    /// The queue stayed empty for the whole timeout; the caller may steal.
    TimedOut,
    /// The queue is closed and drained; the worker should exit.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Deepest the queue has ever been; the backlog gauge adaptive admission
    /// control will key off (a depth that *reached* the cap tells the operator
    /// the configured depth, not the default, is the binding constraint).
    high_water: usize,
}

/// A bounded MPSC queue: many submitting clients, one draining worker.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    max_depth: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `max_depth` pending items.
    pub fn new(max_depth: usize) -> Self {
        assert!(max_depth >= 1, "queue depth must be at least 1");
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false, high_water: 0 }),
            ready: Condvar::new(),
            max_depth,
        }
    }

    /// Number of currently queued items.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).items.len()
    }

    /// The deepest the queue has ever been (admitted items waiting at once).
    pub fn high_water(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).high_water
    }

    /// Admits `item`, or rejects it if the queue is full or closed.
    ///
    /// On rejection the item is handed back so the caller can fail the request
    /// without losing its reply channel.
    pub fn submit(&self, item: T) -> Result<(), (T, QueueFull)> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed || state.items.len() >= self.max_depth {
            return Err((item, QueueFull { depth: self.max_depth }));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available, then drains up to
    /// `max_batch` items. Returns `None` once the queue is closed and empty.
    pub fn pop_batch(&self, max_batch: usize) -> Option<Vec<T>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max_batch.max(1));
                return Some(state.items.drain(..take).collect());
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`BoundedQueue::pop_batch`], but waits at most `timeout` for an
    /// item. [`TimedPop::TimedOut`] tells an idle worker it is free to go
    /// looking for steal victims; [`TimedPop::Closed`] is terminal.
    pub fn pop_batch_timeout(&self, max_batch: usize, timeout: Duration) -> TimedPop<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max_batch.max(1));
                return TimedPop::Items(state.items.drain(..take).collect());
            }
            if state.closed {
                return TimedPop::Closed;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return TimedPop::TimedOut;
            }
            let (next, wait) =
                self.ready.wait_timeout(state, deadline - now).unwrap_or_else(|e| e.into_inner());
            state = next;
            if wait.timed_out() && state.items.is_empty() && !state.closed {
                return TimedPop::TimedOut;
            }
        }
    }

    /// Steals up to `max` of the *oldest* queued items without blocking.
    /// Returns `None` when there is nothing to steal. Closed queues can still
    /// be stolen from: draining a dead shard's backlog is exactly what the
    /// thief is for during shutdown races.
    pub fn steal_batch(&self, max: usize) -> Option<Vec<T>> {
        if max == 0 {
            return None;
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.items.is_empty() {
            return None;
        }
        let take = state.items.len().min(max);
        Some(state.items.drain(..take).collect())
    }

    /// Closes the queue: further submissions are rejected and the worker drains
    /// what remains, then observes the shutdown.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// The predicted (and later, observed) cost class of one request.
///
/// The split is what makes the controller *cost-aware*: a request whose
/// trace-checked cache entry survived the last publishes is answered in
/// microseconds, while an evicted or never-cached request pays a full engine
/// run — typically three to five orders of magnitude more. Folding both into
/// one average would make the delay estimate useless under any real hit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// The home shard's cache holds a current-epoch entry for this identity.
    CacheHit,
    /// No servable cache entry: the engine will run.
    EngineRun,
}

/// EWMA shift: each sample moves the average by 1/8 of the residual. Small
/// enough to ride out one-off outliers, large enough that a phase change
/// (e.g. a publish storm evicting the cache) re-converges within ~20 samples.
const EWMA_SHIFT: u32 = 3;

/// Per-cost-class service-time estimator.
///
/// Workers feed it one sample per completed request
/// ([`CostEstimator::observe`]); the admission path reads it lock-free. The
/// EWMAs are plain relaxed load/store cells — a lost update under contention
/// nudges the average by one sample and is harmless, which is the price of
/// keeping the hot path at two atomic ops.
#[derive(Debug, Default)]
pub struct CostEstimator {
    /// EWMA of cache-hit service time, nanoseconds; 0 = no samples yet.
    hit_nanos: AtomicU64,
    /// EWMA of engine-run service time, nanoseconds; 0 = no samples yet.
    miss_nanos: AtomicU64,
    /// Requests observed per class, for the hit-rate blend.
    hits_seen: AtomicU64,
    misses_seen: AtomicU64,
}

impl CostEstimator {
    /// Creates an estimator with no samples (every class estimates as zero
    /// until the first observation, and the controller admits blind).
    pub fn new() -> Self {
        CostEstimator::default()
    }

    /// Feeds one completed request's service time (cache lookup + engine work,
    /// excluding queue wait) into the class's EWMA.
    pub fn observe(&self, class: CostClass, service_time: Duration) {
        let sample = service_time.as_nanos().min(u64::MAX as u128) as u64;
        let (cell, seen) = match class {
            CostClass::CacheHit => (&self.hit_nanos, &self.hits_seen),
            CostClass::EngineRun => (&self.miss_nanos, &self.misses_seen),
        };
        seen.fetch_add(1, Ordering::Relaxed);
        let old = cell.load(Ordering::Relaxed);
        let new = if old == 0 {
            // First sample seeds the average directly; a warm-up ramp from
            // zero would under-admit nothing but under-predict for dozens of
            // requests.
            sample
        } else {
            old - (old >> EWMA_SHIFT) + (sample >> EWMA_SHIFT)
        };
        cell.store(new.max(1), Ordering::Relaxed);
    }

    /// The current EWMA for one class; zero until the class has a sample.
    pub fn class_nanos(&self, class: CostClass) -> u64 {
        match class {
            CostClass::CacheHit => self.hit_nanos.load(Ordering::Relaxed),
            CostClass::EngineRun => self.miss_nanos.load(Ordering::Relaxed),
        }
    }

    /// Hit-rate-blended expected service time of an *unknown* queued request,
    /// in nanoseconds — the per-item multiplier of the queueing-delay
    /// estimate. Falls back to whichever class has samples; zero only before
    /// any request completed.
    pub fn blended_nanos(&self) -> u64 {
        let hit = self.hit_nanos.load(Ordering::Relaxed);
        let miss = self.miss_nanos.load(Ordering::Relaxed);
        let hits = self.hits_seen.load(Ordering::Relaxed);
        let misses = self.misses_seen.load(Ordering::Relaxed);
        match (hit, miss) {
            (0, m) => m,
            (h, 0) => h,
            (h, m) => {
                let total = (hits + misses).max(1) as f64;
                let rate = hits as f64 / total;
                (h as f64 * rate + m as f64 * (1.0 - rate)) as u64
            }
        }
    }
}

/// One adaptive rejection: the prediction, the budget it breached, and the
/// client-facing backoff hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionRejection {
    /// Predicted end-to-end latency had the request been admitted.
    pub estimated_wait: Duration,
    /// The SLO-derived budget the prediction breached.
    pub budget: Duration,
    /// Suggested client backoff: how far over budget the backlog currently
    /// is, in milliseconds, clamped to `[1, 60_000]`.
    pub retry_after_ms: u64,
    /// Whether this rejection *entered* a breach episode (the previous
    /// decision admitted). Edge-triggered, so the caller can take one flight
    /// dump per episode instead of one per rejected request.
    pub entered_breach: bool,
}

/// Verdict of the adaptive controller for one arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Predicted latency fits the budget (or the controller is disabled /
    /// has no signal yet): enqueue.
    Admit,
    /// Predicted latency breaches the budget: reject with a typed
    /// `Overloaded { retry_after_ms }` before the request queues.
    Reject(AdmissionRejection),
}

/// SLO-driven, cost-aware admission controller (see the module docs for the
/// formula). One per service, shared by the submit path (decisions) and every
/// shard worker (service-time observations).
#[derive(Debug)]
pub struct AdmissionController {
    estimator: CostEstimator,
    /// The latency budget in nanoseconds; 0 disables adaptive admission
    /// (static queue cap only).
    budget_nanos: u64,
    /// Whether the last decision rejected — breach episodes are
    /// edge-triggered for flight-dump purposes.
    in_breach: AtomicBool,
}

/// Ceiling of the `retry_after_ms` hint: a backlog predicted to take longer
/// than a minute signals misconfiguration, not a retry opportunity.
const MAX_RETRY_AFTER_MS: u64 = 60_000;

impl AdmissionController {
    /// A controller with the given latency budget. Pass the service's
    /// `ObsConfig::slo_p99` (zero = disabled): a request predicted to finish
    /// within the SLO is admitted, one predicted to breach it is rejected.
    pub fn new(budget: Duration) -> Self {
        AdmissionController {
            estimator: CostEstimator::new(),
            budget_nanos: budget.as_nanos().min(u64::MAX as u128) as u64,
            in_breach: AtomicBool::new(false),
        }
    }

    /// The service-time estimator, for workers to feed.
    pub fn estimator(&self) -> &CostEstimator {
        &self.estimator
    }

    /// Whether adaptive admission is active (a non-zero budget was given).
    pub fn is_adaptive(&self) -> bool {
        self.budget_nanos > 0
    }

    /// Decides one arriving request: `depth` is the target shard's live queue
    /// depth, `predicted` the request's cost class (from a trace-checked peek
    /// at the home shard's cache).
    pub fn assess(&self, depth: usize, predicted: CostClass) -> AdmissionVerdict {
        if self.budget_nanos == 0 {
            return AdmissionVerdict::Admit;
        }
        let per_item = self.estimator.blended_nanos();
        if per_item == 0 {
            // No completed request yet: nothing to predict with; admit.
            return AdmissionVerdict::Admit;
        }
        let own = match self.estimator.class_nanos(predicted) {
            0 => per_item,
            n => n,
        };
        let predicted_nanos = (depth as u64).saturating_mul(per_item).saturating_add(own);
        if predicted_nanos <= self.budget_nanos {
            self.in_breach.store(false, Ordering::Relaxed);
            return AdmissionVerdict::Admit;
        }
        let over_ms = (predicted_nanos - self.budget_nanos).div_ceil(1_000_000);
        AdmissionVerdict::Reject(AdmissionRejection {
            estimated_wait: Duration::from_nanos(predicted_nanos),
            budget: Duration::from_nanos(self.budget_nanos),
            retry_after_ms: over_ms.clamp(1, MAX_RETRY_AFTER_MS),
            entered_breach: !self.in_breach.swap(true, Ordering::Relaxed),
        })
    }

    /// Backoff hint for a *static-cap* rejection (the queue hit
    /// `max_queue_depth`): the predicted time to drain the full backlog, in
    /// milliseconds. Zero when no request has completed yet — the hint-free
    /// legacy wire form.
    pub fn queue_full_hint_ms(&self, depth: usize) -> u64 {
        let per_item = self.estimator.blended_nanos();
        if per_item == 0 {
            return 0;
        }
        ((depth as u64).saturating_mul(per_item).div_ceil(1_000_000)).clamp(1, MAX_RETRY_AFTER_MS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn submissions_beyond_depth_are_rejected() {
        let q = BoundedQueue::new(2);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        let (item, err) = q.submit(3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(err.depth, 2);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn high_water_tracks_the_deepest_backlog() {
        let q = BoundedQueue::new(8);
        assert_eq!(q.high_water(), 0);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        q.submit(3).unwrap();
        assert_eq!(q.high_water(), 3);
        // Draining lowers the depth but never the high-water mark.
        assert_eq!(q.pop_batch(2), Some(vec![1, 2]));
        assert_eq!(q.depth(), 1);
        assert_eq!(q.high_water(), 3);
        q.submit(4).unwrap();
        assert_eq!(q.high_water(), 3, "2 queued now; the mark stays at 3");
    }

    #[test]
    fn pop_batch_drains_up_to_max_batch() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.submit(i).unwrap();
        }
        assert_eq!(q.pop_batch(3), Some(vec![0, 1, 2]));
        assert_eq!(q.pop_batch(3), Some(vec![3, 4]));
    }

    #[test]
    fn close_wakes_blocked_worker_and_rejects_producers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.pop_batch(4))
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
        assert!(q.submit(1).is_err());
    }

    #[test]
    fn timed_pop_returns_items_timeout_and_closed() {
        let q = BoundedQueue::new(4);
        q.submit(1).unwrap();
        assert_eq!(
            q.pop_batch_timeout(4, std::time::Duration::from_millis(1)),
            TimedPop::Items(vec![1])
        );
        assert_eq!(q.pop_batch_timeout(4, std::time::Duration::from_millis(1)), TimedPop::TimedOut);
        q.close();
        assert_eq!(q.pop_batch_timeout(4, std::time::Duration::from_millis(1)), TimedPop::Closed);
    }

    #[test]
    fn timed_pop_wakes_on_late_submission() {
        let q = Arc::new(BoundedQueue::new(4));
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.pop_batch_timeout(4, std::time::Duration::from_secs(5)))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit(9).unwrap();
        assert_eq!(worker.join().unwrap(), TimedPop::Items(vec![9]));
    }

    #[test]
    fn steal_takes_the_oldest_items_first() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.submit(i).unwrap();
        }
        assert_eq!(q.steal_batch(2), Some(vec![0, 1]));
        assert_eq!(q.depth(), 3);
        // The owner still drains FIFO after the theft.
        assert_eq!(q.pop_batch(8), Some(vec![2, 3, 4]));
        assert_eq!(q.steal_batch(2), None, "empty queue has nothing to steal");
        assert_eq!(q.steal_batch(0), None, "zero-sized steals are refused");
        // A closed queue's backlog is still stealable.
        let q = BoundedQueue::new(8);
        q.submit(7).unwrap();
        q.close();
        assert_eq!(q.steal_batch(4), Some(vec![7]));
    }

    #[test]
    fn close_lets_worker_drain_remaining_items() {
        let q = BoundedQueue::new(4);
        q.submit(7).unwrap();
        q.close();
        assert_eq!(q.pop_batch(4), Some(vec![7]));
        assert_eq!(q.pop_batch(4), None);
    }

    #[test]
    fn estimator_tracks_each_cost_class_separately() {
        let e = CostEstimator::new();
        assert_eq!(e.blended_nanos(), 0, "no samples, no estimate");
        e.observe(CostClass::CacheHit, Duration::from_micros(5));
        e.observe(CostClass::EngineRun, Duration::from_millis(5));
        // The first sample seeds each class directly.
        assert_eq!(e.class_nanos(CostClass::CacheHit), 5_000);
        assert_eq!(e.class_nanos(CostClass::EngineRun), 5_000_000);
        // The blend sits strictly between the classes.
        let blend = e.blended_nanos();
        assert!(blend > 5_000 && blend < 5_000_000, "blend {blend} out of range");
    }

    #[test]
    fn estimator_converges_toward_a_shifted_service_time() {
        let e = CostEstimator::new();
        e.observe(CostClass::EngineRun, Duration::from_micros(100));
        for _ in 0..100 {
            e.observe(CostClass::EngineRun, Duration::from_micros(900));
        }
        let est = e.class_nanos(CostClass::EngineRun);
        assert!(
            (800_000..=1_000_000).contains(&est),
            "EWMA should have re-converged near 900µs, got {est}ns"
        );
    }

    #[test]
    fn controller_admits_blind_and_rejects_on_predicted_breach() {
        let c = AdmissionController::new(Duration::from_millis(10));
        assert!(c.is_adaptive());
        // No completed request yet: no signal, admit anything.
        assert_eq!(c.assess(10_000, CostClass::EngineRun), AdmissionVerdict::Admit);
        // 1ms per queued item: depth 5 predicts ~6ms, within the 10ms budget.
        for _ in 0..8 {
            c.estimator().observe(CostClass::EngineRun, Duration::from_millis(1));
        }
        assert_eq!(c.assess(5, CostClass::EngineRun), AdmissionVerdict::Admit);
        // Depth 50 predicts ~51ms: over budget, with a ceil'd backoff hint.
        match c.assess(50, CostClass::EngineRun) {
            AdmissionVerdict::Reject(r) => {
                assert!(r.estimated_wait > r.budget);
                assert!(r.retry_after_ms >= 1);
                assert!(r.entered_breach, "first rejection opens the episode");
            }
            v => panic!("expected rejection, got {v:?}"),
        }
    }

    #[test]
    fn cost_classes_split_the_admission_decision() {
        // Budget 2ms, engine runs cost 10ms, hits cost 1µs: at depth 0 a
        // predicted hit fits the budget while a predicted engine run breaches
        // it — the cost-aware half of the controller.
        let c = AdmissionController::new(Duration::from_millis(2));
        for _ in 0..8 {
            c.estimator().observe(CostClass::CacheHit, Duration::from_micros(1));
            c.estimator().observe(CostClass::EngineRun, Duration::from_millis(10));
        }
        assert_eq!(c.assess(0, CostClass::CacheHit), AdmissionVerdict::Admit);
        assert!(matches!(c.assess(0, CostClass::EngineRun), AdmissionVerdict::Reject(_)));
    }

    #[test]
    fn breach_episodes_are_edge_triggered() {
        let c = AdmissionController::new(Duration::from_millis(1));
        c.estimator().observe(CostClass::EngineRun, Duration::from_millis(1));
        let first = c.assess(100, CostClass::EngineRun);
        let second = c.assess(100, CostClass::EngineRun);
        match (first, second) {
            (AdmissionVerdict::Reject(a), AdmissionVerdict::Reject(b)) => {
                assert!(a.entered_breach);
                assert!(!b.entered_breach, "episode already open");
            }
            other => panic!("expected two rejections, got {other:?}"),
        }
        // An admit closes the episode; the next rejection re-enters it.
        assert_eq!(c.assess(0, CostClass::CacheHit), AdmissionVerdict::Admit);
        match c.assess(100, CostClass::EngineRun) {
            AdmissionVerdict::Reject(r) => assert!(r.entered_breach),
            v => panic!("expected rejection, got {v:?}"),
        }
    }

    #[test]
    fn disabled_controller_admits_everything_but_still_hints() {
        let c = AdmissionController::new(Duration::ZERO);
        assert!(!c.is_adaptive());
        c.estimator().observe(CostClass::EngineRun, Duration::from_millis(2));
        assert_eq!(c.assess(1_000_000, CostClass::EngineRun), AdmissionVerdict::Admit);
        // The static-cap hint still works off the estimator: 64 × 2ms = 128ms.
        assert_eq!(c.queue_full_hint_ms(64), 128);
        assert_eq!(AdmissionController::new(Duration::ZERO).queue_full_hint_ms(64), 0);
    }
}
