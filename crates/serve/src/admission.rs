//! Bounded request queues with admission control.
//!
//! Each shard owns one [`BoundedQueue`]. Producers (`submit`) are rejected with
//! [`QueueFull`] once the queue holds `max_depth` requests — backpressure the
//! client observes immediately instead of unbounded queueing delay. The shard's
//! worker drains requests in batches of up to `max_batch`, which lets it load
//! the current epoch once (and take its cache lock once) per batch instead of
//! per request.
//!
//! For the work-stealing scheduler the queue additionally supports a timed
//! drain ([`BoundedQueue::pop_batch_timeout`]) — an idle worker wakes after
//! the timeout to look for a victim — and a non-blocking
//! [`BoundedQueue::steal_batch`] that removes the *oldest* queued requests, so
//! a thief always relieves the requests that have waited longest (the ones
//! driving the victim's tail latency).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Admission-control settings for every shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum number of queued (admitted but not yet executing) requests per
    /// shard; submissions beyond this are rejected.
    pub max_queue_depth: usize,
    /// Maximum number of requests a worker drains per batch.
    pub max_batch: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { max_queue_depth: 1024, max_batch: 32 }
    }
}

impl AdmissionConfig {
    /// Validates the configuration.
    pub fn validate(&self) {
        assert!(self.max_queue_depth >= 1, "max_queue_depth must be at least 1");
        assert!(self.max_batch >= 1, "max_batch must be at least 1");
    }
}

/// Rejection marker: the shard's queue is at its configured depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured depth that was reached.
    pub depth: usize,
}

/// Outcome of a [`BoundedQueue::pop_batch_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum TimedPop<T> {
    /// At least one item arrived within the timeout.
    Items(Vec<T>),
    /// The queue stayed empty for the whole timeout; the caller may steal.
    TimedOut,
    /// The queue is closed and drained; the worker should exit.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Deepest the queue has ever been; the backlog gauge adaptive admission
    /// control will key off (a depth that *reached* the cap tells the operator
    /// the configured depth, not the default, is the binding constraint).
    high_water: usize,
}

/// A bounded MPSC queue: many submitting clients, one draining worker.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    max_depth: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `max_depth` pending items.
    pub fn new(max_depth: usize) -> Self {
        assert!(max_depth >= 1, "queue depth must be at least 1");
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false, high_water: 0 }),
            ready: Condvar::new(),
            max_depth,
        }
    }

    /// Number of currently queued items.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).items.len()
    }

    /// The deepest the queue has ever been (admitted items waiting at once).
    pub fn high_water(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).high_water
    }

    /// Admits `item`, or rejects it if the queue is full or closed.
    ///
    /// On rejection the item is handed back so the caller can fail the request
    /// without losing its reply channel.
    pub fn submit(&self, item: T) -> Result<(), (T, QueueFull)> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed || state.items.len() >= self.max_depth {
            return Err((item, QueueFull { depth: self.max_depth }));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available, then drains up to
    /// `max_batch` items. Returns `None` once the queue is closed and empty.
    pub fn pop_batch(&self, max_batch: usize) -> Option<Vec<T>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max_batch.max(1));
                return Some(state.items.drain(..take).collect());
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`BoundedQueue::pop_batch`], but waits at most `timeout` for an
    /// item. [`TimedPop::TimedOut`] tells an idle worker it is free to go
    /// looking for steal victims; [`TimedPop::Closed`] is terminal.
    pub fn pop_batch_timeout(&self, max_batch: usize, timeout: Duration) -> TimedPop<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max_batch.max(1));
                return TimedPop::Items(state.items.drain(..take).collect());
            }
            if state.closed {
                return TimedPop::Closed;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return TimedPop::TimedOut;
            }
            let (next, wait) =
                self.ready.wait_timeout(state, deadline - now).unwrap_or_else(|e| e.into_inner());
            state = next;
            if wait.timed_out() && state.items.is_empty() && !state.closed {
                return TimedPop::TimedOut;
            }
        }
    }

    /// Steals up to `max` of the *oldest* queued items without blocking.
    /// Returns `None` when there is nothing to steal. Closed queues can still
    /// be stolen from: draining a dead shard's backlog is exactly what the
    /// thief is for during shutdown races.
    pub fn steal_batch(&self, max: usize) -> Option<Vec<T>> {
        if max == 0 {
            return None;
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.items.is_empty() {
            return None;
        }
        let take = state.items.len().min(max);
        Some(state.items.drain(..take).collect())
    }

    /// Closes the queue: further submissions are rejected and the worker drains
    /// what remains, then observes the shutdown.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn submissions_beyond_depth_are_rejected() {
        let q = BoundedQueue::new(2);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        let (item, err) = q.submit(3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(err.depth, 2);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn high_water_tracks_the_deepest_backlog() {
        let q = BoundedQueue::new(8);
        assert_eq!(q.high_water(), 0);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        q.submit(3).unwrap();
        assert_eq!(q.high_water(), 3);
        // Draining lowers the depth but never the high-water mark.
        assert_eq!(q.pop_batch(2), Some(vec![1, 2]));
        assert_eq!(q.depth(), 1);
        assert_eq!(q.high_water(), 3);
        q.submit(4).unwrap();
        assert_eq!(q.high_water(), 3, "2 queued now; the mark stays at 3");
    }

    #[test]
    fn pop_batch_drains_up_to_max_batch() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.submit(i).unwrap();
        }
        assert_eq!(q.pop_batch(3), Some(vec![0, 1, 2]));
        assert_eq!(q.pop_batch(3), Some(vec![3, 4]));
    }

    #[test]
    fn close_wakes_blocked_worker_and_rejects_producers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.pop_batch(4))
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
        assert!(q.submit(1).is_err());
    }

    #[test]
    fn timed_pop_returns_items_timeout_and_closed() {
        let q = BoundedQueue::new(4);
        q.submit(1).unwrap();
        assert_eq!(
            q.pop_batch_timeout(4, std::time::Duration::from_millis(1)),
            TimedPop::Items(vec![1])
        );
        assert_eq!(q.pop_batch_timeout(4, std::time::Duration::from_millis(1)), TimedPop::TimedOut);
        q.close();
        assert_eq!(q.pop_batch_timeout(4, std::time::Duration::from_millis(1)), TimedPop::Closed);
    }

    #[test]
    fn timed_pop_wakes_on_late_submission() {
        let q = Arc::new(BoundedQueue::new(4));
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.pop_batch_timeout(4, std::time::Duration::from_secs(5)))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit(9).unwrap();
        assert_eq!(worker.join().unwrap(), TimedPop::Items(vec![9]));
    }

    #[test]
    fn steal_takes_the_oldest_items_first() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.submit(i).unwrap();
        }
        assert_eq!(q.steal_batch(2), Some(vec![0, 1]));
        assert_eq!(q.depth(), 3);
        // The owner still drains FIFO after the theft.
        assert_eq!(q.pop_batch(8), Some(vec![2, 3, 4]));
        assert_eq!(q.steal_batch(2), None, "empty queue has nothing to steal");
        assert_eq!(q.steal_batch(0), None, "zero-sized steals are refused");
        // A closed queue's backlog is still stealable.
        let q = BoundedQueue::new(8);
        q.submit(7).unwrap();
        q.close();
        assert_eq!(q.steal_batch(4), Some(vec![7]));
    }

    #[test]
    fn close_lets_worker_drain_remaining_items() {
        let q = BoundedQueue::new(4);
        q.submit(7).unwrap();
        q.close();
        assert_eq!(q.pop_batch(4), Some(vec![7]));
        assert_eq!(q.pop_batch(4), None);
    }
}
