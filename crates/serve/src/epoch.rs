//! Epoch-based snapshots of the (graph, index) pair.
//!
//! The paper's deployment applies weight updates in periodic batches (Section 2:
//! the `Gcurr` buffer; Section 6.2: one traffic snapshot every few minutes) while
//! queries keep arriving. The serving subsystem models each applied batch as an
//! **epoch**: an immutable, internally consistent `(DynamicGraph, DtlpIndex)`
//! pair behind `Arc`s. Workers load the current epoch with one `RwLock` read and
//! then run an arbitrary number of queries against it without further
//! synchronisation; the updater builds the next epoch off to the side and
//! publishes it with one pointer swap. Readers never block the publisher for
//! longer than the swap, and a query never observes a graph from one epoch and
//! an index from another.

use ksp_core::dtlp::DtlpIndex;
use ksp_graph::DynamicGraph;
use parking_lot::RwLock;
use std::sync::Arc;

/// One immutable epoch: a consistent graph/index pair plus its sequence number.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    graph: Arc<DynamicGraph>,
    index: Arc<DtlpIndex>,
}

impl EpochSnapshot {
    /// Wraps a graph and the index built over it as epoch `epoch`.
    pub fn new(epoch: u64, graph: Arc<DynamicGraph>, index: Arc<DtlpIndex>) -> Self {
        EpochSnapshot { epoch, graph, index }
    }

    /// The epoch sequence number (0 for the initial build, +1 per published batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The road network as of this epoch.
    pub fn graph(&self) -> &Arc<DynamicGraph> {
        &self.graph
    }

    /// The DTLP index maintained to exactly this epoch's weights.
    pub fn index(&self) -> &Arc<DtlpIndex> {
        &self.index
    }
}

/// The shared generation pointer: workers `load` it, the updater `publish`es it.
#[derive(Debug)]
pub struct EpochPointer {
    current: RwLock<Arc<EpochSnapshot>>,
}

impl EpochPointer {
    /// Creates the pointer at its initial epoch.
    pub fn new(initial: EpochSnapshot) -> Self {
        EpochPointer { current: RwLock::new(Arc::new(initial)) }
    }

    /// Returns the current epoch. The returned `Arc` keeps the whole epoch alive
    /// for as long as the caller works with it, even across later publishes.
    pub fn load(&self) -> Arc<EpochSnapshot> {
        self.current.read().clone()
    }

    /// Atomically replaces the current epoch, returning the one it displaced.
    pub fn publish(&self, next: EpochSnapshot) -> Arc<EpochSnapshot> {
        let mut slot = self.current.write();
        std::mem::replace(&mut *slot, Arc::new(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_core::dtlp::DtlpConfig;
    use ksp_graph::GraphBuilder;

    fn snapshot(epoch: u64) -> EpochSnapshot {
        let mut b = GraphBuilder::undirected(4);
        b.edge(0, 1, 1).edge(1, 2, 1).edge(2, 3, 1).edge(0, 3, 5);
        let graph = b.build().unwrap();
        let index = DtlpIndex::build(&graph, DtlpConfig::new(2, 1)).unwrap();
        EpochSnapshot::new(epoch, Arc::new(graph), Arc::new(index))
    }

    #[test]
    fn load_returns_published_epoch() {
        let pointer = EpochPointer::new(snapshot(0));
        assert_eq!(pointer.load().epoch(), 0);
        let old = pointer.publish(snapshot(1));
        assert_eq!(old.epoch(), 0);
        assert_eq!(pointer.load().epoch(), 1);
    }

    #[test]
    fn loaded_epoch_outlives_publish() {
        let pointer = EpochPointer::new(snapshot(0));
        let held = pointer.load();
        pointer.publish(snapshot(1));
        // The reader's epoch stays fully usable after the swap.
        assert_eq!(held.epoch(), 0);
        assert_eq!(held.graph().num_vertices(), 4);
        assert!(held.index().num_subgraphs() > 0);
    }
}
