//! `ksp-serve`: the concurrent query-serving subsystem for KSP-DG.
//!
//! The paper's deployment (Section 6.1) answers k-shortest-path queries *while*
//! traffic updates stream in. The rest of this workspace provides the engine
//! and a measurement cluster for offline batch experiments; this crate provides
//! the serving substrate around them:
//!
//! * [`epoch`] — **epoch-based snapshots**: every applied update batch becomes
//!   an immutable, internally consistent `(DynamicGraph, DtlpIndex)` pair
//!   behind a swap-on-publish generation pointer. Queries never block updates
//!   and never observe a torn graph/index combination. Publication is
//!   **copy-on-write**: consecutive epochs share the graph topology, every
//!   untouched per-subgraph index and the auxiliary tables, so staging an
//!   epoch costs O(batch) rather than O(index) (the `epoch_publish` bench
//!   measures the gap against the old clone-everything path).
//! * [`service`] — the [`QueryService`]: a sharded pool of worker threads with
//!   per-shard **bounded queues** (reject-with-backpressure admission control),
//!   request **batching** (one epoch load per drained batch), and **work
//!   stealing**: hash routing keeps cache affinity, but an idle worker steals
//!   the oldest requests from the deepest queue, so skewed workloads no
//!   longer pin one shard while the rest idle.
//! * [`admission`] — besides the static queue cap, an **SLO-driven,
//!   cost-aware adaptive controller**: per predicted cost class (a
//!   trace-checked cache hit costs microseconds, an engine run costs
//!   milliseconds) it tracks service-time EWMAs, predicts an arriving
//!   request's completion as `depth × blended + own-class`, and rejects with
//!   a typed `Overloaded { retry_after_ms }` when the prediction breaches
//!   the [`ObsConfig::slo_p99`](ksp_obs::ObsConfig) budget — load is shed
//!   *before* it queues, and the retry hint sizes the client's backoff.
//! * [`cache`] — a per-shard **LRU result cache** keyed by
//!   `(source, target, k)`, with entries stamped by epoch and carrying their
//!   query's subgraph trace ([`QueryTrace`](ksp_core::kspdg::QueryTrace)).
//!   An epoch publish evicts only the entries whose trace intersects the
//!   batch's dirty set; everything else survives, re-stamped to the new
//!   epoch — so under steady small-batch churn the hit rate tracks update
//!   locality instead of collapsing to zero at every publish.
//! * [`metrics`] — lock-free latency histograms (p50/p95/p99), cache hit rate,
//!   retention/steal counters, and per-shard busy accounting exported through
//!   `ksp-cluster`'s [`ServerLoad`](ksp_cluster::ServerLoad) so the
//!   Section 6.6 load-balance reporting applies to service shards. All
//!   counters are cumulative-monotonic; [`MetricsReport::delta_since`] turns
//!   two reports into per-interval increments.
//! * **observability** (via `ksp-obs`) — every request carries a
//!   [`RequestSpan`](ksp_obs::RequestSpan) stamped at each stage boundary
//!   (admission → queue/steal → cache → engine → trace-sweep → reply); the
//!   finished chains aggregate into per-stage histograms that sum exactly to
//!   the end-to-end one. A lock-free flight recorder
//!   ([`FlightRecorder`](ksp_obs::FlightRecorder)) keeps the last N
//!   structured events (publishes, checkpoints, steals, rejections, hostile
//!   frames, recovery steps) and dumps itself on anomalies (SLO breach,
//!   publish stall). [`QueryService::obs_snapshot`] exports the lot, and
//!   [`QueryService::render_exposition`] renders it in the Prometheus text
//!   format.
//! * [`driver`] — a **closed-loop load driver** replaying a
//!   [`QueryWorkload`](ksp_workload::QueryWorkload) from many client threads
//!   while a [`TrafficModel`](ksp_workload::TrafficModel) publishes epochs;
//!   [`run_closed_loop_over`] is the same loop generalised over any
//!   `ksp-proto` [`Transport`](ksp_proto::Transport), reporting physical wire
//!   bytes alongside throughput.
//! * [`rpc`] — the **protocol endpoint**: [`QueryService::handle`] dispatches
//!   `ksp-proto`'s typed [`Request`](ksp_proto::Request)s, the zero-copy
//!   [`InProcTransport`] serves same-process clients, and [`TcpServer`] puts
//!   the service behind a socket (one acceptor, one worker per connection,
//!   typed errors for malformed/foreign-version frames, graceful shutdown).
//! * [`event_loop`] (Linux) — the same wire protocol from a **fixed thread
//!   count**: one poller thread drives a level-triggered `epoll` set with
//!   non-blocking sockets, per-connection buffers and partial-frame
//!   reassembly, a small dispatch pool runs the service, and the adaptive
//!   admission controller is applied at the socket — floods are answered
//!   with typed rejections instead of occupying threads, and a thousand
//!   idle connections cost file descriptors, not stacks.
//!
//! A service can also be **persistent**: started with
//! [`QueryService::start_with_store`], every published batch is appended to
//! `ksp-store`'s fsync-on-commit delta log *before* the epoch becomes
//! visible, and a background thread checkpoints the `(graph, index)` pair
//! every N epochs. After a crash or restart, [`QueryService::open`] loads the
//! newest checkpoint and replays the log instead of paying a full
//! `DtlpIndex::build` — and answers queries byte-identically to the service
//! that went down.
//!
//! # Example
//!
//! ```
//! use ksp_core::dtlp::DtlpConfig;
//! use ksp_graph::VertexId;
//! use ksp_serve::{QueryService, ServiceConfig};
//! use ksp_workload::{RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig, TrafficModel};
//!
//! let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(200))
//!     .generate(7)
//!     .unwrap()
//!     .graph;
//! let service =
//!     QueryService::start(graph.clone(), ServiceConfig::new(2, DtlpConfig::new(20, 2))).unwrap();
//!
//! // Serve a query, publish a traffic epoch, serve again.
//! let target = VertexId(graph.num_vertices() as u32 - 1);
//! let before = service.query(VertexId(0), target, 2).unwrap();
//! assert_eq!(before.epoch, 0);
//! let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 1);
//! service.apply_batch(&traffic.next_snapshot()).unwrap();
//! let after = service.query(VertexId(0), target, 2).unwrap();
//! assert_eq!(after.epoch, 1);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod driver;
pub mod epoch;
#[cfg(target_os = "linux")]
pub mod event_loop;
pub mod metrics;
pub mod rpc;
pub mod service;

pub use admission::{AdmissionConfig, QueueFull, TimedPop};
pub use cache::{CacheKey, CacheRetention, ResultCache, DEFAULT_HISTORY_DEPTH};
pub use driver::{
    run_closed_loop, run_closed_loop_over, run_open_loop_over, LoadDriverConfig, LoadReport,
    OpenLoopConfig, OpenLoopReport, WireLoadReport,
};
pub use epoch::{EpochPointer, EpochSnapshot};
#[cfg(target_os = "linux")]
pub use event_loop::{EventLoopConfig, EventLoopServer, EventLoopStats};
pub use metrics::{LatencyHistogram, MetricsDelta, MetricsReport, ServiceMetrics, ShardQueueGauge};
pub use rpc::{wire_metrics, InProcTransport, ReplicationHook, TcpServer};
pub use service::{
    route_shard, Observability, PublishError, QueryResponse, QueryService, ServiceConfig,
    ServiceError, RECOVERY_STEP_COMPLETED,
};
