//! The concurrent query service: sharded workers over epoch snapshots.
//!
//! [`QueryService`] owns the master `(DynamicGraph, DtlpIndex)` pair and serves
//! `(source, target, k)` requests from a pool of shard worker threads:
//!
//! * **Routing.** A request is hashed by its full identity to one shard, so a
//!   repeated request always lands on the shard whose cache can answer it.
//! * **Epoch consistency.** A worker loads the current [`EpochSnapshot`] once
//!   per request; graph and index come from the same atomic pointer read, so a
//!   query can never observe a torn (graph, index) pair even while
//!   [`QueryService::apply_batch`] publishes new epochs concurrently.
//! * **Admission control.** Each shard's queue is bounded; a full queue rejects
//!   the request immediately with [`ServiceError::Overloaded`] instead of
//!   letting latency grow without bound.
//! * **Caching.** Results are cached per shard, stamped with the epoch they
//!   are exact for and carrying the query's subgraph trace. Publishing an
//!   epoch evicts only the entries whose trace intersects the batch's dirty
//!   set ([`ksp_core::kspdg::QueryTrace`]); everything else is re-stamped to
//!   the new epoch — the read path's analogue of maintenance cost scaling
//!   with what changed, not with index size.
//! * **Work stealing.** Requests are still hash-routed for cache affinity,
//!   but a worker whose own queue stays empty for a beat steals the oldest
//!   requests from the deepest backlog, so a skewed workload no longer pins
//!   one shard while the others idle. Stolen answers are inserted into the
//!   *home* shard's cache, preserving affinity for the next repeat.

use crate::admission::{
    AdmissionConfig, AdmissionController, AdmissionVerdict, BoundedQueue, CostClass, TimedPop,
};
use crate::cache::{CacheKey, ResultCache};
use crate::epoch::{EpochPointer, EpochSnapshot};
use crate::metrics::{MetricsReport, ServiceMetrics, ShardQueueGauge};
use ksp_algo::Path;
use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
use ksp_core::kspdg::{KspDgConfig, QueryStats, SharedEngine};
use ksp_graph::{DynamicGraph, GraphError, SubgraphId, SubgraphSet, UpdateBatch, VertexId};
use ksp_obs::{
    Counter, EventKind, FlightRecorder, Gauge, ObsConfig, ObsSnapshot, PublishSpan,
    PublishStageSnapshot, RequestSpan, SpanChain, StageSnapshot,
};
use ksp_store::{AppendTimings, RecoveryReport, StorageIo, Store, StoreConfig, StoreError};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::path::Path as FsPath;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Number of shard worker threads.
    pub num_shards: usize,
    /// Capacity of each shard's result cache, in entries.
    pub cache_capacity: usize,
    /// Admission control for each shard's queue.
    pub admission: AdmissionConfig,
    /// Engine configuration used by every worker.
    pub engine: KspDgConfig,
    /// DTLP index configuration (subgraph size `z`, bounding paths `ξ`).
    pub dtlp: DtlpConfig,
    /// When `true` (the default), cached results survive epoch publishes
    /// whose dirty set is disjoint from their subgraph trace. When `false`,
    /// every publish clears every shard cache wholesale — the pre-trace
    /// behaviour, kept as the benchmark baseline.
    ///
    /// The service forces [`KspDgConfig::collect_trace`] on its workers to
    /// match this setting (the survival sweep is pure overhead without the
    /// cache consuming its certificate, and vice versa), overriding whatever
    /// the `engine` field says.
    pub cache_survival: bool,
    /// How many recent publishes each shard cache remembers as a ring of
    /// `(epoch, dirty set)` pairs. An entry stamped several epochs back — a
    /// worker that computed against an old snapshot and inserted after
    /// publishes raced past it — survives the next retention walk when the
    /// ring covers every publish it missed and its trace is disjoint from
    /// all of their dirty sets. `0` restores the strict one-publish survival
    /// rule; irrelevant when [`ServiceConfig::cache_survival`] is off.
    pub cache_history_depth: usize,
    /// When `true` (the default), an idle shard worker steals the oldest
    /// requests from the deepest shard queue instead of sleeping.
    pub work_stealing: bool,
    /// Observability: per-request span recording, flight-recorder sizing and
    /// anomaly triggers. Per-request instrumentation can be switched off
    /// ([`ObsConfig::disabled`]) for a benchmark baseline; service-level
    /// events (publishes, checkpoints, recovery) are always recorded.
    pub observability: ObsConfig,
}

impl ServiceConfig {
    /// A configuration with the given shard count and DTLP settings, defaults
    /// elsewhere.
    pub fn new(num_shards: usize, dtlp: DtlpConfig) -> Self {
        ServiceConfig {
            num_shards,
            cache_capacity: 4096,
            admission: AdmissionConfig::default(),
            engine: KspDgConfig::default(),
            dtlp,
            cache_survival: true,
            cache_history_depth: crate::cache::DEFAULT_HISTORY_DEPTH,
            work_stealing: true,
            observability: ObsConfig::default(),
        }
    }

    fn validate(&self) {
        assert!(self.num_shards >= 1, "a service needs at least one shard");
        assert!(self.cache_capacity >= 1, "cache capacity must be at least 1");
        self.admission.validate();
    }
}

/// Why the service could not answer a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control rejected the request: either the target shard's
    /// queue is at its configured depth, or the adaptive controller predicted
    /// the queueing delay would breach the SLO budget. Retry later.
    Overloaded {
        /// The queue depth observed at rejection time.
        depth: usize,
        /// Suggested backoff before retrying, in milliseconds; `0` when the
        /// service has no service-time signal yet to derive one from.
        retry_after_ms: u64,
    },
    /// The service is shutting down and dropped the request.
    ShuttingDown,
    /// A query endpoint does not exist in the current graph.
    InvalidQuery(GraphError),
    /// `k` must be at least 1.
    InvalidK,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { depth, retry_after_ms: 0 } => {
                write!(f, "shard queue full (depth {depth}); request rejected")
            }
            ServiceError::Overloaded { depth, retry_after_ms } => {
                write!(
                    f,
                    "admission rejected (queue depth {depth}); retry after {retry_after_ms} ms"
                )
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            ServiceError::InvalidK => write!(f, "k must be at least 1"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Why publishing an epoch failed.
///
/// A publish can be rejected by the data layer (an invalid batch — see
/// [`QueryService::apply_batch`]'s staging contract) or, for a persistent
/// service, by the storage layer (the batch could not be made durable). In
/// both cases nothing is published: readers keep the previous epoch.
#[derive(Debug)]
pub enum PublishError {
    /// The batch is invalid for the current graph/index (e.g. an out-of-range
    /// edge id).
    Graph(GraphError),
    /// The batch could not be appended to the durable delta log.
    Store(StoreError),
    /// The service is in read-only degraded mode: a delta-log append failed,
    /// so writes are refused while queries keep serving the last published
    /// epoch. A background probe retries the log with capped exponential
    /// backoff and lifts the degradation once an append can succeed again.
    Degraded(String),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Graph(e) => write!(f, "invalid update batch: {e}"),
            PublishError::Store(e) => write!(f, "batch could not be made durable: {e}"),
            PublishError::Degraded(reason) => {
                write!(f, "service degraded (read-only): {reason}")
            }
        }
    }
}

impl std::error::Error for PublishError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PublishError::Graph(e) => Some(e),
            PublishError::Store(e) => Some(e),
            PublishError::Degraded(_) => None,
        }
    }
}

impl From<GraphError> for PublishError {
    fn from(e: GraphError) -> Self {
        PublishError::Graph(e)
    }
}

impl From<StoreError> for PublishError {
    fn from(e: StoreError) -> Self {
        PublishError::Store(e)
    }
}

/// The answer to one request.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The k shortest paths, ascending by distance.
    pub paths: Vec<Path>,
    /// Engine statistics (zeroed for cache hits — no engine work was done).
    pub stats: QueryStats,
    /// The epoch the answer is exact for.
    pub epoch: u64,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// End-to-end latency: submission to completion, including queueing.
    pub latency: Duration,
}

struct Request {
    source: VertexId,
    target: VertexId,
    k: usize,
    submitted: Instant,
    /// Stage clock of this request; shares `submitted` as its origin so the
    /// per-stage durations telescope to the recorded end-to-end latency.
    span: RequestSpan,
    /// The caller's trace id (zero when untraced); stamped into any flight
    /// dump this request triggers so a remote client can resolve its own
    /// trace ids to server-side span chains.
    trace_id: u64,
    reply: mpsc::Sender<Result<QueryResponse, ServiceError>>,
}

/// Step code the recovery-completed flight event uses, extending the per-step
/// codes of [`ksp_store::RecoveryReport::steps`] (payload: recovery duration
/// in microseconds).
pub const RECOVERY_STEP_COMPLETED: u64 = 5;

/// The shared observability runtime of one service: the configuration plus
/// the flight recorder every instrumentation point records into.
#[derive(Debug)]
pub struct Observability {
    config: ObsConfig,
    flight: FlightRecorder,
}

impl Observability {
    fn new(config: ObsConfig) -> Self {
        Observability { config, flight: FlightRecorder::new(config.flight_capacity) }
    }

    /// The observability configuration the service was started with.
    pub fn config(&self) -> ObsConfig {
        self.config
    }

    /// The service's flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Records a flight event — a no-op when observability is disabled, so
    /// instrumentation points cost one branch on the disabled path.
    pub fn record(&self, kind: EventKind, a: u64, b: u64, c: u64) {
        if self.config.enabled {
            self.flight.record(kind, a, b, c);
        }
    }

    /// Records an anomaly cause and captures a flight dump; a no-op when
    /// observability is disabled.
    pub fn trigger(&self, kind: EventKind, a: u64, b: u64, c: u64, span: Option<SpanChain>) {
        self.trigger_traced(kind, a, b, c, span, 0);
    }

    /// [`Observability::trigger`] carrying the offending request's trace id,
    /// so the dump can be resolved back to the client that sent it.
    pub fn trigger_traced(
        &self,
        kind: EventKind,
        a: u64,
        b: u64,
        c: u64,
        span: Option<SpanChain>,
        trace_id: u64,
    ) {
        if self.config.enabled {
            self.flight.trigger_traced(kind, a, b, c, span, trace_id);
        }
    }
}

/// One shard's queue + result cache, shared with *every* worker: an idle
/// worker steals from any queue, and a thief inserts its answers into the
/// *home* shard's cache so repeats keep hitting where routing sends them.
struct ShardResources {
    queue: BoundedQueue<Request>,
    cache: Mutex<ResultCache>,
}

struct Shard {
    resources: Arc<ShardResources>,
    worker: Option<JoinHandle<()>>,
}

/// Masters owned by the updater path; workers never touch these. Held as
/// `Arc`s so committing a staged update and publishing the epoch share the
/// same allocation.
struct Masters {
    graph: Arc<DynamicGraph>,
    index: Arc<DtlpIndex>,
    /// Subgraphs dirtied by batches published since the last checkpoint job
    /// was handed to the checkpointer. The next job takes the set, so an
    /// incremental checkpoint covers exactly the epochs between two images.
    dirty_since_job: HashSet<SubgraphId>,
}

/// One background-checkpoint request: `Arc`'d snapshots of a just-published
/// epoch, encoded off the publish path, plus the subgraphs dirtied since the
/// previous job (the candidate payload of an incremental image).
struct CheckpointJob {
    epoch: u64,
    graph: Arc<DynamicGraph>,
    index: Arc<DtlpIndex>,
    dirty: HashSet<SubgraphId>,
    /// The publish span of the epoch that requested this checkpoint: it rides
    /// into the checkpointer so the checkpoint encode/commit stages land in
    /// the same telescoped chain as the synchronous write-path stages (the
    /// channel wait is absorbed into `checkpoint_encode`).
    span: PublishSpan,
}

/// Shared read-only-degraded state of a persistent service.
///
/// Entered when a delta-log append fails: the failed batch publishes nothing,
/// queries keep serving the last published epoch, and every further
/// [`QueryService::apply_batch`] fast-fails with [`PublishError::Degraded`]
/// until the background probe gets an append path working again.
#[derive(Debug)]
struct DegradedHealth {
    degraded: AtomicBool,
    /// Why the service degraded (the append error's rendering); empty while
    /// healthy.
    reason: Mutex<String>,
    /// When degradation was entered, for the recovery event's duration.
    entered_at: Mutex<Option<Instant>>,
    entered_total: AtomicU64,
    recovered_total: AtomicU64,
}

impl DegradedHealth {
    fn new() -> Self {
        DegradedHealth {
            degraded: AtomicBool::new(false),
            reason: Mutex::new(String::new()),
            entered_at: Mutex::new(None),
            entered_total: AtomicU64::new(0),
            recovered_total: AtomicU64::new(0),
        }
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    fn reason(&self) -> String {
        self.reason.lock().clone()
    }
}

/// The durable side of a persistent service.
struct Persistence {
    /// Shared with the background checkpointer; the publish path holds it
    /// only for the append, the checkpointer only for the commit.
    store: Arc<Mutex<Store>>,
    store_config: StoreConfig,
    /// The store directory, kept outside the lock so checkpoint images can
    /// be staged (written + fsynced) without blocking the publish path.
    dir: std::path::PathBuf,
    /// The store's I/O backend, captured at boot so checkpoint images are
    /// staged through the same (possibly fault-injected) backend the WAL
    /// writes through.
    io: Arc<dyn StorageIo>,
    /// Dropped first on shutdown so the checkpointer's `recv` ends.
    jobs: Option<mpsc::Sender<CheckpointJob>>,
    checkpointer: Option<JoinHandle<()>>,
    /// Wakes the degraded-mode probe immediately when degradation is entered
    /// (it otherwise blocks, costing nothing while healthy). Dropped on
    /// shutdown so the probe's `recv` ends.
    probe_wake: Option<mpsc::Sender<()>>,
    probe_stop: Arc<AtomicBool>,
    probe: Option<JoinHandle<()>>,
}

/// A concurrent KSP query service over a dynamic road network.
pub struct QueryService {
    config: ServiceConfig,
    shards: Vec<Shard>,
    epoch: Arc<EpochPointer>,
    metrics: Arc<ServiceMetrics>,
    obs: Arc<Observability>,
    admission: Arc<AdmissionController>,
    masters: Mutex<Masters>,
    persistence: Option<Persistence>,
    /// Read-only degraded mode (see [`PublishError::Degraded`]); always
    /// healthy for an in-memory service.
    degraded: Arc<DegradedHealth>,
    /// Replication endpoint (`ksp-repl`'s leader-side source), registered
    /// after construction via [`QueryService::set_replication_hook`]. Behind
    /// an `RwLock` because every request dispatch reads it and registration
    /// writes it exactly once.
    replication: parking_lot::RwLock<Option<Arc<dyn crate::rpc::ReplicationHook>>>,
}

impl QueryService {
    /// Builds the DTLP index for `graph`, publishes epoch 0 and starts the
    /// shard workers. Purely in-memory: a restart rebuilds from scratch and a
    /// crash loses applied batches — see [`QueryService::start_with_store`]
    /// for the durable variant.
    pub fn start(graph: DynamicGraph, config: ServiceConfig) -> Result<Self, GraphError> {
        config.validate();
        let index = Arc::new(DtlpIndex::build(&graph, config.dtlp)?);
        let graph = Arc::new(graph);
        Ok(Self::boot(graph, index, config, None))
    }

    /// Like [`QueryService::start`], but also initialises a durable store in
    /// `dir`: the freshly built index is checkpointed, every published batch
    /// is appended to the delta log before it becomes visible, and a
    /// background thread re-checkpoints every
    /// [`StoreConfig::checkpoint_interval`] epochs so the log stays bounded.
    ///
    /// Fails if `dir` already contains a store — recover it with
    /// [`QueryService::open`] instead of overwriting it.
    pub fn start_with_store(
        graph: DynamicGraph,
        config: ServiceConfig,
        dir: &FsPath,
        store_config: StoreConfig,
    ) -> Result<Self, PublishError> {
        Self::start_with_store_io(graph, config, dir, store_config, ksp_store::default_io())
    }

    /// [`QueryService::start_with_store`] with an explicit storage I/O
    /// backend — the fault-injection seam: a [`ksp_store::FaultyIo`] here
    /// drives every WAL append, fsync and checkpoint image the service
    /// writes through a deterministic fault plan.
    pub fn start_with_store_io(
        graph: DynamicGraph,
        config: ServiceConfig,
        dir: &FsPath,
        store_config: StoreConfig,
        io: Arc<dyn StorageIo>,
    ) -> Result<Self, PublishError> {
        config.validate();
        // Probe before the index build: an occupied directory must fail in
        // microseconds, not after minutes of DtlpIndex::build.
        if Store::exists(dir).map_err(PublishError::Store)? {
            return Err(PublishError::Store(StoreError::Corrupt {
                path: dir.to_path_buf(),
                detail: "directory already contains a store (recover it with QueryService::open)"
                    .to_string(),
            }));
        }
        let index = Arc::new(DtlpIndex::build(&graph, config.dtlp).map_err(PublishError::Graph)?);
        let graph = Arc::new(graph);
        let store = Store::create_with_io(dir, store_config, graph.version(), &graph, &index, io)
            .map_err(PublishError::Store)?;
        Ok(Self::boot(graph, index, config, Some(store)))
    }

    /// Starts a service from the store in `dir` without rebuilding the index:
    /// loads the newest valid checkpoint, replays the delta log (truncating a
    /// torn tail left by a crash), and serves from the recovered epoch. The
    /// recovered service continues logging and checkpointing into the same
    /// directory.
    ///
    /// `config.dtlp` is replaced by the configuration the recovered index was
    /// built with, so queries behave exactly as they did before the restart.
    pub fn open(
        dir: &FsPath,
        config: ServiceConfig,
        store_config: StoreConfig,
    ) -> Result<(Self, RecoveryReport), PublishError> {
        Self::open_with_io(dir, config, store_config, ksp_store::default_io())
    }

    /// [`QueryService::open`] with an explicit storage I/O backend (see
    /// [`QueryService::start_with_store_io`]).
    pub fn open_with_io(
        dir: &FsPath,
        mut config: ServiceConfig,
        store_config: StoreConfig,
        io: Arc<dyn StorageIo>,
    ) -> Result<(Self, RecoveryReport), PublishError> {
        let (store, recovered) =
            Store::recover_with_io(dir, store_config, io).map_err(PublishError::Store)?;
        config.dtlp = *recovered.index.config();
        config.validate();
        let report = recovered.report;
        let graph = Arc::new(recovered.graph);
        let index = Arc::new(recovered.index);
        // Epochs replayed from the log are durable but not covered by any
        // on-disk image: their dirty subgraphs must ride into the next
        // incremental image, or a post-restart chain would silently
        // under-cover them and a later recovery would lose their updates.
        let replayed_dirty: HashSet<SubgraphId> = recovered.replayed_dirty.into_iter().collect();
        let service = Self::boot_with_dirty(graph, index, config, Some(store), replayed_dirty);
        // Recovery is an anomaly trigger: replay the trajectory into the
        // flight recorder and dump, so the first post-restart scrape shows
        // what recovery did even if nothing else ever goes wrong.
        for (_, code, value) in report.steps() {
            service.obs.record(EventKind::RecoveryStep, code, value, 0);
        }
        service.obs.trigger(
            EventKind::RecoveryStep,
            RECOVERY_STEP_COMPLETED,
            report.duration.as_micros().min(u64::MAX as u128) as u64,
            0,
            None,
        );
        Ok((service, report))
    }

    /// Publishes the initial epoch, starts the shard workers and (when a
    /// store is given) the background checkpointer.
    fn boot(
        graph: Arc<DynamicGraph>,
        index: Arc<DtlpIndex>,
        config: ServiceConfig,
        store: Option<Store>,
    ) -> Self {
        Self::boot_with_dirty(graph, index, config, store, HashSet::new())
    }

    /// [`QueryService::boot`] with an initial not-yet-imaged dirty set (the
    /// subgraphs recovery replayed from the log past the newest image).
    fn boot_with_dirty(
        graph: Arc<DynamicGraph>,
        index: Arc<DtlpIndex>,
        mut config: ServiceConfig,
        store: Option<Store>,
        dirty_since_job: HashSet<SubgraphId>,
    ) -> Self {
        // Cache survival consumes the engine's trace certificate, so the two
        // settings travel together: the survival sweep is pure overhead
        // without the cache (and the cache keeps nothing without the sweep).
        config.engine.collect_trace = config.cache_survival;
        let initial = EpochSnapshot::new(graph.version(), graph.clone(), index.clone());
        let epoch = Arc::new(EpochPointer::new(initial));
        let metrics = Arc::new(ServiceMetrics::new(config.num_shards));
        let obs = Arc::new(Observability::new(config.observability));
        // The adaptive controller's budget is the SLO itself: a request
        // predicted to finish within `slo_p99` is admitted, one predicted to
        // breach it is rejected up front. A zero SLO (or `adaptive: false`)
        // leaves only the static queue cap — the pre-adaptive baseline.
        let admission = Arc::new(AdmissionController::new(if config.admission.adaptive {
            config.observability.slo_p99
        } else {
            Duration::ZERO
        }));

        // Every worker sees every shard's queue and cache: that is what makes
        // stealing (and home-cache inserts for stolen work) possible.
        let resources: Arc<Vec<Arc<ShardResources>>> = Arc::new(
            (0..config.num_shards)
                .map(|_| {
                    Arc::new(ShardResources {
                        queue: BoundedQueue::new(config.admission.max_queue_depth),
                        cache: Mutex::new(ResultCache::with_history_depth(
                            config.cache_capacity,
                            config.cache_history_depth,
                        )),
                    })
                })
                .collect(),
        );
        let mut shards = Vec::with_capacity(config.num_shards);
        for shard_id in 0..config.num_shards {
            let worker = std::thread::Builder::new()
                .name(format!("ksp-serve-shard-{shard_id}"))
                .spawn({
                    let resources = resources.clone();
                    let epoch = epoch.clone();
                    let metrics = metrics.clone();
                    let obs = obs.clone();
                    let admission = admission.clone();
                    let engine_config = config.engine;
                    let max_batch = config.admission.max_batch;
                    let work_stealing = config.work_stealing;
                    move || {
                        let ctx = WorkerContext {
                            shards: &resources,
                            epoch: &epoch,
                            metrics: &metrics,
                            obs: &obs,
                            admission: &admission,
                            engine_config,
                        };
                        shard_main(shard_id, &ctx, max_batch, work_stealing)
                    }
                })
                .expect("failed to spawn shard worker");
            shards.push(Shard { resources: resources[shard_id].clone(), worker: Some(worker) });
        }

        let degraded = Arc::new(DegradedHealth::new());
        let persistence = store.map(|store| {
            let store_config = *store.config();
            let dir = store.dir().to_path_buf();
            let io = store.io_handle();
            let store = Arc::new(Mutex::new(store));
            let (jobs, receiver) = mpsc::channel::<CheckpointJob>();
            let checkpointer = std::thread::Builder::new()
                .name("ksp-serve-checkpointer".to_string())
                .spawn({
                    let store = store.clone();
                    let dir = dir.clone();
                    let io = Arc::clone(&io);
                    let obs = obs.clone();
                    let metrics = metrics.clone();
                    move || checkpointer_main(&store, &dir, &io, &receiver, &obs, &metrics)
                })
                .expect("failed to spawn checkpointer");
            let (probe_wake, probe_recv) = mpsc::channel::<()>();
            let probe_stop = Arc::new(AtomicBool::new(false));
            let probe = std::thread::Builder::new()
                .name("ksp-serve-degraded-probe".to_string())
                .spawn({
                    let store = store.clone();
                    let health = degraded.clone();
                    let obs = obs.clone();
                    let epoch = epoch.clone();
                    let stop = probe_stop.clone();
                    move || degraded_probe_main(&store, &health, &obs, &epoch, &stop, &probe_recv)
                })
                .expect("failed to spawn degraded probe");
            Persistence {
                store,
                store_config,
                dir,
                io,
                jobs: Some(jobs),
                checkpointer: Some(checkpointer),
                probe_wake: Some(probe_wake),
                probe_stop,
                probe: Some(probe),
            }
        });

        QueryService {
            config,
            shards,
            epoch,
            metrics,
            obs,
            admission,
            masters: Mutex::new(Masters { graph, index, dirty_since_job }),
            persistence,
            degraded,
            replication: parking_lot::RwLock::new(None),
        }
    }

    /// Registers the replication endpoint `ShipSegment` / `SnapshotChunk` /
    /// `ReplAck` requests are delegated to. Both transports route through
    /// [`QueryService::handle`], so one registration covers the
    /// thread-per-connection server and the event loop alike.
    pub fn set_replication_hook(&self, hook: Arc<dyn crate::rpc::ReplicationHook>) {
        *self.replication.write() = Some(hook);
    }

    /// The registered replication endpoint, if any.
    pub(crate) fn replication_hook(&self) -> Option<Arc<dyn crate::rpc::ReplicationHook>> {
        self.replication.read().clone()
    }

    /// The shared durable-store handle, when this service was started with a
    /// store. `ksp-repl`'s leader-side source reads the delta log and
    /// checkpoint images through this handle — the store's directory lock
    /// admits one opener, so replication must share the service's.
    pub fn store_handle(&self) -> Option<Arc<Mutex<Store>>> {
        self.persistence.as_ref().map(|p| p.store.clone())
    }

    /// The durable store's directory, when this service has one.
    pub fn store_dir(&self) -> Option<&FsPath> {
        self.persistence.as_ref().map(|p| p.dir.as_path())
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The current epoch number.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load().epoch()
    }

    /// The current epoch snapshot (kept alive for as long as the caller holds it).
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.epoch.load()
    }

    /// A point-in-time metrics summary, including per-shard queue gauges.
    pub fn metrics(&self) -> MetricsReport {
        let mut report = self.metrics.report();
        report.queue_gauges = self.queue_gauges();
        report
    }

    /// Current depth and all-time high-water mark of every shard queue — the
    /// backlog signals adaptive admission control will key off. (This is the
    /// single queue-observability accessor; the old `queue_depths()` returned
    /// a strict subset of it and was folded in.)
    pub fn queue_gauges(&self) -> Vec<ShardQueueGauge> {
        let max_depth = self.config.admission.max_queue_depth;
        self.shards
            .iter()
            .map(|s| ShardQueueGauge {
                depth: s.resources.queue.depth(),
                high_water: s.resources.queue.high_water(),
                max_depth,
            })
            .collect()
    }

    /// Submits a query and blocks until its shard answers.
    ///
    /// Fails fast with [`ServiceError::Overloaded`] when the target shard's
    /// queue is at capacity — the backpressure signal of admission control.
    pub fn query(
        &self,
        source: VertexId,
        target: VertexId,
        k: usize,
    ) -> Result<QueryResponse, ServiceError> {
        self.query_traced(source, target, k, 0)
    }

    /// [`QueryService::query`] carrying the caller's trace id (zero for
    /// untraced callers). The id is stamped into any flight dump the request
    /// triggers — an SLO breach dump taken for this request can be resolved
    /// back to the client-side trace that caused it.
    pub fn query_traced(
        &self,
        source: VertexId,
        target: VertexId,
        k: usize,
        trace_id: u64,
    ) -> Result<QueryResponse, ServiceError> {
        // The span clock starts before validation so the admission stage
        // covers the full submit path (validate + route + enqueue attempt);
        // `submitted` shares the origin, so end-to-end latency and the stage
        // chain telescope to the same total.
        let submitted = Instant::now();
        let mut span = RequestSpan::begin_at(submitted, self.obs.config.enabled);
        if k == 0 {
            return Err(ServiceError::InvalidK);
        }
        // Validate endpoints against the current structure (the vertex set is
        // immutable across epochs, only weights change).
        let snapshot = self.epoch.load();
        snapshot.graph().check_vertex(source).map_err(ServiceError::InvalidQuery)?;
        snapshot.graph().check_vertex(target).map_err(ServiceError::InvalidQuery)?;
        let epoch_now = snapshot.epoch();
        drop(snapshot);

        use std::sync::atomic::Ordering::Relaxed;
        let shard_id = route_shard(source, target, k, self.shards.len());
        let shard = &self.shards[shard_id];
        // Adaptive admission: predict this request's cost class with a
        // trace-checked, non-bumping peek at the home shard's cache (a
        // current-epoch complete entry answers in microseconds; anything else
        // pays an engine run), then ask the controller whether the predicted
        // latency — live depth × blended service-time EWMA + own class cost —
        // fits the SLO budget. Rejecting *here* keeps overload out of the
        // queue entirely, so admitted requests keep their latency.
        let depth_now = shard.resources.queue.depth();
        let predicted = {
            let key = CacheKey { source, target, k };
            if shard.resources.cache.lock().peek_fresh(&key, epoch_now) {
                CostClass::CacheHit
            } else {
                CostClass::EngineRun
            }
        };
        if let AdmissionVerdict::Reject(r) = self.admission.assess(depth_now, predicted) {
            self.metrics.rejected.fetch_add(1, Relaxed);
            self.metrics.admission_rejected_predicted.fetch_add(1, Relaxed);
            self.obs.record(
                EventKind::Rejection,
                shard_id as u64,
                depth_now as u64,
                r.retry_after_ms,
            );
            let micros = |d: Duration| d.as_micros().min(u64::MAX as u128) as u64;
            if r.entered_breach {
                // One dump per breach episode, not per rejected request: the
                // ring around the *first* rejection is the diagnostic.
                self.obs.trigger_traced(
                    EventKind::AdmissionBreach,
                    shard_id as u64,
                    micros(r.estimated_wait),
                    micros(r.budget),
                    None,
                    trace_id,
                );
            }
            return Err(ServiceError::Overloaded {
                depth: depth_now,
                retry_after_ms: r.retry_after_ms,
            });
        }
        let (reply, receiver) = mpsc::channel();
        span.mark_enqueued();
        let request = Request { source, target, k, submitted, span, trace_id, reply };
        if shard.resources.queue.submit(request).is_err() {
            self.metrics.rejected.fetch_add(1, Relaxed);
            self.metrics.admission_rejected_queue_full.fetch_add(1, Relaxed);
            let depth = self.config.admission.max_queue_depth;
            let retry_after_ms = self.admission.queue_full_hint_ms(depth);
            self.obs.record(EventKind::Rejection, shard_id as u64, depth as u64, retry_after_ms);
            return Err(ServiceError::Overloaded { depth, retry_after_ms });
        }
        self.metrics.admission_accepted.fetch_add(1, Relaxed);
        receiver.recv().map_err(|_| ServiceError::ShuttingDown)?
    }

    /// Applies one weight-update batch and publishes the next epoch.
    ///
    /// Updates are serialised through the master copies; queries in flight keep
    /// reading their already-loaded epochs and are never blocked by this call
    /// (beyond the final pointer swap). Returns the epoch id the batch
    /// produced, so callers can correlate answers (`QueryResponse::epoch`) and
    /// log records with the batch that caused them.
    ///
    /// The update is staged on copy-on-write forks and committed only when
    /// both the graph and the index accepted the whole batch: a failing batch
    /// (e.g. an out-of-range edge id) leaves the masters — and therefore every
    /// future epoch — exactly as they were. Staging is proportional to the
    /// *batch*, not the index: the graph fork shares its topology allocation
    /// with the previous epoch, and the index fork deep-copies only the
    /// subgraph indexes the batch routes updates into (everything else stays
    /// pointer-shared across epochs). For a persistent service the batch is
    /// additionally appended to the delta log (fsync-on-commit) *before* the
    /// epoch becomes visible: an epoch a reader can observe is always an
    /// epoch recovery can reproduce.
    pub fn apply_batch(&self, batch: &UpdateBatch) -> Result<u64, PublishError> {
        // Fast-fail while degraded: the log is known-broken, so staging a
        // fork just to throw it away would waste the write path's budget.
        if self.degraded.is_degraded() {
            return Err(PublishError::Degraded(self.degraded.reason()));
        }
        let publish_started = Instant::now();
        // The publish span shares `publish_started` as its origin, so the
        // per-stage durations telescope to exactly the end-to-end publish
        // latency recorded into `metrics.publish_latency`.
        let mut span = PublishSpan::begin_at(publish_started, self.obs.config.enabled);
        let mut masters = self.masters.lock();
        let prev_epoch = masters.graph.version();
        let next_graph = Arc::new(masters.graph.with_batch(batch)?);
        let mut staged_index = (*masters.index).clone();
        let maintenance = staged_index.apply_batch(batch)?;
        let dirty_set: SubgraphSet = maintenance.dirty_subgraphs.iter().copied().collect();
        let next_index = Arc::new(staged_index);
        let epoch = next_graph.version();
        span.mark_staged();
        // Durability before visibility: a batch that cannot be logged
        // publishes nothing.
        let mut append_timings = AppendTimings::default();
        if let Some(p) = &self.persistence {
            match p.store.lock().log_batch(epoch, batch) {
                Ok(timings) => append_timings = timings,
                Err(e) => {
                    // The append failed, so this epoch never becomes visible;
                    // flip into read-only degraded mode and hand the failed
                    // batch's caller the typed error. The staged forks are
                    // simply dropped — the masters are untouched.
                    drop(masters);
                    return Err(self.enter_degraded(epoch, &e, p));
                }
            }
        }
        span.mark_logged(append_timings.fsync);
        masters.dirty_since_job.extend(maintenance.dirty_subgraphs);
        // The published snapshot and the masters share one (graph, index)
        // `Arc` pair; the only extra handles taken here are for a checkpoint
        // job, when this epoch needs one.
        let checkpoint_job = self.persistence.as_ref().and_then(|p| {
            p.store_config.is_checkpoint_epoch(epoch).then(|| CheckpointJob {
                epoch,
                graph: Arc::clone(&next_graph),
                index: Arc::clone(&next_index),
                dirty: std::mem::take(&mut masters.dirty_since_job),
                span: PublishSpan::disabled(),
            })
        });
        // Publish before releasing the masters lock so epochs appear in order.
        self.epoch.publish(EpochSnapshot::new(
            epoch,
            Arc::clone(&next_graph),
            Arc::clone(&next_index),
        ));
        masters.graph = next_graph;
        masters.index = next_index;
        span.mark_swapped();
        // Selective invalidation: drop only the entries whose trace the batch
        // dirtied; re-stamp the rest to the new epoch. Running under the
        // masters lock keeps publishes (and therefore retention passes)
        // strictly ordered, which the one-epoch-lag rule of
        // `retain_for_publish` relies on.
        let mut retained = 0u64;
        let mut evicted = 0u64;
        let mut ring_retained = 0u64;
        let mut weighted_evicted = 0u64;
        for shard in &self.shards {
            if self.config.cache_survival {
                let outcome =
                    shard.resources.cache.lock().retain_for_publish(prev_epoch, epoch, &dirty_set);
                retained += outcome.retained as u64;
                evicted += outcome.evicted as u64;
                ring_retained += outcome.ring_retained as u64;
                weighted_evicted += outcome.weighted_evicted as u64;
            } else {
                let mut cache = shard.resources.cache.lock();
                evicted += cache.len() as u64;
                cache.clear();
            }
        }
        span.mark_retained();
        drop(masters);
        use std::sync::atomic::Ordering::Relaxed;
        self.metrics.cache_retained.fetch_add(retained, Relaxed);
        self.metrics.cache_evicted.fetch_add(evicted, Relaxed);
        self.metrics.cache_ring_retained.fetch_add(ring_retained, Relaxed);
        self.metrics.cache_weighted_evictions.fetch_add(weighted_evicted, Relaxed);
        self.metrics.epochs_published.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.metrics.note_publish();
        let publish_time = publish_started.elapsed();
        let publish_micros = publish_time.as_micros().min(u64::MAX as u128) as u64;
        self.obs.record(EventKind::EpochPublished, epoch, dirty_set.len() as u64, publish_micros);
        self.obs.record(EventKind::CacheRetention, epoch, retained, evicted);
        let stall = self.obs.config.publish_stall;
        if !stall.is_zero() && publish_time > stall {
            self.obs.trigger(EventKind::PublishStall, epoch, publish_micros, 0, None);
        }
        let micros = |d: Duration| d.as_micros().min(u64::MAX as u128) as u64;
        let wal_bound = self.obs.config.wal_append_stall;
        if !wal_bound.is_zero() && append_timings.write > wal_bound {
            self.obs.trigger(
                EventKind::WalAppendStall,
                epoch,
                micros(append_timings.write),
                micros(wal_bound),
                None,
            );
        }
        let fsync_bound = self.obs.config.fsync_stall;
        if !fsync_bound.is_zero() && append_timings.fsync > fsync_bound {
            self.obs.trigger(
                EventKind::FsyncStall,
                epoch,
                micros(append_timings.fsync),
                micros(fsync_bound),
                None,
            );
        }
        match checkpoint_job {
            Some(mut job) => {
                // The span rides into the checkpointer, which finishes it
                // after the commit; from here on the channel wait counts
                // toward the checkpoint_encode stage.
                job.span = span;
                // A full or closed channel only delays the checkpoint; the
                // log still holds every batch, and the dirty set rides along
                // with the job so nothing is lost if it is coalesced with a
                // later one.
                match &self.persistence.as_ref().expect("job implies store").jobs {
                    Some(jobs) => {
                        if let Err(mpsc::SendError(job)) = jobs.send(job) {
                            finish_publish_span(&self.metrics, &job.span);
                        }
                    }
                    None => finish_publish_span(&self.metrics, &job.span),
                }
            }
            // No checkpoint this epoch: the write path ends here, with the
            // checkpoint stages telescoping to (near-)zero width.
            None => finish_publish_span(&self.metrics, &span),
        }
        Ok(epoch)
    }

    /// Flips the service into read-only degraded mode after a failed append
    /// and returns the error the failed `apply_batch` call reports. Idempotent
    /// under races: only the first flip records the entry event and wakes the
    /// probe.
    fn enter_degraded(&self, epoch: u64, cause: &StoreError, p: &Persistence) -> PublishError {
        let reason = format!("delta-log append failed at epoch {epoch}: {cause}");
        if !self.degraded.degraded.swap(true, Ordering::AcqRel) {
            *self.degraded.reason.lock() = reason.clone();
            *self.degraded.entered_at.lock() = Some(Instant::now());
            self.degraded.entered_total.fetch_add(1, Ordering::Relaxed);
            // Entering degradation is an anomaly: capture the flight ring
            // around the failed append, then wake the probe so recovery
            // attempts start immediately.
            self.obs.trigger(EventKind::DegradedEntered, epoch, 0, 0, None);
            eprintln!("ksp-serve: entering read-only degraded mode: {reason}");
            if let Some(wake) = &p.probe_wake {
                let _ = wake.send(());
            }
        }
        PublishError::Degraded(reason)
    }

    /// Whether the service is in read-only degraded mode (see
    /// [`PublishError::Degraded`]). Queries are unaffected; writes fail fast
    /// until the background probe lifts the degradation.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_degraded()
    }

    /// Why the service is degraded; `None` while healthy.
    pub fn degraded_reason(&self) -> Option<String> {
        if self.degraded.is_degraded() {
            Some(self.degraded.reason())
        } else {
            None
        }
    }

    /// Whether this service persists its epochs to a store.
    pub fn is_persistent(&self) -> bool {
        self.persistence.is_some()
    }

    /// Synchronously checkpoints the current epoch into the store. Returns
    /// `Ok(None)` for an in-memory service, `Ok(Some(epoch))` after a
    /// successful checkpoint. Useful at controlled shutdown so the next
    /// [`QueryService::open`] replays an empty log.
    pub fn checkpoint_now(&self) -> Result<Option<u64>, PublishError> {
        let Some(p) = &self.persistence else { return Ok(None) };
        let (epoch, graph, index) = {
            let masters = self.masters.lock();
            (masters.graph.version(), masters.graph.clone(), masters.index.clone())
        };
        // Encode and stage (write + fsync) without the store lock — the slow
        // halves must not stall concurrent publishes — then commit under it.
        let checkpoint_started = Instant::now();
        let encoded = Store::encode_checkpoint(epoch, &graph, &index);
        let staged = Store::stage_checkpoint_with_io(&p.dir, &encoded, &p.io)?;
        p.store.lock().commit_staged_checkpoint(staged)?;
        self.obs.record(
            EventKind::CheckpointCommitted,
            epoch,
            1,
            checkpoint_started.elapsed().as_micros().min(u64::MAX as u128) as u64,
        );
        Ok(Some(epoch))
    }

    /// The observability runtime: configuration and flight recorder.
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// The adaptive admission controller (its estimator is live even when the
    /// adaptive decision is disabled, so static-cap rejections can still
    /// carry a backoff hint).
    pub fn admission_controller(&self) -> &AdmissionController {
        &self.admission
    }

    /// Predicts a query's [`CostClass`] without queueing it: a trace-checked,
    /// non-bumping peek at the home shard's cache for the current epoch —
    /// the same peek the internal admission path makes. This is what lets an
    /// external admission point (the event-loop server) make the same
    /// cost-aware decision the service itself would.
    pub fn predict_cost(&self, source: VertexId, target: VertexId, k: usize) -> CostClass {
        let epoch_now = self.current_epoch();
        let shard_id = route_shard(source, target, k, self.shards.len());
        let key = CacheKey { source, target, k };
        if self.shards[shard_id].resources.cache.lock().peek_fresh(&key, epoch_now) {
            CostClass::CacheHit
        } else {
            CostClass::EngineRun
        }
    }

    /// A full observability snapshot: per-stage latency histograms, the
    /// end-to-end histogram, every counter and gauge the service exports, and
    /// the latest flight-recorder dump. This is the payload behind the wire
    /// `ObsSnapshot` request; render it with [`ksp_obs::render_prometheus`]
    /// for scrapers that speak the Prometheus text format.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let report = self.metrics();
        let flight = &self.obs.flight;
        let unlabelled = |name: &str, value: u64| Counter {
            name: name.to_string(),
            labels: String::new(),
            value,
        };
        let mut counters = vec![
            unlabelled("ksp_requests_completed_total", report.completed),
            unlabelled("ksp_requests_rejected_total", report.rejected),
            unlabelled("ksp_cache_hits_total", report.cache_hits),
            unlabelled("ksp_cache_misses_total", report.cache_misses),
            unlabelled("ksp_epochs_published_total", report.epochs_published),
            unlabelled("ksp_cache_retained_total", report.cache_retained),
            unlabelled("ksp_cache_evicted_total", report.cache_evicted),
            unlabelled("ksp_cache_ring_retained_total", report.cache_ring_retained),
            unlabelled("ksp_cache_weighted_evictions_total", report.cache_weighted_evictions),
            unlabelled("ksp_flight_events_total", flight.events_recorded()),
            unlabelled("ksp_flight_dumps_total", flight.dumps_taken()),
            unlabelled("ksp_flight_overwritten_total", flight.events_overwritten()),
            unlabelled("ksp_admission_accepted_total", report.admission_accepted),
            unlabelled(
                "ksp_degraded_entered_total",
                self.degraded.entered_total.load(Ordering::Relaxed),
            ),
            unlabelled(
                "ksp_degraded_recovered_total",
                self.degraded.recovered_total.load(Ordering::Relaxed),
            ),
        ];
        for (reason, value) in [
            ("queue_full", report.admission_rejected_queue_full),
            ("slo_budget", report.admission_rejected_predicted),
        ] {
            counters.push(Counter {
                name: "ksp_admission_rejected_total".to_string(),
                labels: format!("reason=\"{reason}\""),
                value,
            });
        }
        for (i, &steals) in report.per_shard_steals.iter().enumerate() {
            counters.push(Counter {
                name: "ksp_steals_total".to_string(),
                labels: format!("shard=\"{i}\""),
                value: steals,
            });
        }
        let mut gauges = vec![
            Gauge {
                name: "ksp_epoch".to_string(),
                labels: String::new(),
                value: self.current_epoch() as f64,
            },
            Gauge {
                name: "ksp_epoch_age_seconds".to_string(),
                labels: String::new(),
                value: report.epoch_age.as_secs_f64(),
            },
            // Always exported (0 while healthy) so a scraper can alert on the
            // transition rather than on the family appearing.
            Gauge {
                name: "ksp_degraded".to_string(),
                labels: String::new(),
                value: u64::from(self.degraded.is_degraded()) as f64,
            },
        ];
        // One family at a time, so the text renderer emits a single `# TYPE`
        // comment per family.
        for (i, q) in report.queue_gauges.iter().enumerate() {
            gauges.push(Gauge {
                name: "ksp_queue_depth".to_string(),
                labels: format!("shard=\"{i}\""),
                value: q.depth as f64,
            });
        }
        for (i, q) in report.queue_gauges.iter().enumerate() {
            gauges.push(Gauge {
                name: "ksp_queue_high_water".to_string(),
                labels: format!("shard=\"{i}\""),
                value: q.high_water as f64,
            });
        }
        // The admission controller's live view: per-class service-time EWMAs
        // (zero until the class has a sample) — the multiplier side of the
        // queueing-delay prediction, exported so an operator can sanity-check
        // a rejection rate against what the controller believed.
        for (class, nanos) in [
            ("cache_hit", self.admission.estimator().class_nanos(CostClass::CacheHit)),
            ("engine_run", self.admission.estimator().class_nanos(CostClass::EngineRun)),
        ] {
            gauges.push(Gauge {
                name: "ksp_admission_est_service_micros".to_string(),
                labels: format!("class=\"{class}\""),
                value: nanos as f64 / 1_000.0,
            });
        }
        // Replication (`ksp_repl_*`) families, when a hook is registered —
        // the shipping counters and per-follower lag gauges ride the same
        // snapshot as every native family.
        if let Some(hook) = self.replication_hook() {
            let (repl_counters, repl_gauges) = hook.metric_families();
            counters.extend(repl_counters);
            gauges.extend(repl_gauges);
        }
        ObsSnapshot {
            stages: self
                .metrics
                .stages
                .snapshot()
                .into_iter()
                .map(|(stage, histogram)| StageSnapshot { stage, histogram })
                .collect(),
            end_to_end: self.metrics.latency.snapshot(),
            publish_stages: self
                .metrics
                .publish_stages
                .snapshot()
                .into_iter()
                .map(|(stage, histogram)| PublishStageSnapshot { stage, histogram })
                .collect(),
            publish_end_to_end: self.metrics.publish_latency.snapshot(),
            counters,
            gauges,
            dump: flight.last_dump(),
        }
    }

    /// [`QueryService::obs_snapshot`] rendered in the Prometheus text
    /// exposition format.
    pub fn render_exposition(&self) -> String {
        ksp_obs::render_prometheus(&self.obs_snapshot())
    }

    /// Epoch of the newest committed checkpoint, for a persistent service.
    pub fn last_checkpoint_epoch(&self) -> Option<u64> {
        self.persistence.as_ref().map(|p| p.store.lock().last_checkpoint_epoch())
    }
}

/// Drains checkpoint jobs, always encoding only the newest pending epoch
/// (checkpoints are cumulative — an older queued job is superseded, but its
/// dirty set is folded in so an incremental image still covers every epoch
/// since the previous image). The two slow halves — encoding the image and
/// writing/fsyncing it to a temp file — run without any lock; the store is
/// held only for the rename-and-prune commit, so epoch publishes never wait
/// on checkpoint I/O.
///
/// Whether the image is a full checkpoint or an incremental one follows the
/// store's rebase policy ([`ksp_store::StoreConfig::full_rebase_interval`]):
/// runs of incremental images keep the interval cost proportional to the
/// subgraphs dirtied since the last image, and the periodic full rebase
/// bounds the chain recovery must walk. `pending_dirty` accumulates across
/// failed or rejected commits, so a retried incremental image can only
/// over-cover, never miss a dirtied subgraph.
fn checkpointer_main(
    store: &Mutex<Store>,
    store_dir: &std::path::Path,
    io: &Arc<dyn StorageIo>,
    jobs: &mpsc::Receiver<CheckpointJob>,
    obs: &Observability,
    metrics: &ServiceMetrics,
) {
    /// First retry delay after a failed stage/commit.
    const RETRY_BASE: Duration = Duration::from_millis(10);
    /// Retry-delay ceiling: a persistently broken checkpoint path is probed a
    /// couple of times per second, cheap next to the image it would write.
    const RETRY_CAP: Duration = Duration::from_secs(2);

    let mut pending_dirty: HashSet<SubgraphId> = HashSet::new();
    // A job whose image failed to stage or commit is carried into the next
    // iteration and retried with capped exponential backoff: a transient
    // storage fault only delays the checkpoint (the log still holds every
    // batch), and a newer job arriving during the backoff supersedes the
    // failed one.
    let mut carry: Option<CheckpointJob> = None;
    let mut backoff = RETRY_BASE;
    let mut quarantine_seq = 0u64;
    // Jobs are sent outside the masters lock, so queue order is not epoch
    // order: pick the max epoch, not the last queued. A superseded job's
    // publish span is finished here — its epoch was published, so its chain
    // still records (with the checkpoint stages covering only the wait before
    // coalescing).
    let merge = |mut best: CheckpointJob, mut next: CheckpointJob| {
        if next.epoch > best.epoch {
            next.dirty.extend(best.dirty.drain());
            finish_publish_span(metrics, &best.span);
            next
        } else {
            best.dirty.extend(next.dirty.drain());
            finish_publish_span(metrics, &next.span);
            best
        }
    };
    loop {
        let first = match carry.take() {
            // Retrying: wait out the backoff, absorbing a newer job if one
            // arrives during it. Channel shutdown abandons the retry — the
            // log covers the un-imaged epochs.
            Some(prev) => match jobs.recv_timeout(backoff) {
                Ok(next) => merge(prev, next),
                Err(mpsc::RecvTimeoutError::Timeout) => prev,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            },
            None => match jobs.recv() {
                Ok(first) => first,
                Err(_) => break,
            },
        };
        let mut job = jobs.try_iter().fold(first, &merge);
        pending_dirty.extend(job.dirty.drain());

        let (base_epoch, must_be_full) = {
            let store = store.lock();
            (store.last_image_epoch(), store.next_image_must_be_full())
        };
        let full = must_be_full || base_epoch >= job.epoch;
        let checkpoint_started = Instant::now();
        let encoded = if full {
            Store::encode_checkpoint(job.epoch, &job.graph, &job.index)
        } else {
            let mut dirty: Vec<SubgraphId> = pending_dirty.iter().copied().collect();
            dirty.sort_unstable();
            Store::encode_partial_checkpoint(job.epoch, base_epoch, &job.graph, &job.index, &dirty)
        };
        job.span.mark_encoded();
        let result = Store::stage_checkpoint_with_io(store_dir, &encoded, io)
            .and_then(|staged| store.lock().commit_staged_checkpoint(staged));
        // The epoch was published either way, so the publish span always
        // finishes: exactly one publish chain records per published epoch,
        // which is what lets the per-stage totals telescope to the end-to-end
        // publish histogram. (A retry of the same epoch carries a disabled
        // span, so finishing here stays once-per-epoch.)
        finish_publish_span(metrics, &job.span);
        match result {
            // Any committed image (full or partial) covers everything dirtied
            // up to its epoch.
            Ok(()) => {
                pending_dirty.clear();
                backoff = RETRY_BASE;
                obs.record(
                    EventKind::CheckpointCommitted,
                    job.epoch,
                    full as u64,
                    checkpoint_started.elapsed().as_micros().min(u64::MAX as u128) as u64,
                );
            }
            Err(e) => {
                // The log still holds every batch, so a failed checkpoint only
                // costs recovery time. Quarantine the image bytes for
                // post-mortem (best-effort), keep the dirty set, and retry
                // after a backoff without stalling publishes.
                obs.record(EventKind::CheckpointFailed, job.epoch, full as u64, 0);
                eprintln!("ksp-serve: background checkpoint at epoch {} failed: {e}", job.epoch);
                quarantine_seq += 1;
                if let Err(qe) = quarantine_image(store_dir, &encoded, quarantine_seq) {
                    eprintln!(
                        "ksp-serve: could not quarantine failed image for epoch {}: {qe}",
                        job.epoch
                    );
                }
                job.span = PublishSpan::disabled();
                carry = Some(job);
                backoff = (backoff * 2).min(RETRY_CAP);
            }
        }
    }
}

/// Preserves the bytes of a checkpoint image whose staging or commit failed
/// under `<store>/quarantine/image-<epoch>-<seq>.bad`, for post-mortem
/// inspection. Best-effort: a quarantine failure loses only the artefact,
/// never the retry. The subdirectory is invisible to recovery — the store's
/// scanners match file-name prefixes in the store root only.
fn quarantine_image(
    store_dir: &std::path::Path,
    encoded: &ksp_store::EncodedCheckpoint,
    seq: u64,
) -> std::io::Result<()> {
    let dir = store_dir.join("quarantine");
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join(format!("image-{:020}-{seq}.bad", encoded.epoch)), encoded.bytes())
}

/// The degraded-mode probe: blocks (costing nothing) until a failed append
/// wakes it, then retries the delta log with capped exponential backoff and
/// lifts the degradation once an append path works again.
///
/// The probe's unit of work is [`Store::probe_log`]: rewind any impaired
/// active segment, then exercise a sync through the store's I/O backend —
/// the same backend a real append would use, so a still-broken log keeps the
/// probe failing and the service degraded.
fn degraded_probe_main(
    store: &Mutex<Store>,
    health: &DegradedHealth,
    obs: &Observability,
    epoch: &EpochPointer,
    stop: &AtomicBool,
    wake: &mpsc::Receiver<()>,
) {
    /// First retry delay after entering degradation.
    const PROBE_BASE: Duration = Duration::from_millis(5);
    /// Retry-delay ceiling while degraded.
    const PROBE_CAP: Duration = Duration::from_millis(500);
    /// Sleep slice, so shutdown is observed promptly mid-backoff.
    const SLICE: Duration = Duration::from_millis(2);

    loop {
        // Healthy: block until a degradation entry wakes us (or shutdown
        // drops the sender).
        if !health.is_degraded() {
            match wake.recv() {
                Ok(()) => {}
                Err(_) => return,
            }
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        let mut backoff = PROBE_BASE;
        let mut attempts = 0u64;
        while health.is_degraded() {
            attempts += 1;
            let probed = store.lock().probe_log();
            match probed {
                Ok(()) => {
                    let degraded_for = health
                        .entered_at
                        .lock()
                        .take()
                        .map(|t| t.elapsed())
                        .unwrap_or(Duration::ZERO);
                    health.reason.lock().clear();
                    health.recovered_total.fetch_add(1, Ordering::Relaxed);
                    // Release-store after the repair so an apply_batch that
                    // sees "healthy" sees the repaired log.
                    health.degraded.store(false, Ordering::Release);
                    obs.trigger(
                        EventKind::DegradedRecovered,
                        epoch.load().epoch(),
                        attempts,
                        degraded_for.as_micros().min(u64::MAX as u128) as u64,
                        None,
                    );
                    eprintln!(
                        "ksp-serve: degraded mode recovered after {attempts} probe attempt(s)"
                    );
                }
                Err(_) => {
                    // Still broken: sleep out the backoff in slices so a
                    // shutdown mid-degradation is honoured promptly.
                    let mut remaining = backoff;
                    while !remaining.is_zero() {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        let slice = remaining.min(SLICE);
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                    backoff = (backoff * 2).min(PROBE_CAP);
                }
            }
            if stop.load(Ordering::Acquire) {
                return;
            }
        }
    }
}

/// Finishes one epoch's publish span and records its telescoped chain into
/// the write-path histograms. Called exactly once per published epoch —
/// synchronously for non-checkpoint epochs, from the checkpointer (after the
/// image commit, or at coalesce time for superseded jobs) otherwise.
fn finish_publish_span(metrics: &ServiceMetrics, span: &PublishSpan) {
    if let Some((chain, total)) = span.finish() {
        metrics.publish_stages.record_chain(&chain);
        metrics.publish_latency.record_micros(chain.total_micros());
        debug_assert_eq!(total.as_micros().min(u64::MAX as u128) as u64, chain.total_micros());
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        if let Some(p) = &mut self.persistence {
            // Closing the job channel ends the checkpointer after it finishes
            // any in-flight commit; logged batches need no flushing (appends
            // are durable when apply_batch returns).
            p.jobs.take();
            if let Some(checkpointer) = p.checkpointer.take() {
                let _ = checkpointer.join();
            }
            // Stop the degraded probe: flag first (honoured mid-backoff),
            // then drop the wake sender so a healthy probe's recv ends.
            p.probe_stop.store(true, Ordering::Release);
            p.probe_wake.take();
            if let Some(probe) = p.probe.take() {
                let _ = probe.join();
            }
        }
        for shard in &self.shards {
            shard.resources.queue.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

/// FNV-1a over the request identity; stable routing keeps cache affinity.
///
/// Public so workload tooling (the skewed-workload experiment, stress tests)
/// can *construct* skew — query sets that all hash to one shard — without
/// depending on the hash's internals.
pub fn route_shard(source: VertexId, target: VertexId, k: usize, num_shards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in [source.0 as u64, target.0 as u64, k as u64] {
        h ^= part;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % num_shards as u64) as usize
}

/// Closes and drains the shard queue when the worker exits — including by
/// panic. Dropping the drained requests drops their reply senders, so blocked
/// clients observe [`ServiceError::ShuttingDown`] instead of hanging forever
/// on a dead shard.
struct CloseQueueOnExit<'a>(&'a BoundedQueue<Request>);

impl Drop for CloseQueueOnExit<'_> {
    fn drop(&mut self) {
        self.0.close();
        while self.0.pop_batch(usize::MAX).is_some() {}
    }
}

/// How long a just-idled worker waits on its own queue before looking for a
/// steal victim. Short enough that a skew-pinned backlog is relieved within a
/// fraction of a typical query's service time; long enough that a loaded
/// worker never pays it.
const STEAL_POLL: Duration = Duration::from_micros(500);

/// Ceiling of the idle backoff: a worker that keeps finding nothing to do or
/// steal doubles its poll interval up to this, so a quiescent service costs a
/// few wakeups per second per worker instead of thousands. Work arriving on
/// the worker's *own* queue still wakes it immediately (condvar notify); the
/// backoff only bounds how stale its view of *other* queues can get, and any
/// successful pop or steal resets it to [`STEAL_POLL`].
const STEAL_POLL_MAX: Duration = Duration::from_millis(20);

/// Everything a shard worker shares with its siblings: every shard's
/// queue/cache pair, the epoch pointer, the metrics sink, the observability
/// runtime and the engine configuration.
struct WorkerContext<'a> {
    shards: &'a [Arc<ShardResources>],
    epoch: &'a EpochPointer,
    metrics: &'a ServiceMetrics,
    obs: &'a Observability,
    admission: &'a AdmissionController,
    engine_config: KspDgConfig,
}

fn shard_main(shard_id: usize, ctx: &WorkerContext<'_>, max_batch: usize, work_stealing: bool) {
    let own = &ctx.shards[shard_id].queue;
    let _guard = CloseQueueOnExit(own);
    let mut poll = STEAL_POLL;
    loop {
        if !work_stealing {
            match own.pop_batch(max_batch) {
                Some(batch) => run_batch(shard_id, shard_id, batch, ctx),
                None => return,
            }
            continue;
        }
        match own.pop_batch_timeout(max_batch, poll) {
            TimedPop::Items(batch) => {
                poll = STEAL_POLL;
                run_batch(shard_id, shard_id, batch, ctx)
            }
            TimedPop::Closed => return,
            TimedPop::TimedOut => {
                if let Some((victim, batch)) = steal_from_deepest(ctx.shards, shard_id, max_batch) {
                    poll = STEAL_POLL;
                    ctx.metrics.shards[shard_id].record_steals(batch.len());
                    ctx.obs.record(
                        EventKind::Steal,
                        shard_id as u64,
                        victim as u64,
                        batch.len() as u64,
                    );
                    run_batch(shard_id, victim, batch, ctx);
                } else {
                    poll = (poll * 2).min(STEAL_POLL_MAX);
                }
            }
        }
    }
}

/// Picks the statistically deepest other shard queue — deepest current
/// backlog, ties broken by the all-time high-water mark (the same signal the
/// `queue_gauges` export) — and steals up to half of it, capped at one batch.
/// Taking only half leaves the owner work on its own cache-warm shard instead
/// of ping-ponging the whole backlog between workers.
fn steal_from_deepest(
    shards: &[Arc<ShardResources>],
    thief: usize,
    max_batch: usize,
) -> Option<(usize, Vec<Request>)> {
    let (victim, depth) = shards
        .iter()
        .enumerate()
        .filter(|&(id, _)| id != thief)
        .map(|(id, s)| (id, s.queue.depth()))
        .max_by_key(|&(id, depth)| (depth, shards[id].queue.high_water()))?;
    if depth == 0 {
        return None;
    }
    let take = depth.div_ceil(2).min(max_batch.max(1));
    let batch = shards[victim].queue.steal_batch(take)?;
    Some((victim, batch))
}

/// Answers one drained batch. `home_shard` owns the queue the batch came from
/// (and therefore the cache the answers belong in); `executing_shard` is the
/// worker doing the computing — they differ exactly when the batch was
/// stolen, and busy time is attributed to the worker that actually ran it.
///
/// Span discipline: each request's [`RequestSpan`] is stamped at every stage
/// boundary, and when observability is on the end-to-end latency recorded
/// into `metrics.latency` is the span's own telescoped total — so the
/// per-stage histograms sum exactly to the end-to-end histogram.
fn run_batch(
    executing_shard: usize,
    home_shard: usize,
    batch: Vec<Request>,
    ctx: &WorkerContext<'_>,
) {
    use std::sync::atomic::Ordering::Relaxed;
    let WorkerContext { shards, epoch, metrics, obs, admission, engine_config } = *ctx;
    // One epoch load per batch: every request in the batch is answered
    // against the same consistent (graph, index) pair.
    let snapshot = epoch.load();
    let engine = SharedEngine::with_config(snapshot.index().clone(), engine_config);
    let cache = &shards[home_shard].cache;
    for mut request in batch {
        request.span.mark_dequeued(executing_shard != home_shard);
        let started = Instant::now();
        let key = CacheKey { source: request.source, target: request.target, k: request.k };
        let cached = {
            let mut cache = cache.lock();
            cache.get(&key, snapshot.epoch()).map(<[Path]>::to_vec)
        };
        request.span.mark_cache_done();
        let (paths, stats, cache_hit) = match cached {
            Some(paths) => {
                request.span.mark_engine_done(Duration::ZERO);
                (paths, QueryStats::default(), true)
            }
            None => {
                let result = engine.query(request.source, request.target, request.k);
                request.span.mark_engine_done(result.sweep_time);
                // The insert is post-engine bookkeeping: it lands in the
                // span's reply stage, not the cache-lookup stage.
                let mut cache = cache.lock();
                cache.insert(key, snapshot.epoch(), result.trace, result.paths.clone());
                (result.paths, result.stats, false)
            }
        };
        let service_time = started.elapsed();
        metrics.shards[executing_shard].record(service_time);
        // Feed the admission controller's estimator: this service time
        // (cache lookup + engine work, no queue wait) is exactly the
        // per-request cost its queueing-delay prediction multiplies by.
        admission.estimator().observe(
            if cache_hit { CostClass::CacheHit } else { CostClass::EngineRun },
            service_time,
        );
        if cache_hit {
            metrics.cache_hits.fetch_add(1, Relaxed);
        } else {
            metrics.cache_misses.fetch_add(1, Relaxed);
        }
        let (latency, chain) = match request.span.finish() {
            Some((chain, total)) => {
                metrics.stages.record_chain(&chain);
                (total, Some(chain))
            }
            None => (request.submitted.elapsed(), None),
        };
        metrics.latency.record(latency);
        metrics.completed.fetch_add(1, Relaxed);
        if let Some(chain) = chain {
            let slo = obs.config.slo_p99;
            if !slo.is_zero() && latency > slo {
                obs.trigger_traced(
                    EventKind::SloBreach,
                    latency.as_micros().min(u64::MAX as u128) as u64,
                    slo.as_micros().min(u64::MAX as u128) as u64,
                    home_shard as u64,
                    Some(chain),
                    request.trace_id,
                );
            }
        }
        let response = QueryResponse { paths, stats, epoch: snapshot.epoch(), cache_hit, latency };
        // The client may have given up; a dropped receiver is not an error.
        let _ = request.reply.send(Ok(response));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_algo::yen_ksp;
    use ksp_workload::{
        QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
        TrafficModel,
    };

    fn service(n: usize, shards: usize, seed: u64) -> (QueryService, DynamicGraph) {
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n))
            .generate(seed)
            .unwrap()
            .graph;
        let config = ServiceConfig::new(shards, DtlpConfig::new(18, 2));
        let service = QueryService::start(graph.clone(), config).unwrap();
        (service, graph)
    }

    #[test]
    fn answers_match_yen_on_the_initial_epoch() {
        let (service, graph) = service(200, 3, 5);
        let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(10, 2), 3);
        for q in workload.iter() {
            let response = service.query(q.source, q.target, q.k).unwrap();
            assert_eq!(response.epoch, 0);
            let expected = yen_ksp(&graph, q.source, q.target, q.k);
            assert_eq!(response.paths.len(), expected.len());
            for (a, b) in response.paths.iter().zip(expected.iter()) {
                assert!(a.distance().approx_eq(b.distance()));
            }
        }
        let report = service.metrics();
        assert_eq!(report.completed, 10);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (service, graph) = service(150, 2, 7);
        let (s, t) = (VertexId(1), VertexId(graph.num_vertices() as u32 - 1));
        let cold = service.query(s, t, 2).unwrap();
        assert!(!cold.cache_hit);
        let warm = service.query(s, t, 2).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(cold.paths.len(), warm.paths.len());
        for (a, b) in cold.paths.iter().zip(warm.paths.iter()) {
            assert_eq!(a.vertices(), b.vertices());
            assert!(a.distance().approx_eq(b.distance()));
        }
        assert!(service.metrics().cache_hit_rate() > 0.0);
    }

    /// The tentpole behaviour: a publish evicts exactly the entries whose
    /// trace the batch dirtied. An entry whose answer the batch touched must
    /// miss afterwards; an entry far away from the dirty set must keep
    /// hitting, re-stamped to the new epoch.
    #[test]
    fn publish_evicts_dirty_entries_and_keeps_disjoint_ones() {
        use ksp_graph::{Weight, WeightUpdate};
        let (service, graph) = service(300, 2, 7);
        let (s, t) = (VertexId(1), VertexId(8));
        let cold = service.query(s, t, 2).unwrap();
        assert!(!cold.cache_hit);

        // A batch updating an edge *on* the answer path: its owner subgraph is
        // necessarily in the query's trace, so the entry must be evicted.
        let (u, v) = {
            let verts = cold.paths[0].vertices();
            (verts[0], verts[1])
        };
        let on_path_edge = graph
            .edge_ids()
            .find(|&e| {
                let rec = graph.edge(e);
                (rec.u == u && rec.v == v) || (rec.u == v && rec.v == u)
            })
            .expect("answer path edge exists");
        let batch = ksp_graph::UpdateBatch::new(vec![WeightUpdate::new(
            on_path_edge,
            Weight::new(graph.weight(on_path_edge).value() * 3.0),
        )]);
        assert_eq!(service.apply_batch(&batch).unwrap(), 1);
        let after = service.query(s, t, 2).unwrap();
        assert_eq!(after.epoch, 1);
        assert!(!after.cache_hit, "an entry whose trace was dirtied must be evicted");

        // A batch updating an edge owned by a subgraph outside the cached
        // entry's trace: the entry must survive the publish and keep
        // answering, now stamped with the new epoch. The trace of the cached
        // (epoch-1) entry is recomputed here through the same deterministic
        // engine the shard worker ran.
        let snapshot = service.snapshot();
        let trace = {
            // Same engine configuration the shard workers run (tracing on).
            let engine = ksp_core::kspdg::KspDgEngine::with_config(
                snapshot.index(),
                service.config().engine,
            );
            let result = engine.query(s, t, 2);
            assert!(result.trace.complete);
            result.trace.subgraphs
        };
        let far_edge = graph
            .edge_ids()
            .find(|&e| !trace.contains(snapshot.index().owner_of_edge(e)))
            .expect("some edge is owned by an untraced subgraph");
        let far_batch = ksp_graph::UpdateBatch::new(vec![WeightUpdate::new(
            far_edge,
            Weight::new(snapshot.graph().weight(far_edge).value() * 2.0),
        )]);
        assert_eq!(service.apply_batch(&far_batch).unwrap(), 2);
        let survived = service.query(s, t, 2).unwrap();
        assert_eq!(survived.epoch, 2);
        assert!(survived.cache_hit, "a disjoint publish must not evict the entry");
        for (a, b) in survived.paths.iter().zip(after.paths.iter()) {
            assert_eq!(a.vertices(), b.vertices());
            assert_eq!(a.distance().value().to_bits(), b.distance().value().to_bits());
        }
        let report = service.metrics();
        assert!(report.cache_retained >= 1, "retention must be counted");
        assert_eq!(report.epochs_published, 2);
    }

    /// With survival disabled the service behaves exactly like the old
    /// wholesale-clear design: every publish empties every cache.
    #[test]
    fn survival_disabled_clears_wholesale_at_publish() {
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(150))
            .generate(7)
            .unwrap()
            .graph;
        let mut config = ServiceConfig::new(2, DtlpConfig::new(18, 2));
        config.cache_survival = false;
        let service = QueryService::start(graph.clone(), config).unwrap();
        let (s, t) = (VertexId(1), VertexId(graph.num_vertices() as u32 - 1));
        service.query(s, t, 2).unwrap();
        assert!(service.query(s, t, 2).unwrap().cache_hit);
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.1, 0.2), 11);
        service.apply_batch(&traffic.next_snapshot()).unwrap();
        let after = service.query(s, t, 2).unwrap();
        assert!(!after.cache_hit, "wholesale clear must drop every entry");
        let report = service.metrics();
        assert_eq!(report.cache_retained, 0);
        assert!(report.cache_evicted >= 1);
    }

    /// A single hot (source, target, k) pins all load to one shard under pure
    /// hash routing; with stealing enabled the idle workers must take some of
    /// that queue, and the answers must stay correct.
    #[test]
    fn idle_shards_steal_from_a_skew_pinned_queue() {
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(250))
            .generate(23)
            .unwrap()
            .graph;
        let mut config = ServiceConfig::new(4, DtlpConfig::new(18, 2));
        // A tiny cache forces recomputation, keeping the hot shard busy
        // enough for its backlog (and therefore steals) to build up.
        config.cache_capacity = 1;
        let service = Arc::new(QueryService::start(graph.clone(), config).unwrap());

        // Find a handful of queries that all route to shard 0.
        let n = graph.num_vertices() as u32;
        let mut hot: Vec<(VertexId, VertexId)> = Vec::new();
        's: for a in 0..n {
            for b in 0..n {
                if a != b && route_shard(VertexId(a), VertexId(b), 3, 4) == 0 {
                    hot.push((VertexId(a), VertexId(b)));
                    if hot.len() == 4 {
                        break 's;
                    }
                }
            }
        }
        let expected: Vec<_> = hot.iter().map(|&(s, t)| yen_ksp(&graph, s, t, 3)).collect();

        std::thread::scope(|scope| {
            for client in 0..8usize {
                let service = service.clone();
                let hot = &hot;
                let expected = &expected;
                scope.spawn(move || {
                    for i in 0..30usize {
                        let pick = (client + i) % hot.len();
                        let (s, t) = hot[pick];
                        let response = match service.query(s, t, 3) {
                            Ok(r) => r,
                            Err(ServiceError::Overloaded { .. }) => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        };
                        assert_eq!(response.paths.len(), expected[pick].len());
                        for (got, want) in response.paths.iter().zip(expected[pick].iter()) {
                            assert!(got.distance().approx_eq(want.distance()));
                        }
                    }
                });
            }
        });

        let report = service.metrics();
        assert!(report.steals > 0, "idle shards must have stolen from the hot queue");
        assert_eq!(report.steals, report.per_shard_steals.iter().sum::<u64>());
        // The hot shard never steals from itself; thieves are other shards.
        assert!(report.per_shard_steals.iter().skip(1).any(|&s| s > 0));
    }

    #[test]
    fn queries_reflect_published_weight_updates() {
        let (service, graph) = service(180, 2, 13);
        let mut live = graph.clone();
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 3);
        for _ in 0..3 {
            let batch = traffic.next_snapshot();
            live.apply_batch(&batch).unwrap();
            service.apply_batch(&batch).unwrap();
        }
        assert_eq!(service.current_epoch(), 3);
        let workload = QueryWorkload::generate(&live, QueryWorkloadConfig::new(8, 3), 17);
        for q in workload.iter() {
            let response = service.query(q.source, q.target, q.k).unwrap();
            assert_eq!(response.epoch, 3);
            let expected = yen_ksp(&live, q.source, q.target, q.k);
            assert_eq!(response.paths.len(), expected.len());
            for (a, b) in response.paths.iter().zip(expected.iter()) {
                assert!(a.distance().approx_eq(b.distance()));
            }
        }
    }

    #[test]
    fn invalid_requests_are_rejected_without_panicking_workers() {
        let (service, graph) = service(100, 2, 19);
        let bad = VertexId(graph.num_vertices() as u32 + 5);
        assert!(matches!(service.query(bad, VertexId(1), 2), Err(ServiceError::InvalidQuery(_))));
        assert!(matches!(service.query(VertexId(0), VertexId(1), 0), Err(ServiceError::InvalidK)));
        // Workers are still healthy afterwards.
        let ok = service.query(VertexId(0), VertexId(50), 1).unwrap();
        assert!(!ok.paths.is_empty());
    }

    #[test]
    fn failed_batch_leaves_masters_and_epochs_untouched() {
        use ksp_graph::{EdgeId, Weight, WeightUpdate};
        let (service, graph) = service(150, 2, 31);
        let valid_edge = EdgeId(0);
        let bogus_edge = EdgeId(graph.num_edges() as u32 + 100);
        // A batch that fails halfway: the valid update must NOT leak into any
        // future epoch.
        let poisoned = ksp_graph::UpdateBatch::new(vec![
            WeightUpdate::new(valid_edge, Weight::new(999.0)),
            WeightUpdate::new(bogus_edge, Weight::new(1.0)),
        ]);
        assert!(service.apply_batch(&poisoned).is_err());
        assert_eq!(service.current_epoch(), 0, "failed batch must not publish");

        // A follow-up valid batch publishes epoch 1, whose graph must match
        // the pristine graph plus only this batch.
        let fix =
            ksp_graph::UpdateBatch::new(vec![WeightUpdate::new(valid_edge, Weight::new(2.5))]);
        assert_eq!(service.apply_batch(&fix).unwrap(), 1);
        let snapshot = service.snapshot();
        let expected = graph.with_batch(&fix).unwrap();
        assert_eq!(snapshot.graph().weight(valid_edge), Weight::new(2.5));
        assert_eq!(snapshot.graph().total_weight(), expected.total_weight());
        // And queries still agree with Yen on that graph.
        let q = service.query(VertexId(0), VertexId(100), 2).unwrap();
        assert_eq!(q.epoch, 1);
        let want = yen_ksp(&expected, VertexId(0), VertexId(100), 2);
        assert_eq!(q.paths.len(), want.len());
        for (a, b) in q.paths.iter().zip(want.iter()) {
            assert!(a.distance().approx_eq(b.distance()));
        }
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ksp-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn apply_batch_returns_the_epoch_id_the_batch_produced() {
        let (service, graph) = service(150, 2, 41);
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.4), 5);
        for expected in 1..=3u64 {
            let epoch = service.apply_batch(&traffic.next_snapshot()).unwrap();
            assert_eq!(epoch, expected, "apply_batch must report the produced epoch");
            assert_eq!(service.current_epoch(), epoch);
            // Answers carry the same epoch id.
            let response = service.query(VertexId(0), VertexId(60), 1).unwrap();
            assert_eq!(response.epoch, epoch);
        }
    }

    #[test]
    fn persistent_service_recovers_with_identical_answers() {
        let dir = temp_store_dir("recover");
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(160))
            .generate(23)
            .unwrap()
            .graph;
        let config = ServiceConfig::new(2, DtlpConfig::new(16, 2));
        let store_config = StoreConfig {
            checkpoint_interval: 2,
            sync: ksp_store::SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let service =
            QueryService::start_with_store(graph.clone(), config, &dir, store_config).unwrap();
        assert!(service.is_persistent());
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.5, 0.5), 9);
        for _ in 0..3 {
            service.apply_batch(&traffic.next_snapshot()).unwrap();
        }
        let workload = QueryWorkload::generate(&graph, QueryWorkloadConfig::new(8, 2), 3);
        let live: Vec<_> =
            workload.iter().map(|q| service.query(q.source, q.target, q.k).unwrap()).collect();
        drop(service); // crash/stop: recovery must rely only on the store

        let (recovered, report) = QueryService::open(&dir, config, store_config).unwrap();
        assert_eq!(recovered.current_epoch(), 3);
        // The background checkpointer imaged epoch 2 (an incremental image
        // over the initial full checkpoint under the default rebase policy),
        // so recovery must not replay all three batches from the log.
        assert_eq!(report.checkpoint_epoch, 0);
        assert_eq!(report.partial_images_applied, 1);
        assert_eq!(report.batches_replayed, 1);
        for (q, before) in workload.iter().zip(live.iter()) {
            let after = recovered.query(q.source, q.target, q.k).unwrap();
            assert_eq!(after.epoch, before.epoch);
            assert_eq!(after.paths.len(), before.paths.len());
            for (a, b) in after.paths.iter().zip(before.paths.iter()) {
                assert_eq!(a.vertices(), b.vertices());
                // Byte-identical, not merely approximately equal.
                assert_eq!(a.distance().value().to_bits(), b.distance().value().to_bits());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_service_keeps_publishing_and_checkpointing() {
        let dir = temp_store_dir("continue");
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(120))
            .generate(29)
            .unwrap()
            .graph;
        let config = ServiceConfig::new(1, DtlpConfig::new(14, 2));
        let store_config = StoreConfig {
            checkpoint_interval: 0, // only explicit checkpoints
            sync: ksp_store::SyncPolicy::Never,
            ..StoreConfig::default()
        };
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::new(0.4, 0.5), 2);
        {
            let service =
                QueryService::start_with_store(graph.clone(), config, &dir, store_config).unwrap();
            service.apply_batch(&traffic.next_snapshot()).unwrap();
            assert_eq!(service.checkpoint_now().unwrap(), Some(1));
            assert_eq!(service.last_checkpoint_epoch(), Some(1));
        }
        // Second life: recover, publish two more epochs, stop.
        {
            let (service, report) = QueryService::open(&dir, config, store_config).unwrap();
            assert_eq!(report.checkpoint_epoch, 1);
            assert_eq!(report.batches_replayed, 0);
            assert_eq!(service.apply_batch(&traffic.next_snapshot()).unwrap(), 2);
            assert_eq!(service.apply_batch(&traffic.next_snapshot()).unwrap(), 3);
        }
        // Third life: both post-checkpoint epochs replay from the log.
        let (service, report) = QueryService::open(&dir, config, store_config).unwrap();
        assert_eq!(report.batches_replayed, 2);
        assert_eq!(service.current_epoch(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn start_with_store_refuses_an_existing_store() {
        let dir = temp_store_dir("exists");
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(80))
            .generate(3)
            .unwrap()
            .graph;
        let config = ServiceConfig::new(1, DtlpConfig::new(12, 1));
        let store_config =
            StoreConfig { sync: ksp_store::SyncPolicy::Never, ..StoreConfig::default() };
        let first =
            QueryService::start_with_store(graph.clone(), config, &dir, store_config).unwrap();
        drop(first);
        assert!(matches!(
            QueryService::start_with_store(graph, config, &dir, store_config),
            Err(PublishError::Store(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn publish_shares_untouched_state_across_epochs() {
        use ksp_graph::{EdgeId, Weight, WeightUpdate};
        let (service, graph) = service(300, 2, 43);
        let before = service.snapshot();
        // One-edge batch: exactly one subgraph index may be copied.
        let batch =
            ksp_graph::UpdateBatch::new(vec![WeightUpdate::new(EdgeId(0), Weight::new(42.0))]);
        service.apply_batch(&batch).unwrap();
        let after = service.snapshot();

        assert!(after.graph().shares_topology_with(before.graph()), "graph structure is shared");
        let owner = before.index().owner_of_edge(EdgeId(0));
        let total = before.index().num_subgraphs();
        let shared = (0..total)
            .filter(|&i| {
                let id = ksp_graph::SubgraphId(i as u32);
                Arc::ptr_eq(
                    before.index().subgraph_index_handle(id),
                    after.index().subgraph_index_handle(id),
                )
            })
            .count();
        assert_eq!(shared, total - 1, "only the dirtied subgraph may be copied");
        assert!(!Arc::ptr_eq(
            before.index().subgraph_index_handle(owner),
            after.index().subgraph_index_handle(owner)
        ));
        // The published snapshot and the masters share one Arc pair: applying
        // the next batch forks off the published epoch, not a private copy.
        let masters_snapshot = service.snapshot();
        assert!(Arc::ptr_eq(after.graph(), masters_snapshot.graph()));
        assert!(Arc::ptr_eq(after.index(), masters_snapshot.index()));
        drop(graph);
    }

    #[test]
    fn metrics_report_carries_per_shard_queue_gauges() {
        let (service, graph) = service(120, 3, 47);
        let t = VertexId(graph.num_vertices() as u32 - 1);
        for s in 0..6u32 {
            service.query(VertexId(s), t, 1).unwrap();
        }
        let report = service.metrics();
        assert_eq!(report.queue_gauges.len(), 3);
        for gauge in &report.queue_gauges {
            assert_eq!(gauge.max_depth, service.config().admission.max_queue_depth);
            assert!(gauge.high_water <= gauge.max_depth);
            assert!(gauge.depth <= gauge.high_water.max(1));
            assert!(gauge.saturation() <= 1.0);
        }
        // At least one request sat in some queue at some point.
        assert!(report.queue_gauges.iter().any(|g| g.high_water >= 1));
    }

    #[test]
    fn stage_histograms_telescope_to_the_end_to_end_histogram() {
        let (service, graph) = service(150, 2, 61);
        let t = VertexId(graph.num_vertices() as u32 - 1);
        for s in 0..8u32 {
            service.query(VertexId(s), t, 2).unwrap();
        }
        let snap = service.obs_snapshot();
        assert_eq!(snap.end_to_end.count, 8);
        let stage_total: u64 = snap.stages.iter().map(|s| s.histogram.total_micros).sum();
        // Spans share the submission Instant as their origin and the service
        // records the telescoped total as the e2e latency, so the per-stage
        // sums match the end-to-end histogram *exactly*, not approximately.
        assert_eq!(stage_total, snap.end_to_end.total_micros);
        // Every request passes admission, cache, engine and reply.
        for name in ["admission", "cache", "engine", "reply"] {
            let stage = snap.stages.iter().find(|s| s.stage.name() == name).unwrap();
            assert_eq!(stage.histogram.count, 8, "stage {name}");
        }
        // Queue + steal partition the wait: together they cover every request.
        let waits: u64 = snap
            .stages
            .iter()
            .filter(|s| matches!(s.stage.name(), "queue" | "steal"))
            .map(|s| s.histogram.count)
            .sum();
        assert_eq!(waits, 8);
        assert_eq!(snap.counter("ksp_requests_completed_total"), 8);
        assert!(snap.gauge("ksp_epoch_age_seconds").is_some());
    }

    #[test]
    fn slo_breach_dumps_the_offending_span_chain() {
        let mut config = ServiceConfig::new(1, DtlpConfig::new(14, 2));
        // A 1ns SLO: every request breaches, so the first completion dumps.
        config.observability.slo_p99 = Duration::from_nanos(1);
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(120))
            .generate(9)
            .unwrap()
            .graph;
        let service = QueryService::start(graph.clone(), config).unwrap();
        let t = VertexId(graph.num_vertices() as u32 - 1);
        service.query(VertexId(0), t, 2).unwrap();
        let dump = service.observability().flight().last_dump().expect("breach dumps");
        assert_eq!(dump.cause.kind, EventKind::SloBreach);
        let chain = dump.span.expect("the dump carries the offending request's span chain");
        assert_eq!(chain.total_micros(), dump.cause.a, "cause payload is the e2e latency");
        let snap = service.obs_snapshot();
        assert!(snap.dump.is_some());
        assert_eq!(snap.counter("ksp_flight_dumps_total"), 1);
    }

    #[test]
    fn disabled_observability_stays_inert() {
        let mut config = ServiceConfig::new(2, DtlpConfig::new(14, 2));
        config.observability = ksp_obs::ObsConfig::disabled();
        let graph = RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(120))
            .generate(17)
            .unwrap()
            .graph;
        let service = QueryService::start(graph.clone(), config).unwrap();
        let t = VertexId(graph.num_vertices() as u32 - 1);
        for s in 0..4u32 {
            service.query(VertexId(s), t, 1).unwrap();
        }
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 3);
        service.apply_batch(&traffic.next_snapshot()).unwrap();
        let snap = service.obs_snapshot();
        // The plain metrics still work; the obs machinery records nothing.
        assert_eq!(snap.counter("ksp_requests_completed_total"), 4);
        assert!(snap.stages.iter().all(|s| s.histogram.count == 0));
        assert_eq!(snap.counter("ksp_flight_events_total"), 0);
        assert!(snap.dump.is_none());
        // The e2e histogram still fills (it predates ksp-obs).
        assert_eq!(snap.end_to_end.count, 4);
    }

    #[test]
    fn publishes_and_steal_rejection_paths_reach_the_flight_ring() {
        let (service, graph) = service(150, 2, 71);
        let mut traffic = TrafficModel::new(&graph, TrafficConfig::default(), 5);
        service.apply_batch(&traffic.next_snapshot()).unwrap();
        service.apply_batch(&traffic.next_snapshot()).unwrap();
        let events = service.observability().flight().snapshot();
        let published =
            events.iter().filter(|e| e.kind == EventKind::EpochPublished).collect::<Vec<_>>();
        assert_eq!(published.len(), 2);
        assert_eq!(published[0].a, 1, "payload a is the epoch");
        assert_eq!(published[1].a, 2);
        assert!(events.iter().any(|e| e.kind == EventKind::CacheRetention));
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 7, 16] {
            for s in 0..20u32 {
                for t in 0..20u32 {
                    let a = route_shard(VertexId(s), VertexId(t), 3, shards);
                    let b = route_shard(VertexId(s), VertexId(t), 3, shards);
                    assert_eq!(a, b);
                    assert!(a < shards);
                }
            }
        }
    }
}
