//! The measurement-oriented cluster harness.
//!
//! Subgraphs are assigned to `Ns` *logical servers* with the same load-balancing rule
//! the paper uses ("allocated to workers on a many-to-one basis based on their load").
//! Work items — per-subgraph index builds, per-subgraph maintenance, per-query
//! executions — run on a bounded pool of OS threads and each item's duration is
//! measured individually, then attributed to the logical server that owns it. The
//! reports expose both the wall-clock time of the parallel run and the *simulated
//! makespan* (maximum per-server busy time), which is the quantity that scales with
//! `Ns` the way a real cluster's batch latency does, independent of how many physical
//! cores this machine happens to have.

use crate::metrics::{balanced_assignment, LoadBalanceReport, ServerLoad};
use ksp_core::dtlp::{DtlpConfig, DtlpIndex, SubgraphIndex};
use ksp_core::kspdg::{KspDgEngine, QueryStats};
use ksp_graph::{
    DynamicGraph, GraphError, PartitionConfig, Partitioner, SubgraphId, UpdateBatch, VertexId,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Configuration of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of logical servers (the paper's `Ns`, 10 by default and up to 20 in the
    /// scaling experiments).
    pub num_servers: usize,
    /// DTLP configuration used to build the distributed index.
    pub dtlp: DtlpConfig,
    /// Maximum number of OS threads used to execute work items concurrently. Defaults
    /// to the machine's available parallelism when `None`.
    pub max_threads: Option<usize>,
}

impl ClusterConfig {
    /// Creates a configuration with the given server count and DTLP settings.
    pub fn new(num_servers: usize, dtlp: DtlpConfig) -> Self {
        ClusterConfig { num_servers, dtlp, max_threads: None }
    }

    fn worker_threads(&self, items: usize) -> usize {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        self.max_threads.unwrap_or(hw).min(items.max(1)).max(1)
    }
}

/// A single KSP query submitted to the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// Source vertex.
    pub source: VertexId,
    /// Destination vertex.
    pub target: VertexId,
    /// Number of shortest paths requested.
    pub k: usize,
}

/// Report of a distributed index build (Figure 42).
#[derive(Debug, Clone)]
pub struct DistributedBuildReport {
    /// Wall-clock time of the parallel build on this machine.
    pub wall_clock: Duration,
    /// Per-server attributed build time.
    pub per_server: Vec<ServerLoad>,
    /// Load balance summary; its makespan is the simulated cluster build time.
    pub load_balance: LoadBalanceReport,
}

/// Report of a distributed maintenance call (Figures 19–23 at cluster level).
#[derive(Debug, Clone)]
pub struct DistributedMaintenanceReport {
    /// Wall-clock time of the maintenance pass.
    pub wall_clock: Duration,
    /// Per-server attributed maintenance time.
    pub per_server: Vec<ServerLoad>,
    /// Load balance summary; its makespan is the simulated cluster maintenance time.
    pub load_balance: LoadBalanceReport,
    /// Total number of bounding-path distance adjustments.
    pub paths_touched: usize,
    /// Total number of skeleton edges whose weight changed.
    pub skeleton_edges_changed: usize,
}

/// Report of a distributed query batch (the query-scaling Figures 43–46 and the
/// Section 6.6 load-balance report; the engine-level query figures 28–34 come from
/// `ksp-bench` directly).
#[derive(Debug, Clone)]
pub struct DistributedQueryReport {
    /// Wall-clock time of the parallel batch on this machine.
    pub wall_clock: Duration,
    /// Per-server attributed query time.
    pub per_server: Vec<ServerLoad>,
    /// Load balance summary; its makespan is the simulated cluster batch latency.
    pub load_balance: LoadBalanceReport,
    /// Number of queries answered.
    pub queries_answered: usize,
    /// Sum of per-query iteration counts.
    pub total_iterations: usize,
    /// Sum of per-query communication cost in vertex units (Section 5.6.1).
    pub total_vertices_transferred: usize,
    /// Sum of per-query candidate paths generated.
    pub total_candidates: usize,
}

impl DistributedQueryReport {
    /// The simulated batch latency on a cluster with `num_servers` servers.
    pub fn simulated_makespan(&self) -> Duration {
        self.load_balance.simulated_makespan()
    }

    /// Mean number of iterations per query.
    pub fn mean_iterations(&self) -> f64 {
        if self.queries_answered == 0 {
            0.0
        } else {
            self.total_iterations as f64 / self.queries_answered as f64
        }
    }
}

/// The simulated cluster: a DTLP index whose subgraphs are assigned to logical servers.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    index: DtlpIndex,
    /// For every subgraph, the logical server that owns it.
    subgraph_server: Vec<usize>,
}

impl Cluster {
    /// Builds the distributed DTLP index for `graph` and reports per-server build cost.
    pub fn build(
        graph: &DynamicGraph,
        config: ClusterConfig,
    ) -> Result<(Self, DistributedBuildReport), GraphError> {
        assert!(config.num_servers >= 1, "a cluster needs at least one server");
        let start = Instant::now();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(config.dtlp.max_subgraph_vertices))
                .partition(graph)?;

        let boundary = partitioning.boundary_vertices().to_vec();
        let mut vertex_subgraphs = HashMap::new();
        for v in graph.vertices() {
            vertex_subgraphs.insert(v, partitioning.subgraphs_of_vertex(v).to_vec());
        }
        let edge_owner: Vec<SubgraphId> =
            graph.edge_ids().map(|e| partitioning.owner_of_edge(e)).collect();
        let subgraphs = partitioning.into_subgraphs();

        // Assign subgraphs to servers by estimated load (boundary² is the dominant cost
        // of bounding-path computation; edges dominate for interior subgraphs).
        let load_estimates: Vec<usize> = subgraphs
            .iter()
            .map(|sg| sg.num_edges() + sg.boundary_vertices().len().pow(2))
            .collect();
        let subgraph_server = balanced_assignment(&load_estimates, config.num_servers);

        // Build every subgraph index on a bounded worker pool, measuring each build.
        let threads = config.worker_threads(subgraphs.len());
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<(SubgraphIndex, Duration)>>> =
            Mutex::new((0..subgraphs.len()).map(|_| None).collect());
        let dtlp_cfg = config.dtlp;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= subgraphs.len() {
                        break;
                    }
                    let sg = subgraphs[i].clone();
                    let t0 = Instant::now();
                    let built = SubgraphIndex::build(
                        sg,
                        dtlp_cfg.xi,
                        dtlp_cfg.max_enumerated_per_pair,
                        dtlp_cfg.backend,
                    );
                    let elapsed = t0.elapsed();
                    results.lock()[i] = Some((built, elapsed));
                });
            }
        });
        let mut per_server = vec![ServerLoad::default(); config.num_servers];
        let mut indexes: Vec<SubgraphIndex> = Vec::with_capacity(subgraphs.len());
        for (i, slot) in results.into_inner().into_iter().enumerate() {
            let (idx, elapsed) = slot.expect("every subgraph index was built");
            per_server[subgraph_server[i]].record(elapsed);
            per_server[subgraph_server[i]].memory_bytes +=
                idx.index_memory_bytes() + idx.subgraph_memory_bytes();
            indexes.push(idx);
        }

        let index = DtlpIndex::assemble(
            config.dtlp,
            graph.is_directed(),
            indexes,
            vertex_subgraphs,
            edge_owner,
            boundary,
        );
        let report = DistributedBuildReport {
            wall_clock: start.elapsed(),
            load_balance: LoadBalanceReport::from_loads(&per_server),
            per_server,
        };
        Ok((Cluster { config, index, subgraph_server }, report))
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The assembled DTLP index.
    pub fn index(&self) -> &DtlpIndex {
        &self.index
    }

    /// The logical server owning each subgraph.
    pub fn subgraph_assignment(&self) -> &[usize] {
        &self.subgraph_server
    }

    /// Per-server memory consumption (index + subgraph bytes), for the load-balance
    /// report of Section 6.6.
    pub fn per_server_memory(&self) -> Vec<usize> {
        let mut memory = vec![0usize; self.config.num_servers];
        for (i, idx) in self.index.subgraph_indexes().iter().enumerate() {
            memory[self.subgraph_server[i]] +=
                idx.index_memory_bytes() + idx.subgraph_memory_bytes();
        }
        memory
    }

    /// Applies a batch of weight updates, attributing per-subgraph maintenance cost to
    /// the owning server.
    pub fn apply_batch(
        &mut self,
        batch: &UpdateBatch,
    ) -> Result<DistributedMaintenanceReport, GraphError> {
        let start = Instant::now();
        let routed = self.index.route_batch(batch)?;
        let mut per_server = vec![ServerLoad::default(); self.config.num_servers];
        let mut paths_touched = 0;
        let mut skeleton_edges_changed = 0;
        for (sg_id, updates) in routed {
            let t0 = Instant::now();
            let stats = self.index.apply_updates_for_subgraph(sg_id, &updates)?;
            per_server[self.subgraph_server[sg_id.index()]].record(t0.elapsed());
            paths_touched += stats.paths_touched;
            skeleton_edges_changed += stats.skeleton_edges_changed;
        }
        for (s, mem) in self.per_server_memory().into_iter().enumerate() {
            per_server[s].memory_bytes = mem;
        }
        Ok(DistributedMaintenanceReport {
            wall_clock: start.elapsed(),
            load_balance: LoadBalanceReport::from_loads(&per_server),
            per_server,
            paths_touched,
            skeleton_edges_changed,
        })
    }

    /// Processes a batch of concurrent queries, running them on a bounded thread pool
    /// and attributing each query to a logical server round-robin (every query is
    /// handled by a single QueryBolt in the deployed system).
    pub fn process_queries(&self, queries: &[QuerySpec]) -> DistributedQueryReport {
        let start = Instant::now();
        let threads = self.config.worker_threads(queries.len());
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<(Duration, QueryStats)>>> =
            Mutex::new((0..queries.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let engine = KspDgEngine::new(&self.index);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let q = queries[i];
                        let t0 = Instant::now();
                        let result = engine.query(q.source, q.target, q.k);
                        let elapsed = t0.elapsed();
                        results.lock()[i] = Some((elapsed, result.stats));
                    }
                });
            }
        });

        let mut per_server = vec![ServerLoad::default(); self.config.num_servers];
        let mut total_iterations = 0;
        let mut total_vertices_transferred = 0;
        let mut total_candidates = 0;
        for (i, slot) in results.into_inner().into_iter().enumerate() {
            let (elapsed, stats) = slot.expect("every query was answered");
            per_server[i % self.config.num_servers].record(elapsed);
            total_iterations += stats.iterations;
            total_vertices_transferred += stats.vertices_transferred;
            total_candidates += stats.candidates_generated;
        }
        for (s, mem) in self.per_server_memory().into_iter().enumerate() {
            per_server[s].memory_bytes = mem;
        }
        DistributedQueryReport {
            wall_clock: start.elapsed(),
            load_balance: LoadBalanceReport::from_loads(&per_server),
            per_server,
            queries_answered: queries.len(),
            total_iterations,
            total_vertices_transferred,
            total_candidates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_algo::yen_ksp;
    use ksp_workload::{
        QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
        TrafficModel,
    };

    fn network(n: usize, seed: u64) -> DynamicGraph {
        RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap().graph
    }

    fn specs(workload: &QueryWorkload) -> Vec<QuerySpec> {
        workload.iter().map(|q| QuerySpec { source: q.source, target: q.target, k: q.k }).collect()
    }

    #[test]
    fn cluster_build_covers_all_subgraphs_and_balances_load() {
        let g = network(400, 3);
        let config = ClusterConfig::new(4, DtlpConfig::new(25, 2));
        let (cluster, report) = Cluster::build(&g, config).unwrap();
        assert_eq!(cluster.subgraph_assignment().len(), cluster.index().num_subgraphs());
        assert!(cluster.subgraph_assignment().iter().all(|&s| s < 4));
        assert_eq!(report.per_server.len(), 4);
        let total_items: usize = report.per_server.iter().map(|l| l.items_processed).sum();
        assert_eq!(total_items, cluster.index().num_subgraphs());
        assert!(report.wall_clock > Duration::ZERO);
        assert!(report.load_balance.simulated_makespan() > Duration::ZERO);
    }

    #[test]
    fn distributed_build_matches_sequential_build_results() {
        let g = network(300, 5);
        let dtlp_cfg = DtlpConfig::new(20, 2);
        let sequential = DtlpIndex::build(&g, dtlp_cfg).unwrap();
        let (cluster, _) = Cluster::build(&g, ClusterConfig::new(3, dtlp_cfg)).unwrap();
        assert_eq!(sequential.num_subgraphs(), cluster.index().num_subgraphs());
        assert_eq!(
            sequential.skeleton().num_skeleton_edges(),
            cluster.index().skeleton().num_skeleton_edges()
        );
        assert_eq!(sequential.boundary_vertices(), cluster.index().boundary_vertices());
    }

    #[test]
    fn query_batch_answers_match_yen() {
        let g = network(250, 7);
        let (cluster, _) =
            Cluster::build(&g, ClusterConfig::new(4, DtlpConfig::new(18, 2))).unwrap();
        let workload = QueryWorkload::generate(&g, QueryWorkloadConfig::new(8, 2), 3);
        // Check correctness through the shared engine (the batch API reports stats only).
        let engine = KspDgEngine::new(cluster.index());
        for q in workload.iter() {
            let got = engine.query(q.source, q.target, q.k);
            let want = yen_ksp(&g, q.source, q.target, q.k);
            assert_eq!(got.paths.len(), want.len());
            for (a, b) in got.paths.iter().zip(want.iter()) {
                assert!(a.distance().approx_eq(b.distance()));
            }
        }
        let report = cluster.process_queries(&specs(&workload));
        assert_eq!(report.queries_answered, 8);
        assert!(report.total_iterations >= 8);
        assert!(report.total_vertices_transferred > 0);
        assert!(report.mean_iterations() >= 1.0);
    }

    #[test]
    fn more_servers_reduce_simulated_makespan() {
        let g = network(350, 11);
        let workload = QueryWorkload::generate(&g, QueryWorkloadConfig::new(40, 2), 9);
        let mut makespans = Vec::new();
        for servers in [1, 4, 16] {
            let (cluster, _) =
                Cluster::build(&g, ClusterConfig::new(servers, DtlpConfig::new(20, 2))).unwrap();
            let report = cluster.process_queries(&specs(&workload));
            makespans.push(report.simulated_makespan());
        }
        assert!(
            makespans[2] < makespans[0],
            "16 servers ({:?}) should beat 1 server ({:?})",
            makespans[2],
            makespans[0]
        );
    }

    #[test]
    fn maintenance_is_attributed_to_owning_servers() {
        let g = network(300, 13);
        let (mut cluster, _) =
            Cluster::build(&g, ClusterConfig::new(5, DtlpConfig::new(20, 2))).unwrap();
        let mut traffic = TrafficModel::new(&g, TrafficConfig::new(0.5, 0.4), 7);
        let report = cluster.apply_batch(&traffic.next_snapshot()).unwrap();
        assert!(report.paths_touched > 0);
        assert!(report.skeleton_edges_changed > 0);
        let busy: usize = report.per_server.iter().map(|l| l.items_processed).sum();
        assert!(busy > 0);
        assert_eq!(report.per_server.len(), 5);
    }

    #[test]
    fn per_server_memory_is_fully_assigned() {
        let g = network(300, 17);
        let (cluster, _) =
            Cluster::build(&g, ClusterConfig::new(6, DtlpConfig::new(20, 1))).unwrap();
        let memory = cluster.per_server_memory();
        assert_eq!(memory.len(), 6);
        let total: usize = memory.iter().sum();
        let expected: usize = cluster
            .index()
            .subgraph_indexes()
            .iter()
            .map(|i| i.index_memory_bytes() + i.subgraph_memory_bytes())
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn load_balance_spread_is_reasonable() {
        // Section 6.6: CPU spread < 6 %, memory spread < 2 % on the real cluster. On a
        // small synthetic graph the spread is larger, but it must stay well below total
        // imbalance for the balanced assignment to be considered working.
        let g = network(500, 19);
        let (cluster, build) =
            Cluster::build(&g, ClusterConfig::new(4, DtlpConfig::new(25, 2))).unwrap();
        assert!(build.load_balance.memory_spread < 0.9);
        let workload = QueryWorkload::generate(&g, QueryWorkloadConfig::new(32, 2), 23);
        let report = cluster.process_queries(&specs(&workload));
        assert!(report.load_balance.busy_spread < 0.95);
    }
}
