//! A faithful message-passing implementation of the Storm topology of Section 6.1.
//!
//! Worker threads play the role of the servers in the cluster: each owns the
//! SubgraphBolts (per-subgraph DTLP indexes) assigned to it and serves three kinds of
//! tuples — weight-update batches, partial-KSP requests for the adjacent pairs of a
//! reference path, and endpoint-attachment requests for non-boundary query endpoints.
//! The master holds the EntranceSpout (routing) and the skeleton graph; `query` runs
//! the QueryBolt logic: it enumerates reference paths on the skeleton replica,
//! broadcasts them to the workers, merges the partial k shortest paths returned, joins
//! them into candidates and maintains the top-k list until the Theorem 3 termination
//! condition holds.
//!
//! The resulting answers are bit-identical to [`ksp_core::kspdg::KspDgEngine`]; the
//! topology exists to demonstrate and test the distributed decomposition, while the
//! benchmarks use [`crate::cluster::Cluster`] for timing (in-process channels do not
//! model network cost).

use crate::metrics::balanced_assignment;
use crossbeam::channel::{unbounded, Receiver, Sender};
use ksp_algo::path::keep_k_shortest;
use ksp_algo::{yen_ksp, KspEnumerator, Path};
use ksp_core::dtlp::{DtlpConfig, SkeletonGraph, SubgraphIndex};
use ksp_graph::{
    DynamicGraph, EdgeId, GraphError, PartitionConfig, Partitioner, SubgraphId, UpdateBatch,
    VertexId, Weight, WeightUpdate,
};
use ksp_proto::shard::{
    apply_updates_frame_cost, endpoint_distances_reply_frame_cost, lower_bound_deltas_frame_cost,
    partial_ksp_reply_frame_cost, partial_ksp_request_frame_cost, LowerBoundDelta, ShardTuple,
};
use std::collections::HashMap;
use std::thread::JoinHandle;

/// Configuration of the message-passing topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyConfig {
    /// Number of worker threads (servers).
    pub num_workers: usize,
    /// DTLP configuration.
    pub dtlp: DtlpConfig,
}

impl TopologyConfig {
    /// Creates a configuration.
    pub fn new(num_workers: usize, dtlp: DtlpConfig) -> Self {
        TopologyConfig { num_workers, dtlp }
    }
}

/// Tuples sent from the master (EntranceSpout / QueryBolt) to a worker.
enum WorkerRequest {
    /// Apply weight updates to the subgraphs owned by this worker.
    ApplyUpdates {
        /// The updates, all owned by this worker's subgraphs.
        updates: Vec<WeightUpdate>,
        /// Reply channel: lower-bound changes tagged with the contributing subgraph.
        reply: Sender<Vec<(SubgraphId, VertexId, VertexId, Weight)>>,
    },
    /// Compute partial k shortest paths for each requested pair, within the subgraphs
    /// this worker owns that contain both endpoints of the pair.
    PartialKsp {
        pairs: Vec<(VertexId, VertexId)>,
        k: usize,
        reply: Sender<HashMap<(VertexId, VertexId), Vec<Path>>>,
    },
    /// Distances between a (possibly non-boundary) vertex and the boundary vertices of
    /// the worker's subgraphs containing it; `reverse` asks for boundary → vertex
    /// distances (needed for directed graphs).
    EndpointDistances { vertex: VertexId, reverse: bool, reply: Sender<Vec<(VertexId, Weight)>> },
    /// Shortest within-subgraph distance between two vertices, over the worker's
    /// subgraphs containing both.
    WithinSubgraph { source: VertexId, target: VertexId, reply: Sender<Option<Weight>> },
    /// Stop the worker thread.
    Shutdown,
}

impl WorkerRequest {
    /// The bytes this tuple would occupy as a `ksp-proto` shard frame — the
    /// physical cost of sending it over a socket instead of a channel. The
    /// reply channels are transport artifacts and carry no wire bytes; reply
    /// *payloads* are priced separately when they arrive. Variable-size
    /// payloads are priced through the borrowed-slice helpers, so accounting
    /// never clones them.
    fn wire_cost(&self) -> usize {
        match self {
            WorkerRequest::ApplyUpdates { updates, .. } => apply_updates_frame_cost(updates),
            WorkerRequest::PartialKsp { pairs, k, reply: _ } => {
                partial_ksp_request_frame_cost(pairs, *k as u64)
            }
            WorkerRequest::EndpointDistances { vertex, reverse, reply: _ } => {
                ShardTuple::EndpointDistancesRequest { vertex: *vertex, reverse: *reverse }
                    .frame_cost()
            }
            WorkerRequest::WithinSubgraph { source, target, reply: _ } => {
                ShardTuple::WithinSubgraphRequest { source: *source, target: *target }.frame_cost()
            }
            WorkerRequest::Shutdown => ShardTuple::Shutdown.frame_cost(),
        }
    }
}

/// One worker thread and its request channel.
struct WorkerHandle {
    sender: Sender<WorkerRequest>,
    join: Option<JoinHandle<()>>,
}

/// The assembled topology.
pub struct StormTopology {
    workers: Vec<WorkerHandle>,
    skeleton: SkeletonGraph,
    /// vertex → subgraphs, for routing endpoint requests and refine requests.
    vertex_subgraphs: HashMap<VertexId, Vec<SubgraphId>>,
    /// edge → owning subgraph, for routing updates.
    edge_owner: Vec<SubgraphId>,
    /// subgraph → worker.
    subgraph_worker: Vec<usize>,
    boundary: Vec<VertexId>,
    directed: bool,
    /// Messages (tuples) sent from master to workers, for communication accounting.
    tuples_sent: std::cell::Cell<usize>,
    /// Physical wire bytes the master→worker tuples would occupy as
    /// `ksp-proto` shard frames (header + encoded payload).
    wire_bytes_sent: std::cell::Cell<usize>,
    /// Physical wire bytes of the worker→master reply payloads, priced the
    /// same way.
    wire_bytes_received: std::cell::Cell<usize>,
}

impl StormTopology {
    /// Builds the topology: partitions the graph, builds per-subgraph indexes on the
    /// worker threads that own them, and assembles the skeleton on the master.
    pub fn build(graph: &DynamicGraph, config: TopologyConfig) -> Result<Self, GraphError> {
        assert!(config.num_workers >= 1, "need at least one worker");
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(config.dtlp.max_subgraph_vertices))
                .partition(graph)?;
        let boundary = partitioning.boundary_vertices().to_vec();
        let mut vertex_subgraphs = HashMap::new();
        for v in graph.vertices() {
            vertex_subgraphs.insert(v, partitioning.subgraphs_of_vertex(v).to_vec());
        }
        let edge_owner: Vec<SubgraphId> =
            graph.edge_ids().map(|e| partitioning.owner_of_edge(e)).collect();
        let subgraphs = partitioning.into_subgraphs();
        let loads: Vec<usize> = subgraphs
            .iter()
            .map(|sg| sg.num_edges() + sg.boundary_vertices().len().pow(2))
            .collect();
        let subgraph_worker = balanced_assignment(&loads, config.num_workers);

        // Build the per-subgraph indexes on the owning workers (in parallel) and
        // collect their lower bounds to assemble the skeleton on the master.
        let mut per_worker_subgraphs: Vec<Vec<std::sync::Arc<ksp_graph::Subgraph>>> =
            (0..config.num_workers).map(|_| Vec::new()).collect();
        for (i, sg) in subgraphs.into_iter().enumerate() {
            per_worker_subgraphs[subgraph_worker[i]].push(sg);
        }

        let dtlp_cfg = config.dtlp;
        let mut built: Vec<(usize, Vec<SubgraphIndex>)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, sgs) in per_worker_subgraphs.into_iter().enumerate() {
                handles.push(scope.spawn(move || {
                    let indexes: Vec<SubgraphIndex> = sgs
                        .into_iter()
                        .map(|sg| {
                            SubgraphIndex::build(
                                sg,
                                dtlp_cfg.xi,
                                dtlp_cfg.max_enumerated_per_pair,
                                dtlp_cfg.backend,
                            )
                        })
                        .collect();
                    (w, indexes)
                }));
            }
            for h in handles {
                built.push(h.join().expect("worker build thread panicked"));
            }
        });
        built.sort_by_key(|(w, _)| *w);

        let mut skeleton = SkeletonGraph::new(graph.is_directed());
        for (_, indexes) in &built {
            for idx in indexes {
                for lb in idx.lower_bounds() {
                    skeleton.set_contribution(lb.a, lb.b, idx.id(), lb.new_lbd);
                }
            }
        }

        // Spawn the long-lived worker threads, each owning its indexes.
        let mut workers = Vec::with_capacity(config.num_workers);
        for (_, indexes) in built {
            let (tx, rx) = unbounded::<WorkerRequest>();
            let join = std::thread::spawn(move || worker_main(indexes, rx));
            workers.push(WorkerHandle { sender: tx, join: Some(join) });
        }

        Ok(StormTopology {
            workers,
            skeleton,
            vertex_subgraphs,
            edge_owner,
            subgraph_worker,
            boundary,
            directed: graph.is_directed(),
            tuples_sent: std::cell::Cell::new(0),
            wire_bytes_sent: std::cell::Cell::new(0),
            wire_bytes_received: std::cell::Cell::new(0),
        })
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The master's skeleton-graph replica.
    pub fn skeleton(&self) -> &SkeletonGraph {
        &self.skeleton
    }

    /// Total number of tuples the master has sent to workers so far.
    pub fn tuples_sent(&self) -> usize {
        self.tuples_sent.get()
    }

    /// Physical wire bytes the master→worker tuples sent so far would occupy
    /// as `ksp-proto` shard frames. Channels move them for free in process;
    /// this is what the same traffic costs once workers live behind sockets,
    /// which makes the paper's communication-cost accounting (Section 5.6.1)
    /// physical instead of abstract.
    pub fn wire_bytes_sent(&self) -> usize {
        self.wire_bytes_sent.get()
    }

    /// Physical wire bytes of the worker→master replies received so far,
    /// priced as `ksp-proto` shard frames.
    pub fn wire_bytes_received(&self) -> usize {
        self.wire_bytes_received.get()
    }

    fn price_reply(&self, frame_cost: usize) {
        self.wire_bytes_received.set(self.wire_bytes_received.get() + frame_cost);
    }

    /// Whether `v` is a boundary vertex.
    pub fn is_boundary(&self, v: VertexId) -> bool {
        self.boundary.binary_search(&v).is_ok()
    }

    fn send(&self, worker: usize, request: WorkerRequest) {
        self.tuples_sent.set(self.tuples_sent.get() + 1);
        self.wire_bytes_sent.set(self.wire_bytes_sent.get() + request.wire_cost());
        self.workers[worker].sender.send(request).expect("worker thread terminated unexpectedly");
    }

    /// Routes a weight-update batch to the owning workers (the EntranceSpout role) and
    /// applies the resulting lower-bound changes to the skeleton.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<(), GraphError> {
        let mut per_worker: Vec<Vec<WeightUpdate>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        for u in batch.iter() {
            let owner = *self.edge_owner.get(u.edge.index()).ok_or(GraphError::EdgeOutOfRange {
                edge: u.edge,
                num_edges: self.edge_owner.len(),
            })?;
            per_worker[self.subgraph_worker[owner.index()]].push(*u);
        }
        let (reply_tx, reply_rx) = unbounded();
        let mut outstanding = 0;
        for (w, updates) in per_worker.into_iter().enumerate() {
            if updates.is_empty() {
                continue;
            }
            self.send(w, WorkerRequest::ApplyUpdates { updates, reply: reply_tx.clone() });
            outstanding += 1;
        }
        drop(reply_tx);
        for _ in 0..outstanding {
            let changes = reply_rx.recv().expect("worker dropped its reply channel");
            self.price_reply(lower_bound_deltas_frame_cost(changes.iter().map(
                |&(subgraph, a, b, lower_bound)| LowerBoundDelta { subgraph, a, b, lower_bound },
            )));
            for (sg, a, b, lbd) in changes {
                self.skeleton.set_contribution(a, b, sg, lbd);
            }
        }
        Ok(())
    }

    /// Answers a KSP query by running the QueryBolt logic against the worker pool.
    pub fn query(&self, source: VertexId, target: VertexId, k: usize) -> Vec<Path> {
        assert!(k >= 1);
        if source == target {
            return vec![Path::trivial(source)];
        }

        // Step 1: attach non-boundary endpoints (broadcast EndpointDistances).
        let mut overlay = self.skeleton.overlay();
        if !self.is_boundary(source) {
            for (b, d) in self.broadcast_endpoint(source, false) {
                if b != source {
                    if self.directed {
                        overlay.add_edge(source, b, d);
                    } else {
                        overlay.add_undirected_edge(source, b, d);
                    }
                }
            }
        }
        if !self.is_boundary(target) {
            for (b, d) in self.broadcast_endpoint(target, true) {
                if b != target {
                    if self.directed {
                        overlay.add_edge(b, target, d);
                    } else {
                        overlay.add_undirected_edge(b, target, d);
                    }
                }
            }
        }
        let shares_subgraph = self
            .vertex_subgraphs
            .get(&source)
            .map(|ss| {
                ss.iter().any(|s| {
                    self.vertex_subgraphs.get(&target).map(|ts| ts.contains(s)).unwrap_or(false)
                })
            })
            .unwrap_or(false);
        if shares_subgraph && (!self.is_boundary(source) || !self.is_boundary(target)) {
            if let Some(d) = self.broadcast_within_subgraph(source, target) {
                if self.directed {
                    overlay.add_edge(source, target, d);
                } else {
                    overlay.add_undirected_edge(source, target, d);
                }
            }
        }

        // Step 2: filter-and-refine iterations.
        let mut reference_paths = KspEnumerator::new(&overlay, source, target);
        let mut partial_cache: HashMap<(VertexId, VertexId), Vec<Path>> = HashMap::new();
        let mut results: Vec<Path> = Vec::new();
        let mut next_reference = reference_paths.next_path();
        while let Some(reference) = next_reference {
            // Request partials for the pairs we have not cached yet (one broadcast of
            // the reference path to all workers).
            let missing: Vec<(VertexId, VertexId)> = reference
                .vertices()
                .windows(2)
                .map(|w| (w[0], w[1]))
                .filter(|p| !partial_cache.contains_key(p))
                .collect();
            if !missing.is_empty() {
                let merged = self.broadcast_partial_ksp(&missing, k);
                for (pair, mut paths) in merged {
                    keep_k_shortest(&mut paths, k);
                    partial_cache.insert(pair, paths);
                }
                for pair in &missing {
                    partial_cache.entry(*pair).or_default();
                }
            }

            // Join the partials along the reference path.
            let mut combined = vec![Path::trivial(reference.vertices()[0])];
            let mut dead_end = false;
            for w in reference.vertices().windows(2) {
                let partials = &partial_cache[&(w[0], w[1])];
                if partials.is_empty() {
                    dead_end = true;
                    break;
                }
                let mut next: Vec<Path> = Vec::new();
                for left in &combined {
                    for right in partials {
                        if let Some(joined) = left.concat(right) {
                            next.push(joined);
                        }
                    }
                }
                keep_k_shortest(&mut next, k);
                if next.is_empty() {
                    dead_end = true;
                    break;
                }
                combined = next;
            }
            if !dead_end {
                results.extend(combined);
                keep_k_shortest(&mut results, k);
            }

            next_reference = reference_paths.next_path();
            if results.len() >= k {
                let kth = results[k - 1].distance();
                match &next_reference {
                    None => break,
                    Some(r) if kth <= r.distance() || kth.approx_eq(r.distance()) => break,
                    Some(_) => {}
                }
            }
        }
        results
    }

    fn broadcast_endpoint(&self, vertex: VertexId, reverse: bool) -> Vec<(VertexId, Weight)> {
        let (tx, rx) = unbounded();
        for w in 0..self.workers.len() {
            self.send(w, WorkerRequest::EndpointDistances { vertex, reverse, reply: tx.clone() });
        }
        drop(tx);
        let mut best: HashMap<VertexId, Weight> = HashMap::new();
        for _ in 0..self.workers.len() {
            let distances = rx.recv().expect("worker reply lost");
            self.price_reply(endpoint_distances_reply_frame_cost(&distances));
            for (b, d) in distances {
                best.entry(b).and_modify(|w| *w = (*w).min(d)).or_insert(d);
            }
        }
        best.into_iter().collect()
    }

    fn broadcast_within_subgraph(&self, source: VertexId, target: VertexId) -> Option<Weight> {
        let (tx, rx) = unbounded();
        for w in 0..self.workers.len() {
            self.send(w, WorkerRequest::WithinSubgraph { source, target, reply: tx.clone() });
        }
        drop(tx);
        let mut best: Option<Weight> = None;
        for _ in 0..self.workers.len() {
            let distance = rx.recv().expect("worker reply lost");
            self.price_reply(ShardTuple::WithinSubgraphReply { distance }.frame_cost());
            if let Some(d) = distance {
                best = Some(best.map_or(d, |b| b.min(d)));
            }
        }
        best
    }

    fn broadcast_partial_ksp(
        &self,
        pairs: &[(VertexId, VertexId)],
        k: usize,
    ) -> HashMap<(VertexId, VertexId), Vec<Path>> {
        let (tx, rx) = unbounded();
        for w in 0..self.workers.len() {
            self.send(w, WorkerRequest::PartialKsp { pairs: pairs.to_vec(), k, reply: tx.clone() });
        }
        drop(tx);
        let mut merged: HashMap<(VertexId, VertexId), Vec<Path>> = HashMap::new();
        for _ in 0..self.workers.len() {
            let reply = rx.recv().expect("worker reply lost");
            self.price_reply(partial_ksp_reply_frame_cost(
                reply.iter().map(|(&(source, target), paths)| (source, target, paths.as_slice())),
            ));
            for (pair, paths) in reply {
                merged.entry(pair).or_default().extend(paths);
            }
        }
        merged
    }

    /// The subgraph owning an edge (exposed for tests).
    pub fn owner_of_edge(&self, e: EdgeId) -> SubgraphId {
        self.edge_owner[e.index()]
    }
}

impl Drop for StormTopology {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.sender.send(WorkerRequest::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// Worker thread main loop: serve requests against the owned subgraph indexes.
fn worker_main(mut indexes: Vec<SubgraphIndex>, rx: Receiver<WorkerRequest>) {
    while let Ok(request) = rx.recv() {
        match request {
            WorkerRequest::Shutdown => break,
            WorkerRequest::ApplyUpdates { updates, reply } => {
                // Group the updates by the owning subgraph among this worker's indexes.
                let mut per_index: HashMap<usize, Vec<WeightUpdate>> = HashMap::new();
                for u in updates {
                    if let Some(i) = indexes.iter().position(|idx| idx.subgraph().owns_edge(u.edge))
                    {
                        per_index.entry(i).or_default().push(u);
                    }
                }
                let mut changes = Vec::new();
                for (i, ups) in per_index {
                    if let Ok((chs, _)) = indexes[i].apply_updates(&ups) {
                        let sg = indexes[i].id();
                        changes.extend(chs.into_iter().map(|c| (sg, c.a, c.b, c.new_lbd)));
                    }
                }
                let _ = reply.send(changes);
            }
            WorkerRequest::PartialKsp { pairs, k, reply } => {
                let mut out: HashMap<(VertexId, VertexId), Vec<Path>> = HashMap::new();
                for &(u, v) in &pairs {
                    for idx in &indexes {
                        let sg = idx.subgraph();
                        if sg.contains_vertex(u) && sg.contains_vertex(v) {
                            let paths = yen_ksp(sg, u, v, k);
                            if !paths.is_empty() {
                                out.entry((u, v)).or_default().extend(paths);
                            }
                        }
                    }
                }
                let _ = reply.send(out);
            }
            WorkerRequest::EndpointDistances { vertex, reverse, reply } => {
                let mut out = Vec::new();
                for idx in &indexes {
                    if idx.subgraph().contains_vertex(vertex) {
                        let dists = if reverse {
                            idx.boundary_distances_to(vertex)
                        } else {
                            idx.boundary_distances_from(vertex)
                        };
                        out.extend(dists);
                    }
                }
                let _ = reply.send(out);
            }
            WorkerRequest::WithinSubgraph { source, target, reply } => {
                let mut best: Option<Weight> = None;
                for idx in &indexes {
                    let sg = idx.subgraph();
                    if sg.contains_vertex(source) && sg.contains_vertex(target) {
                        if let Some(p) = ksp_algo::dijkstra_path(sg, source, target) {
                            let d = p.distance();
                            best = Some(best.map_or(d, |b| b.min(d)));
                        }
                    }
                }
                let _ = reply.send(best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_core::dtlp::DtlpIndex;
    use ksp_core::kspdg::KspDgEngine;
    use ksp_workload::{
        QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
        TrafficModel,
    };

    fn network(n: usize, seed: u64) -> DynamicGraph {
        RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap().graph
    }

    #[test]
    fn topology_answers_match_the_local_engine() {
        let g = network(220, 5);
        let dtlp = DtlpConfig::new(18, 2);
        let topology = StormTopology::build(&g, TopologyConfig::new(3, dtlp)).unwrap();
        let index = DtlpIndex::build(&g, dtlp).unwrap();
        let engine = KspDgEngine::new(&index);
        let workload = QueryWorkload::generate(&g, QueryWorkloadConfig::new(10, 2), 3);
        for q in workload.iter() {
            let distributed = topology.query(q.source, q.target, q.k);
            let local = engine.query(q.source, q.target, q.k);
            assert_eq!(distributed.len(), local.paths.len(), "count mismatch for {q:?}");
            for (a, b) in distributed.iter().zip(local.paths.iter()) {
                assert!(a.distance().approx_eq(b.distance()));
            }
        }
        assert!(topology.tuples_sent() > 0);
        // Every tuple is priced in physical frame bytes: at least one frame
        // header per tuple sent, and the partial-KSP replies cost bytes too.
        assert!(topology.wire_bytes_sent() >= topology.tuples_sent() * ksp_proto::FRAME_HEADER_LEN);
        assert!(topology.wire_bytes_received() > 0);
    }

    #[test]
    fn wire_byte_accounting_scales_with_the_update_batch() {
        let g = network(200, 21);
        let dtlp = DtlpConfig::new(15, 2);
        let mut topology = StormTopology::build(&g, TopologyConfig::new(2, dtlp)).unwrap();
        let mut traffic = TrafficModel::new(&g, TrafficConfig::new(0.2, 0.4), 3);
        let small = traffic.next_snapshot();
        topology.apply_batch(&small).unwrap();
        let after_small = topology.wire_bytes_sent();
        let mut heavy = TrafficModel::new(&g, TrafficConfig::new(0.9, 0.4), 5);
        let large = heavy.next_snapshot();
        assert!(large.len() > small.len());
        topology.apply_batch(&large).unwrap();
        let after_large = topology.wire_bytes_sent();
        // A bigger batch ships more update payload: the increment grows.
        assert!(after_large - after_small > after_small);
    }

    #[test]
    fn topology_skeleton_matches_sequential_skeleton() {
        let g = network(200, 7);
        let dtlp = DtlpConfig::new(15, 2);
        let topology = StormTopology::build(&g, TopologyConfig::new(4, dtlp)).unwrap();
        let index = DtlpIndex::build(&g, dtlp).unwrap();
        assert_eq!(topology.skeleton().num_skeleton_edges(), index.skeleton().num_skeleton_edges());
        assert_eq!(
            topology.skeleton().num_skeleton_vertices(),
            index.skeleton().num_skeleton_vertices()
        );
    }

    #[test]
    fn updates_flow_through_the_topology() {
        let mut g = network(200, 9);
        let dtlp = DtlpConfig::new(15, 2);
        let mut topology = StormTopology::build(&g, TopologyConfig::new(3, dtlp)).unwrap();
        let mut index = DtlpIndex::build(&g, dtlp).unwrap();
        let mut traffic = TrafficModel::new(&g, TrafficConfig::new(0.4, 0.5), 11);
        for _ in 0..2 {
            let batch = traffic.next_snapshot();
            g.apply_batch(&batch).unwrap();
            topology.apply_batch(&batch).unwrap();
            index.apply_batch(&batch).unwrap();
        }
        // After identical update streams, skeleton edge weights agree.
        let engine = KspDgEngine::new(&index);
        let workload = QueryWorkload::generate(&g, QueryWorkloadConfig::new(6, 2), 13);
        for q in workload.iter() {
            let distributed = topology.query(q.source, q.target, q.k);
            let local = engine.query(q.source, q.target, q.k);
            assert_eq!(distributed.len(), local.paths.len());
            for (a, b) in distributed.iter().zip(local.paths.iter()) {
                assert!(a.distance().approx_eq(b.distance()));
            }
        }
    }

    #[test]
    fn single_worker_topology_works() {
        let g = network(150, 13);
        let topology =
            StormTopology::build(&g, TopologyConfig::new(1, DtlpConfig::new(12, 1))).unwrap();
        assert_eq!(topology.num_workers(), 1);
        let paths = topology.query(VertexId(0), VertexId(40), 2);
        assert!(!paths.is_empty());
    }

    #[test]
    fn trivial_query_short_circuits() {
        let g = network(150, 17);
        let topology =
            StormTopology::build(&g, TopologyConfig::new(2, DtlpConfig::new(12, 1))).unwrap();
        let before = topology.tuples_sent();
        let paths = topology.query(VertexId(5), VertexId(5), 3);
        assert_eq!(paths.len(), 1);
        assert_eq!(topology.tuples_sent(), before, "no worker traffic for a trivial query");
    }
}
