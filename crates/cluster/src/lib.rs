//! Distributed runtime for KSP-DG (Section 6.1 of the paper), simulated on one machine.
//!
//! The paper deploys KSP-DG on Apache Storm over a cluster of 10–20 servers:
//! an **EntranceSpout** on the master routes weight updates and queries,
//! **SubgraphBolts** own the partitioned subgraphs and their level-one DTLP indexes,
//! and **QueryBolts** hold a replica of the skeleton graph and coordinate the
//! filter-and-refine iterations of each query.
//!
//! This crate reproduces that architecture with OS threads on a single machine:
//!
//! * [`cluster`] — the measurement harness used by the benchmarks. Subgraphs are
//!   assigned to `Ns` logical servers, index construction and query batches execute in
//!   parallel (one thread per server up to the machine's core count), and every
//!   operation is attributed to its server so that both the *wall-clock* time and a
//!   *simulated makespan* (the maximum per-server busy time, which is what a real
//!   cluster's latency would track) are reported. The simulated makespan is what the
//!   scaling figures (42–46) use for server counts beyond the local core count.
//! * [`topology`] — a faithful message-passing implementation of the Storm topology
//!   using `crossbeam` channels: worker threads own their SubgraphBolts, a QueryBolt
//!   broadcasts reference paths and merges the partial k-shortest paths returned by the
//!   workers. It exists to demonstrate (and test) that the algorithm really does
//!   decompose into the message flow of Figure 14; the benchmarks use [`cluster`]
//!   because in-process channel overhead is not representative of network cost.
//! * [`metrics`] — per-server load accounting and the utilisation-spread statistics
//!   reported in Section 6.6.

#![warn(missing_docs)]

pub mod cluster;
pub mod metrics;
pub mod topology;

pub use cluster::{Cluster, ClusterConfig, DistributedBuildReport, DistributedMaintenanceReport, DistributedQueryReport};
pub use metrics::{LoadBalanceReport, ServerLoad};
pub use topology::{StormTopology, TopologyConfig};
