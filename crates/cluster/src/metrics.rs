//! Per-server load accounting and load-balance statistics (Section 6.6).

use std::time::Duration;

/// Work attributed to one logical server.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerLoad {
    /// Total busy time attributed to this server.
    pub busy_time: Duration,
    /// Number of work items (subgraph builds, queries, or update batches) executed.
    pub items_processed: usize,
    /// Bytes of index state held by this server (for memory-balance reporting).
    pub memory_bytes: usize,
}

impl ServerLoad {
    /// Adds one work item of the given duration.
    pub fn record(&mut self, elapsed: Duration) {
        self.busy_time += elapsed;
        self.items_processed += 1;
    }
}

/// Load-balance summary over all servers.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalanceReport {
    /// Number of logical servers.
    pub num_servers: usize,
    /// Maximum per-server busy time (the simulated makespan).
    pub max_busy: Duration,
    /// Minimum per-server busy time.
    pub min_busy: Duration,
    /// Mean per-server busy time.
    pub mean_busy: Duration,
    /// `(max − min) / max` of busy time, as a fraction in `[0, 1]`. The paper reports
    /// this spread staying below 6 % for CPU and 2 % for memory.
    pub busy_spread: f64,
    /// `(max − min) / max` of per-server memory, as a fraction in `[0, 1]`.
    pub memory_spread: f64,
}

impl LoadBalanceReport {
    /// Computes the report from per-server loads.
    pub fn from_loads(loads: &[ServerLoad]) -> Self {
        assert!(!loads.is_empty(), "at least one server is required");
        let busy: Vec<Duration> = loads.iter().map(|l| l.busy_time).collect();
        let max_busy = *busy.iter().max().unwrap();
        let min_busy = *busy.iter().min().unwrap();
        let total: Duration = busy.iter().sum();
        let mean_busy = total / loads.len() as u32;
        let busy_spread = if max_busy.as_secs_f64() > 0.0 {
            (max_busy - min_busy).as_secs_f64() / max_busy.as_secs_f64()
        } else {
            0.0
        };
        let mem_max = loads.iter().map(|l| l.memory_bytes).max().unwrap();
        let mem_min = loads.iter().map(|l| l.memory_bytes).min().unwrap();
        let memory_spread =
            if mem_max > 0 { (mem_max - mem_min) as f64 / mem_max as f64 } else { 0.0 };
        LoadBalanceReport {
            num_servers: loads.len(),
            max_busy,
            min_busy,
            mean_busy,
            busy_spread,
            memory_spread,
        }
    }

    /// The simulated makespan: the longest per-server busy time. On a cluster with one
    /// server per thread this is what determines batch latency.
    pub fn simulated_makespan(&self) -> Duration {
        self.max_busy
    }
}

/// Assigns `items` (given by their load estimate) to `num_servers` servers using
/// longest-processing-time-first (LPT) greedy balancing, and returns for each item the
/// server it is assigned to. This mirrors the paper's "subgraphs are allocated to
/// workers on a many-to-one basis based on their load".
pub fn balanced_assignment(loads: &[usize], num_servers: usize) -> Vec<usize> {
    assert!(num_servers > 0, "need at least one server");
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(loads[i]));
    let mut server_load = vec![0usize; num_servers];
    let mut assignment = vec![0usize; loads.len()];
    for i in order {
        let target = (0..num_servers).min_by_key(|&s| server_load[s]).unwrap();
        assignment[i] = target;
        server_load[target] += loads[i];
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_busy_time() {
        let mut load = ServerLoad::default();
        load.record(Duration::from_millis(5));
        load.record(Duration::from_millis(15));
        assert_eq!(load.items_processed, 2);
        assert_eq!(load.busy_time, Duration::from_millis(20));
    }

    #[test]
    fn report_computes_spread() {
        let loads = vec![
            ServerLoad {
                busy_time: Duration::from_millis(100),
                items_processed: 1,
                memory_bytes: 100,
            },
            ServerLoad {
                busy_time: Duration::from_millis(80),
                items_processed: 1,
                memory_bytes: 90,
            },
            ServerLoad {
                busy_time: Duration::from_millis(90),
                items_processed: 1,
                memory_bytes: 95,
            },
        ];
        let report = LoadBalanceReport::from_loads(&loads);
        assert_eq!(report.num_servers, 3);
        assert_eq!(report.max_busy, Duration::from_millis(100));
        assert_eq!(report.min_busy, Duration::from_millis(80));
        assert!((report.busy_spread - 0.2).abs() < 1e-9);
        assert!((report.memory_spread - 0.1).abs() < 1e-9);
        assert_eq!(report.simulated_makespan(), Duration::from_millis(100));
    }

    #[test]
    fn report_handles_idle_servers() {
        let loads = vec![ServerLoad::default(), ServerLoad::default()];
        let report = LoadBalanceReport::from_loads(&loads);
        assert_eq!(report.busy_spread, 0.0);
        assert_eq!(report.memory_spread, 0.0);
    }

    #[test]
    fn balanced_assignment_spreads_load_evenly() {
        let loads = vec![10, 10, 10, 10, 40, 5, 5];
        let assignment = balanced_assignment(&loads, 2);
        assert_eq!(assignment.len(), loads.len());
        let mut per_server = vec![0usize; 2];
        for (i, &s) in assignment.iter().enumerate() {
            per_server[s] += loads[i];
        }
        let diff = per_server[0].abs_diff(per_server[1]);
        assert!(diff <= 10, "imbalance {diff} too large: {per_server:?}");
    }

    #[test]
    fn balanced_assignment_with_more_servers_than_items() {
        let loads = vec![3, 1];
        let assignment = balanced_assignment(&loads, 8);
        assert!(assignment.iter().all(|&s| s < 8));
        assert_ne!(assignment[0], assignment[1]);
    }
}
