//! MPMC unbounded channels with crossbeam's disconnect semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

/// Creates an unbounded MPMC channel, returning the sending and receiving halves.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        available: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

/// Error returned by [`Sender::send`] when every receiver has been dropped;
/// carries the unsent message back to the caller.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// The sending half of an unbounded channel; cloneable across threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `value`, failing only if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake blocked receivers so they can observe the disconnect.
            self.shared.available.notify_all();
        }
    }
}

/// The receiving half of an unbounded channel; cloneable across threads.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message is available or every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.available.wait(state).unwrap();
        }
    }

    /// Pops a message if one is ready, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        match state.queue.pop_front() {
            Some(value) => Ok(value),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_flow_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError(3)));
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<u32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
        for h in handles {
            h.join().unwrap();
        }
    }
}
