//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the [`channel`] module with the multi-producer multi-consumer
//! unbounded channel API the workspace uses (`unbounded`, cloneable
//! [`channel::Sender`] / [`channel::Receiver`], disconnect-aware `send` and
//! `recv`), implemented over a `Mutex<VecDeque>` + `Condvar`. Swap this path
//! dependency for the real crates.io `crossbeam` to regain the lock-free
//! implementation; the semantics observed by this workspace are identical.

#![warn(missing_docs)]

pub mod channel;
