//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the non-poisoning `lock()` / `read()` / `write()` API of
//! parking_lot on top of the standard-library primitives. Poisoned locks are
//! recovered rather than propagated, matching parking_lot's semantics of never
//! poisoning: a panic while holding the lock leaves the protected data in
//! whatever state the panicking thread left it.

#![warn(missing_docs)]

use std::sync;

/// Mutual exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
