//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to a crate registry, so this tiny local
//! crate supplies just enough of serde's surface for the workspace to compile:
//! the [`Serialize`] / [`Deserialize`] marker traits and the same-named no-op
//! derive macros from the sibling `serde_derive` shim. The derives emit no
//! code, so `#[derive(Serialize, Deserialize)]` annotations in the workspace
//! compile to plain markers; swap this path dependency for the real crates.io
//! `serde` (features = ["derive"]) to regain actual serialization support
//! without touching any annotated type.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
