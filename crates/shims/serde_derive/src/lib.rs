//! No-op `Serialize` / `Deserialize` derive macros for the offline serde shim.
//!
//! Each derive expands to nothing: the shim's traits carry blanket
//! implementations, so the annotated types need no generated code.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Expands to nothing; the shim's `Serialize` has a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the shim's `Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
