//! The deterministic RNG behind the proptest shim.

/// A SplitMix64 generator seeded from the test name, so every test draws a
/// reproducible input sequence without a persisted regression file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose seed is derived (FNV-1a) from `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= byte as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded draw; bias is negligible for test bounds.
        ((self.next_u64() >> 32).wrapping_mul(bound)) >> 32
    }

    /// Uniform draw in `[0, bound)` as `u32`.
    pub fn next_bounded_u32(&mut self, bound: u64) -> u32 {
        self.next_below(bound) as u32
    }

    /// Uniform draw in `[0, bound)` as `u64`.
    pub fn next_bounded_u64(&mut self, bound: u64) -> u64 {
        self.next_below(bound)
    }

    /// Uniform draw in `[0, bound)` as `usize`.
    pub fn next_bounded_usize(&mut self, bound: u64) -> usize {
        self.next_below(bound) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_draws_respect_bound() {
        let mut rng = TestRng::deterministic("bounded");
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..100 {
                assert!(rng.next_bounded_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn different_names_give_different_streams() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("beta");
        let sa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }
}
