//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate-registry access, so this local crate
//! reimplements the slice of proptest this workspace relies on: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` combinators, range and
//! tuple strategies, [`collection::vec`], [`Just`], [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest are deliberate and small:
//!
//! * inputs are generated from a deterministic per-test RNG (seeded from the
//!   test name), so runs are reproducible without a persisted failure file;
//! * there is no shrinking — a failing case reports the assertion message of
//!   the original input.
//!
//! Swapping this path dependency for crates.io `proptest` restores shrinking
//! without any change to the test sources.

#![warn(missing_docs)]

use std::ops::Range;

pub mod test_runner;

pub use test_runner::TestRng;

/// Why a generated test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it is skipped, not failed.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test aborts.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536, max_shrink_iters: 0 }
    }
}

/// A generator of test-case values.
///
/// The real proptest `Strategy` produces value *trees* that support shrinking;
/// this shim generates plain values.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $draw:ident),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {:?}", self);
                    let span = (self.end - self.start) as u64;
                    self.start + rng.$draw(span)
                }
            }
        )*
    };
}

impl_range_strategy!(u32 => next_bounded_u32, u64 => next_bounded_u64, usize => next_bounded_usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing vectors of `count` elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        count: usize,
    }

    /// Generates `Vec`s with exactly `count` elements from `element`.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.count).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests.
///
/// Accepts an optional leading `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items. Each generated test
/// draws inputs from a deterministic RNG until `config.cases` cases pass.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                let mut passed = 0u32;
                let mut rejected = 0u32;
                while passed < config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "too many prop_assume! rejections ({rejected})"
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!("property failed after {passed} passing case(s): {message}");
                        }
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// Like `assert!`, but reports the failing generated case instead of
/// unwinding mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}` ({} == {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Skips the current case (without failing) when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::TestRng::deterministic("map_and_flat_map_compose");
        let strategy = (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..10, n)).prop_map(|(n, v)| (n, v))
        });
        for _ in 0..100 {
            let (n, v) = strategy.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        let s = 0u64..1_000_000;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: arguments bind, assume rejects, asserts pass.
        #[test]
        fn macro_generates_working_tests(a in 0u32..50, b in 1u64..9) {
            prop_assume!(a != 13);
            prop_assert!(a < 50, "a out of range: {}", a);
            prop_assert_eq!(b.min(8), b);
        }
    }
}
