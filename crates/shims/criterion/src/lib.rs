//! Offline stand-in for the `criterion` crate.
//!
//! Implements the slice of criterion's API this workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`] and the
//! `criterion_group!` / `criterion_main!` macros — as a plain wall-clock
//! harness: each benchmark runs `sample_size` measured samples after one
//! warm-up and prints mean / min / max. There is no statistical analysis,
//! HTML report, or outlier rejection; swap this path dependency for crates.io
//! `criterion` to regain those without touching the bench sources.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. This shim re-runs setup before
/// every sample regardless of the hint, which is the conservative choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup re-run per sample).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to every benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, durations: Vec::with_capacity(samples) }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }
}

fn report(label: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{label}: no samples collected");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().unwrap();
    let max = durations.iter().max().unwrap();
    println!(
        "{label}: mean {:.3} ms, min {:.3} ms, max {:.3} ms ({} samples)",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
        durations.len()
    );
}

/// Top-level benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.default_sample_size }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.default_sample_size);
        f(&mut bencher);
        report(&name.into(), &bencher.durations);
        self
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of measured samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.durations);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher.durations);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(5);
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(b.durations.len(), 5);
        assert_eq!(runs, 6); // warm-up + 5 samples

        let mut b = Bencher::new(3);
        b.iter_batched(|| 21u64, |x| x * 2, BatchSize::LargeInput);
        assert_eq!(b.durations.len(), 3);
    }

    #[test]
    fn groups_run_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function("inner", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| b.iter(|| x + 1));
        group.finish();
        assert!(calls >= 2);
    }
}
