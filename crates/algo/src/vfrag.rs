//! Enumeration of paths by virtual-fragment count (Section 3.4).
//!
//! DTLP measures candidate bounding paths not by their (evolving) travel time but by
//! their number of *virtual fragments*: edge `e` contributes `w0(e)` vfrags, where
//! `w0(e)` is its initial weight. The vfrag count of a path never changes as traffic
//! evolves, which is precisely why bounding paths never need recomputation.
//!
//! [`VfragView`] presents a subgraph with vfrag counts as edge weights so the generic
//! KSP machinery can enumerate paths in non-decreasing vfrag order, and
//! [`fewest_vfrag_paths`] extracts one representative path per distinct vfrag count —
//! the bounding-path set `B_{i,j}` of the paper.

use crate::path::Path;
use crate::yen::KspEnumerator;
use ksp_graph::{GraphView, Subgraph, VertexId, Weight};

/// A view of a subgraph whose edge weights are the vfrag counts (initial weights).
#[derive(Debug, Clone, Copy)]
pub struct VfragView<'a> {
    subgraph: &'a Subgraph,
}

impl<'a> VfragView<'a> {
    /// Wraps a subgraph.
    pub fn new(subgraph: &'a Subgraph) -> Self {
        VfragView { subgraph }
    }
}

impl GraphView for VfragView<'_> {
    fn num_vertices(&self) -> usize {
        GraphView::num_vertices(self.subgraph)
    }

    fn contains_vertex(&self, v: VertexId) -> bool {
        self.subgraph.contains_vertex(v)
    }

    fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, Weight)) {
        self.subgraph.for_each_incident_edge(v, |to, e| f(to, Weight::from(e.initial_weight)));
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let mut found = None;
        self.subgraph.for_each_incident_edge(u, |to, e| {
            if to == v && found.is_none() {
                found = Some(Weight::from(e.initial_weight));
            }
        });
        found
    }
}

/// A path selected as a bounding-path candidate: its vertex sequence and vfrag count.
#[derive(Debug, Clone, PartialEq)]
pub struct VfragPath {
    /// The vertex sequence of the path (in global vertex ids).
    pub vertices: Vec<VertexId>,
    /// Total number of virtual fragments along the path (φ in the paper).
    pub vfrags: u64,
}

/// Enumerates paths between `source` and `target` inside `subgraph` in non-decreasing
/// vfrag order and returns one representative per distinct vfrag count, up to `xi`
/// distinct counts (the paper's `ξ`).
///
/// Enumeration also stops after `max_enumerated` paths have been examined. Truncating
/// early is always *safe*: every path not examined has a vfrag count at least as large
/// as the largest returned count (the enumeration is ordered), so the lower-bound
/// property of the resulting bound distances is preserved — the bounds merely become
/// looser, costing extra KSP-DG iterations rather than correctness.
pub fn fewest_vfrag_paths(
    subgraph: &Subgraph,
    source: VertexId,
    target: VertexId,
    xi: usize,
    max_enumerated: usize,
) -> Vec<VfragPath> {
    assert!(xi >= 1, "at least one bounding path per pair is required");
    let view = VfragView::new(subgraph);
    let mut enumerator = KspEnumerator::new(&view, source, target);
    let mut result: Vec<VfragPath> = Vec::with_capacity(xi);
    let mut examined = 0usize;
    while result.len() < xi && examined < max_enumerated {
        let Some(path) = enumerator.next_path() else { break };
        examined += 1;
        let vfrags = path.distance().value().round() as u64;
        if result.last().map(|p| p.vfrags) == Some(vfrags) {
            continue; // same count as the previous representative: skip duplicates
        }
        debug_assert!(result.last().map(|p| p.vfrags < vfrags).unwrap_or(true));
        result.push(VfragPath { vertices: path.vertices().to_vec(), vfrags });
    }
    result
}

/// Computes the vfrag count of an explicit path within a subgraph. Returns `None` if
/// an edge of the path is not present in the subgraph.
pub fn vfrag_count_of(subgraph: &Subgraph, vertices: &[VertexId]) -> Option<u64> {
    let view = VfragView::new(subgraph);
    let path = Path::from_vertices(&view, vertices.to_vec())?;
    Some(path.distance().value().round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::{GraphBuilder, PartitionConfig, Partitioner};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Builds the paper's subgraph SG4 (Figure 5a): vertices v13, v14, v16, v17, v18,
    /// v19 with the weights from the example. Mapped to ids 0..6:
    /// v13=0, v14=1, v16=2, v17=3, v18=4, v19=5.
    fn paper_sg4() -> Subgraph {
        let mut b = GraphBuilder::undirected(6);
        b.edge(0, 2, 5) // v13-v16, weight 5
            .edge(2, 1, 3) // v16-v14, weight 3
            .edge(0, 4, 3) // v13-v18, weight 3
            .edge(4, 3, 3) // v18-v17, weight 3 (via v19? paper: v18-v19 3, v17-v16 2, v17-v18 2)
            .edge(3, 2, 2) // v17-v16, weight 2
            .edge(4, 5, 3) // v18-v19, weight 3
            .edge(3, 4, 2); // duplicate guard (v17-v18 2) -- first entry wins
        let g = b.build().unwrap();
        // Single subgraph covering everything.
        let sg = Partitioner::new(PartitionConfig::with_max_vertices(100))
            .partition(&g)
            .unwrap()
            .into_subgraphs()
            .remove(0);
        std::sync::Arc::try_unwrap(sg).expect("sole handle")
    }

    #[test]
    fn vfrag_view_reports_initial_weights() {
        let sg = paper_sg4();
        let view = VfragView::new(&sg);
        assert_eq!(view.edge_weight(v(0), v(2)), Some(Weight::new(5.0)));
        assert_eq!(view.edge_weight(v(3), v(2)), Some(Weight::new(2.0)));
        assert!(view.contains_vertex(v(5)));
    }

    #[test]
    fn paper_example_bounding_paths_between_v13_and_v14() {
        // Example 3 of the paper: with ξ = 2, the bounding paths between v13 and v14
        // are ⟨v13,v16,v14⟩ (8 vfrags) and ⟨v13,v18,v17,v16,v14⟩ (11 vfrags).
        let sg = paper_sg4();
        let paths = fewest_vfrag_paths(&sg, v(0), v(1), 2, 64);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].vertices, vec![v(0), v(2), v(1)]);
        assert_eq!(paths[0].vfrags, 8);
        assert_eq!(paths[1].vertices, vec![v(0), v(4), v(3), v(2), v(1)]);
        assert_eq!(paths[1].vfrags, 11);
    }

    #[test]
    fn xi_one_returns_only_the_fewest_vfrag_path() {
        let sg = paper_sg4();
        let paths = fewest_vfrag_paths(&sg, v(0), v(1), 1, 64);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].vfrags, 8);
    }

    #[test]
    fn counts_are_strictly_increasing_and_deduplicated() {
        // A 2x3 grid with unit initial weights has several equal-hop paths; the
        // representatives must have strictly increasing vfrag counts.
        let mut b = GraphBuilder::undirected(6);
        b.edge(0, 1, 1).edge(1, 2, 1).edge(3, 4, 1).edge(4, 5, 1);
        b.edge(0, 3, 1).edge(1, 4, 1).edge(2, 5, 1);
        let g = b.build().unwrap();
        let sg = Partitioner::new(PartitionConfig::with_max_vertices(100))
            .partition(&g)
            .unwrap()
            .into_subgraphs()
            .remove(0);
        let paths = fewest_vfrag_paths(&sg, v(0), v(5), 5, 128);
        assert!(!paths.is_empty());
        for w in paths.windows(2) {
            assert!(w[0].vfrags < w[1].vfrags);
        }
        assert_eq!(paths[0].vfrags, 3);
    }

    #[test]
    fn truncation_by_max_enumerated_is_safe_and_bounded() {
        let sg = paper_sg4();
        let truncated = fewest_vfrag_paths(&sg, v(0), v(1), 5, 1);
        assert_eq!(truncated.len(), 1);
        assert_eq!(truncated[0].vfrags, 8);
    }

    #[test]
    fn disconnected_pair_yields_no_paths() {
        let mut b = GraphBuilder::undirected(4);
        b.edge(0, 1, 2).edge(2, 3, 2);
        let g = b.build().unwrap();
        let sg = Partitioner::new(PartitionConfig::with_max_vertices(100))
            .partition(&g)
            .unwrap()
            .into_subgraphs()
            .remove(0);
        assert!(fewest_vfrag_paths(&sg, v(0), v(3), 3, 32).is_empty());
    }

    #[test]
    fn vfrag_count_of_matches_enumeration() {
        let sg = paper_sg4();
        assert_eq!(vfrag_count_of(&sg, &[v(0), v(2), v(1)]), Some(8));
        assert_eq!(vfrag_count_of(&sg, &[v(0), v(1)]), None);
    }
}
