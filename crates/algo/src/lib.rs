//! Path-algorithm substrate for the KSP-DG system.
//!
//! Everything in this crate operates on the [`ksp_graph::GraphView`] abstraction, so
//! the same implementations run on the full graph, on partitioned subgraphs and on the
//! DTLP skeleton graph:
//!
//! * [`path`] — the simple-path representation shared across the system, including the
//!   loop-free concatenation used when joining partial paths (Algorithm 4, line 9).
//! * [`dijkstra`] — binary-heap Dijkstra: point-to-point, single-source, and a variant
//!   with banned vertices/edges that serves as the spur-path search inside Yen's
//!   algorithm.
//! * [`yen`] — Yen's k-shortest-simple-paths algorithm [27], exposed both as a lazy
//!   enumerator (used by KSP-DG to produce reference paths one at a time) and as a
//!   convenience function.
//! * [`findksp`] — the FindKSP baseline [21]: deviation-based KSP guided by a shortest
//!   path tree rooted at the destination, so spur searches are goal-directed.
//! * [`vfrag`] — enumeration of paths by *virtual-fragment count* (fewest-vfrag paths),
//!   the primitive DTLP uses to select bounding paths (Section 3.4).

#![warn(missing_docs)]

pub mod dijkstra;
pub mod findksp;
pub mod path;
pub mod vfrag;
pub mod yen;

pub use dijkstra::{
    dijkstra_all, dijkstra_path, dijkstra_path_with_bans, dijkstra_settled_within, DistanceMap,
};
pub use findksp::{find_ksp, FindKsp};
pub use path::Path;
pub use vfrag::{fewest_vfrag_paths, VfragView};
pub use yen::{yen_ksp, KspEnumerator};
