//! Simple paths and their manipulation (Definition 3 of the paper).

use ksp_graph::{GraphView, VertexId, Weight};
use std::collections::HashSet;
use std::fmt;

/// A simple (loop-free) path through the graph, together with its distance.
///
/// The distance is carried with the path because the graph is dynamic: a path computed
/// against one snapshot keeps the distance it had at that snapshot, which is exactly
/// the semantics the paper gives query answers (Section 2).
#[derive(Clone, PartialEq)]
pub struct Path {
    vertices: Vec<VertexId>,
    distance: Weight,
}

impl Path {
    /// Creates a path from its vertex sequence and a pre-computed distance.
    ///
    /// # Panics
    ///
    /// Panics if the vertex sequence is empty or contains a repeated vertex; only
    /// simple paths are meaningful in the KSP problem (Definition 3).
    pub fn new(vertices: Vec<VertexId>, distance: Weight) -> Self {
        assert!(!vertices.is_empty(), "a path must contain at least one vertex");
        debug_assert!(Self::is_simple(&vertices), "paths must be simple (no repeated vertices)");
        Path { vertices, distance }
    }

    /// Creates a single-vertex path with zero distance.
    pub fn trivial(v: VertexId) -> Self {
        Path { vertices: vec![v], distance: Weight::ZERO }
    }

    /// Builds a path from a vertex sequence, computing its distance from `view`.
    ///
    /// Returns `None` if any consecutive pair is not connected in the view or the
    /// sequence is not simple.
    pub fn from_vertices<G: GraphView>(view: &G, vertices: Vec<VertexId>) -> Option<Self> {
        if vertices.is_empty() || !Self::is_simple(&vertices) {
            return None;
        }
        let mut distance = Weight::ZERO;
        for pair in vertices.windows(2) {
            distance += view.edge_weight(pair[0], pair[1])?;
        }
        Some(Path { vertices, distance })
    }

    /// The vertex sequence of the path.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The source vertex.
    #[inline]
    pub fn source(&self) -> VertexId {
        self.vertices[0]
    }

    /// The destination vertex.
    #[inline]
    pub fn target(&self) -> VertexId {
        *self.vertices.last().expect("paths are non-empty")
    }

    /// The stored distance of the path.
    #[inline]
    pub fn distance(&self) -> Weight {
        self.distance
    }

    /// Number of edges on the path.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.vertices.len() - 1
    }

    /// Number of vertices on the path.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the path visits the given vertex.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// Whether a vertex sequence is simple (contains no repeated vertex).
    pub fn is_simple(vertices: &[VertexId]) -> bool {
        let mut seen = HashSet::with_capacity(vertices.len());
        vertices.iter().all(|v| seen.insert(*v))
    }

    /// Iterates over the consecutive edges of the path as vertex pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices.windows(2).map(|w| (w[0], w[1]))
    }

    /// The prefix of the path ending at index `i` (inclusive), with its distance
    /// recomputed from `view`. Used by Yen's algorithm to form root paths.
    pub fn prefix<G: GraphView>(&self, view: &G, i: usize) -> Option<Path> {
        Path::from_vertices(view, self.vertices[..=i].to_vec())
    }

    /// Concatenates two paths that share exactly one vertex: the target of `self` must
    /// equal the source of `other`. Returns `None` if the concatenation would repeat a
    /// vertex (i.e. would not be a simple path).
    ///
    /// This is the join operation (⨝) used when assembling candidate KSPs from partial
    /// k shortest paths in Algorithm 4.
    pub fn concat(&self, other: &Path) -> Option<Path> {
        if self.target() != other.source() {
            return None;
        }
        let mut seen: HashSet<VertexId> = self.vertices.iter().copied().collect();
        for v in &other.vertices[1..] {
            if !seen.insert(*v) {
                return None;
            }
        }
        let mut vertices = self.vertices.clone();
        vertices.extend_from_slice(&other.vertices[1..]);
        Some(Path { vertices, distance: self.distance + other.distance })
    }

    /// Recomputes the distance of the path against (a possibly newer view of) the
    /// graph. Returns `None` if an edge of the path no longer exists in the view.
    pub fn recompute_distance<G: GraphView>(&self, view: &G) -> Option<Weight> {
        let mut d = Weight::ZERO;
        for (u, v) in self.edges() {
            d += view.edge_weight(u, v)?;
        }
        Some(d)
    }

    /// Returns a copy of the path carrying a new distance (e.g. after weights changed).
    pub fn with_distance(&self, distance: Weight) -> Path {
        Path { vertices: self.vertices.clone(), distance }
    }

    /// Whether two paths visit the same vertex sequence (ignoring distance).
    pub fn same_route(&self, other: &Path) -> bool {
        self.vertices == other.vertices
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path[{:.3}](", self.distance.value())?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Sorts paths by distance (ties broken by the vertex sequence so the order is total
/// and deterministic), removes duplicate routes, and truncates to `k`.
///
/// This is the "keep only the k shortest paths" step that appears in Algorithms 3 and 4.
pub fn keep_k_shortest(paths: &mut Vec<Path>, k: usize) {
    paths.sort_by(|a, b| {
        a.distance().cmp(&b.distance()).then_with(|| a.vertices().cmp(b.vertices()))
    });
    paths.dedup_by(|a, b| a.same_route(b));
    paths.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn line_graph() -> ksp_graph::DynamicGraph {
        let mut b = GraphBuilder::undirected(5);
        b.edge(0, 1, 2).edge(1, 2, 3).edge(2, 3, 4).edge(3, 4, 5);
        b.build().unwrap()
    }

    #[test]
    fn from_vertices_computes_distance() {
        let g = line_graph();
        let p = Path::from_vertices(&g, vec![v(0), v(1), v(2), v(3)]).unwrap();
        assert_eq!(p.distance(), Weight::new(9.0));
        assert_eq!(p.num_edges(), 3);
        assert_eq!(p.source(), v(0));
        assert_eq!(p.target(), v(3));
    }

    #[test]
    fn from_vertices_rejects_missing_edges_and_loops() {
        let g = line_graph();
        assert!(Path::from_vertices(&g, vec![v(0), v(2)]).is_none());
        assert!(Path::from_vertices(&g, vec![v(0), v(1), v(0)]).is_none());
        assert!(Path::from_vertices(&g, vec![]).is_none());
    }

    #[test]
    fn concat_joins_at_shared_vertex() {
        let g = line_graph();
        let a = Path::from_vertices(&g, vec![v(0), v(1), v(2)]).unwrap();
        let b = Path::from_vertices(&g, vec![v(2), v(3), v(4)]).unwrap();
        let joined = a.concat(&b).unwrap();
        assert_eq!(joined.vertices(), &[v(0), v(1), v(2), v(3), v(4)]);
        assert_eq!(joined.distance(), Weight::new(14.0));
    }

    #[test]
    fn concat_rejects_mismatched_endpoints() {
        let g = line_graph();
        let a = Path::from_vertices(&g, vec![v(0), v(1)]).unwrap();
        let b = Path::from_vertices(&g, vec![v(2), v(3)]).unwrap();
        assert!(a.concat(&b).is_none());
    }

    #[test]
    fn concat_rejects_loops() {
        let g = line_graph();
        let a = Path::from_vertices(&g, vec![v(0), v(1), v(2)]).unwrap();
        let b = Path::from_vertices(&g, vec![v(2), v(1)]).unwrap();
        assert!(a.concat(&b).is_none(), "concatenation revisiting v1 must be rejected");
    }

    #[test]
    fn trivial_path_concatenates_as_identity() {
        let g = line_graph();
        let a = Path::trivial(v(2));
        let b = Path::from_vertices(&g, vec![v(2), v(3)]).unwrap();
        let joined = a.concat(&b).unwrap();
        assert_eq!(joined.vertices(), b.vertices());
        assert_eq!(joined.distance(), b.distance());
    }

    #[test]
    fn prefix_recomputes_distance() {
        let g = line_graph();
        let p = Path::from_vertices(&g, vec![v(0), v(1), v(2), v(3)]).unwrap();
        let pre = p.prefix(&g, 1).unwrap();
        assert_eq!(pre.vertices(), &[v(0), v(1)]);
        assert_eq!(pre.distance(), Weight::new(2.0));
    }

    #[test]
    fn recompute_distance_tracks_weight_changes() {
        let mut g = line_graph();
        let p = Path::from_vertices(&g, vec![v(0), v(1), v(2)]).unwrap();
        assert_eq!(p.distance(), Weight::new(5.0));
        let e = g.edge_between(v(0), v(1)).unwrap();
        g.set_weight(e, Weight::new(10.0)).unwrap();
        assert_eq!(p.recompute_distance(&g), Some(Weight::new(13.0)));
        // The stored distance does not silently change.
        assert_eq!(p.distance(), Weight::new(5.0));
        assert_eq!(p.with_distance(Weight::new(13.0)).distance(), Weight::new(13.0));
    }

    #[test]
    fn keep_k_shortest_sorts_dedups_and_truncates() {
        let g = line_graph();
        let p1 = Path::from_vertices(&g, vec![v(0), v(1)]).unwrap(); // 2
        let p2 = Path::from_vertices(&g, vec![v(0), v(1), v(2)]).unwrap(); // 5
        let p3 = Path::from_vertices(&g, vec![v(0), v(1), v(2), v(3)]).unwrap(); // 9
        let mut paths = vec![p3.clone(), p1.clone(), p2.clone(), p1.clone()];
        keep_k_shortest(&mut paths, 2);
        assert_eq!(paths.len(), 2);
        assert!(paths[0].same_route(&p1));
        assert!(paths[1].same_route(&p2));
    }

    #[test]
    fn display_shows_route_and_distance() {
        let g = line_graph();
        let p = Path::from_vertices(&g, vec![v(0), v(1)]).unwrap();
        let s = format!("{p}");
        assert!(s.contains("v0"));
        assert!(s.contains("v1"));
        assert!(s.contains("2.000"));
    }

    #[test]
    fn edge_iterator_yields_consecutive_pairs() {
        let g = line_graph();
        let p = Path::from_vertices(&g, vec![v(0), v(1), v(2)]).unwrap();
        let edges: Vec<_> = p.edges().collect();
        assert_eq!(edges, vec![(v(0), v(1)), (v(1), v(2))]);
    }
}
