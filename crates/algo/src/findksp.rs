//! The FindKSP baseline [21]: deviation-based KSP guided by a shortest path tree.
//!
//! FindKSP (Liu et al., *Finding top-k shortest paths with diversity*, TKDE 2018)
//! improves on Yen's algorithm by maintaining a shortest path tree (SPT) rooted at the
//! destination and using it to direct the search for deviation (spur) paths toward the
//! destination. We reproduce the performance-relevant core of that idea: every spur
//! search is an A* search whose heuristic is the exact distance-to-destination taken
//! from the SPT, so it settles only a small neighbourhood instead of a Dijkstra ball.
//! The asymptotics and, more importantly for Figure 39, the growth with `k` are
//! substantially better than plain Yen while the result set is identical.

use crate::path::Path;
use crate::yen::yen_ksp;
use ksp_graph::{DynamicGraph, GraphView, VertexId, Weight};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Enumerator of k shortest simple paths using SPT-guided deviations.
pub struct FindKsp<'a> {
    graph: &'a DynamicGraph,
    source: VertexId,
    target: VertexId,
    /// Exact distance from every vertex to the target (the reverse SPT).
    dist_to_target: HashMap<VertexId, Weight>,
    produced: Vec<Path>,
    candidates: BinaryHeap<Reverse<Candidate>>,
    seen_routes: HashSet<Vec<VertexId>>,
    exhausted: bool,
    /// Number of vertices settled across all spur searches (cost accounting).
    settled_vertices: usize,
}

#[derive(PartialEq, Eq)]
struct Candidate {
    distance: Weight,
    vertices: Vec<VertexId>,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance.cmp(&other.distance).then_with(|| self.vertices.cmp(&other.vertices))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> FindKsp<'a> {
    /// Creates the enumerator, building the reverse shortest path tree from `target`.
    pub fn new(graph: &'a DynamicGraph, source: VertexId, target: VertexId) -> Self {
        let dist_to_target = reverse_distances(graph, target);
        FindKsp {
            graph,
            source,
            target,
            dist_to_target,
            produced: Vec::new(),
            candidates: BinaryHeap::new(),
            seen_routes: HashSet::new(),
            exhausted: false,
            settled_vertices: 0,
        }
    }

    /// Number of vertices settled across all A* spur searches so far.
    pub fn settled_vertices(&self) -> usize {
        self.settled_vertices
    }

    /// The paths produced so far, ascending by distance.
    pub fn produced(&self) -> &[Path] {
        &self.produced
    }

    /// Produces the next shortest simple path, or `None` if exhausted.
    pub fn next_path(&mut self) -> Option<Path> {
        if self.exhausted {
            return None;
        }
        if self.produced.is_empty() {
            let first = if self.source == self.target {
                Some(Path::trivial(self.source))
            } else {
                self.astar(self.source, &HashSet::new(), &HashSet::new())
            };
            return match first {
                Some(p) => {
                    self.seen_routes.insert(p.vertices().to_vec());
                    self.produced.push(p.clone());
                    Some(p)
                }
                None => {
                    self.exhausted = true;
                    None
                }
            };
        }

        let prev = self.produced.last().expect("non-empty").clone();
        if prev.num_edges() > 0 {
            self.generate_deviations(&prev);
        }
        match self.candidates.pop() {
            Some(Reverse(c)) => {
                let p = Path::new(c.vertices, c.distance);
                self.produced.push(p.clone());
                Some(p)
            }
            None => {
                self.exhausted = true;
                None
            }
        }
    }

    /// Produces up to `k` paths.
    pub fn take_up_to(&mut self, k: usize) -> Vec<Path> {
        while self.produced.len() < k {
            if self.next_path().is_none() {
                break;
            }
        }
        self.produced.iter().take(k).cloned().collect()
    }

    fn generate_deviations(&mut self, prev: &Path) {
        let prev_vertices = prev.vertices();
        for i in 0..prev.num_edges() {
            let spur_node = prev_vertices[i];
            let root_vertices = &prev_vertices[..=i];

            let mut banned_edges: HashSet<(VertexId, VertexId)> = HashSet::new();
            for p in &self.produced {
                let pv = p.vertices();
                if pv.len() > i + 1 && &pv[..=i] == root_vertices {
                    banned_edges.insert((pv[i], pv[i + 1]));
                    banned_edges.insert((pv[i + 1], pv[i]));
                }
            }
            let banned_vertices: HashSet<VertexId> = root_vertices[..i].iter().copied().collect();

            let Some(spur_path) = self.astar(spur_node, &banned_vertices, &banned_edges) else {
                continue;
            };

            let mut vertices = root_vertices.to_vec();
            vertices.extend_from_slice(&spur_path.vertices()[1..]);
            if !Path::is_simple(&vertices) || self.seen_routes.contains(&vertices) {
                continue;
            }
            let root_distance: Weight = root_vertices
                .windows(2)
                .map(|w| self.graph.edge_weight(w[0], w[1]).expect("root edge exists"))
                .sum();
            let distance = root_distance + spur_path.distance();
            self.seen_routes.insert(vertices.clone());
            self.candidates.push(Reverse(Candidate { distance, vertices }));
        }
    }

    /// Goal-directed A* from `from` to the target using the exact distance-to-target
    /// heuristic from the reverse SPT. The heuristic is admissible and consistent on
    /// the unbanned graph; banning edges/vertices only removes paths, so it remains
    /// admissible and the search stays correct.
    fn astar(
        &mut self,
        from: VertexId,
        banned_vertices: &HashSet<VertexId>,
        banned_edges: &HashSet<(VertexId, VertexId)>,
    ) -> Option<Path> {
        if banned_vertices.contains(&from) {
            return None;
        }
        let h = |v: VertexId, map: &HashMap<VertexId, Weight>| {
            map.get(&v).copied().unwrap_or(Weight::INFINITY)
        };
        if !h(from, &self.dist_to_target).is_finite() {
            // Target unreachable from here even without bans.
            return None;
        }

        #[derive(PartialEq, Eq)]
        struct Entry {
            f: Weight,
            g: Weight,
            vertex: VertexId,
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.f
                    .cmp(&other.f)
                    .then_with(|| self.g.cmp(&other.g))
                    .then_with(|| self.vertex.cmp(&other.vertex))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut open: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        let mut g_score: HashMap<VertexId, Weight> = HashMap::new();
        let mut parent: HashMap<VertexId, VertexId> = HashMap::new();
        let mut closed: HashSet<VertexId> = HashSet::new();
        g_score.insert(from, Weight::ZERO);
        open.push(Reverse(Entry {
            f: h(from, &self.dist_to_target),
            g: Weight::ZERO,
            vertex: from,
        }));

        while let Some(Reverse(Entry { g, vertex, .. })) = open.pop() {
            if closed.contains(&vertex) {
                continue;
            }
            closed.insert(vertex);
            self.settled_vertices += 1;
            if vertex == self.target {
                // Reconstruct.
                let mut vertices = vec![vertex];
                let mut cur = vertex;
                while cur != from {
                    cur = parent[&cur];
                    vertices.push(cur);
                }
                vertices.reverse();
                return Some(Path::new(vertices, g));
            }
            let dist_map = &self.dist_to_target;
            let mut neighbors: Vec<(VertexId, Weight)> = Vec::new();
            self.graph.for_each_neighbor(vertex, |to, w| neighbors.push((to, w)));
            for (to, w) in neighbors {
                if closed.contains(&to)
                    || banned_vertices.contains(&to)
                    || banned_edges.contains(&(vertex, to))
                {
                    continue;
                }
                let tentative = g + w;
                let better = match g_score.get(&to) {
                    Some(&existing) => tentative < existing,
                    None => true,
                };
                if better {
                    g_score.insert(to, tentative);
                    parent.insert(to, vertex);
                    open.push(Reverse(Entry {
                        f: tentative + h(to, dist_map),
                        g: tentative,
                        vertex: to,
                    }));
                }
            }
        }
        None
    }
}

/// Exact distances from every vertex to `target`, i.e. a shortest path tree rooted at
/// the destination. For directed graphs this searches the reversed graph.
fn reverse_distances(graph: &DynamicGraph, target: VertexId) -> HashMap<VertexId, Weight> {
    if !graph.is_directed() {
        let map = crate::dijkstra::dijkstra_all(graph, target);
        return map.iter().collect();
    }
    // Build reverse adjacency once and run Dijkstra over it.
    let mut radj: Vec<Vec<(VertexId, Weight)>> = vec![Vec::new(); graph.num_vertices()];
    for (_, e) in graph.edges() {
        radj[e.v.index()].push((e.u, e.current_weight));
    }
    struct Reversed<'g> {
        radj: &'g [Vec<(VertexId, Weight)>],
    }
    impl GraphView for Reversed<'_> {
        fn num_vertices(&self) -> usize {
            self.radj.len()
        }
        fn contains_vertex(&self, v: VertexId) -> bool {
            v.index() < self.radj.len()
        }
        fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, Weight)) {
            for &(to, w) in &self.radj[v.index()] {
                f(to, w);
            }
        }
        fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
            self.radj[u.index()].iter().find(|&&(to, _)| to == v).map(|&(_, w)| w)
        }
    }
    let reversed = Reversed { radj: &radj };
    crate::dijkstra::dijkstra_all(&reversed, target).iter().collect()
}

/// Convenience wrapper: the `k` shortest simple paths from `source` to `target`.
pub fn find_ksp(graph: &DynamicGraph, source: VertexId, target: VertexId, k: usize) -> Vec<Path> {
    FindKsp::new(graph, source, target).take_up_to(k)
}

/// Debug helper used by tests and benchmarks: checks FindKSP and Yen agree on the
/// distances of the k shortest paths.
pub fn agrees_with_yen(graph: &DynamicGraph, source: VertexId, target: VertexId, k: usize) -> bool {
    let a = find_ksp(graph, source, target, k);
    let b = yen_ksp(graph, source, target, k);
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.distance().approx_eq(y.distance()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::GraphBuilder;
    use ksp_workload::{RoadNetworkConfig, RoadNetworkGenerator, Xoshiro256};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn yen_wikipedia_graph() -> DynamicGraph {
        let mut b = GraphBuilder::directed(6);
        b.edge(0, 1, 3).edge(0, 2, 2).edge(1, 3, 4).edge(2, 1, 1).edge(2, 3, 2).edge(2, 4, 3);
        b.edge(3, 4, 2).edge(3, 5, 1).edge(4, 5, 2);
        b.build().unwrap()
    }

    #[test]
    fn matches_yen_on_the_classic_example() {
        let g = yen_wikipedia_graph();
        let paths = find_ksp(&g, v(0), v(5), 3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].distance(), Weight::new(5.0));
        assert_eq!(paths[1].distance(), Weight::new(7.0));
        assert_eq!(paths[2].distance(), Weight::new(8.0));
        assert!(agrees_with_yen(&g, v(0), v(5), 6));
    }

    #[test]
    fn matches_yen_on_random_road_networks() {
        let net =
            RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(220)).generate(17).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..8 {
            let s = v(rng.next_bounded(net.graph.num_vertices() as u64) as u32);
            let t = v(rng.next_bounded(net.graph.num_vertices() as u64) as u32);
            if s == t {
                continue;
            }
            assert!(agrees_with_yen(&net.graph, s, t, 4), "mismatch for {s}->{t}");
        }
    }

    #[test]
    fn unreachable_target_returns_empty() {
        let mut b = GraphBuilder::undirected(4);
        b.edge(0, 1, 1).edge(2, 3, 1);
        let g = b.build().unwrap();
        assert!(find_ksp(&g, v(0), v(3), 3).is_empty());
    }

    #[test]
    fn trivial_query_returns_single_vertex_path() {
        let g = yen_wikipedia_graph();
        let paths = find_ksp(&g, v(1), v(1), 2);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].num_edges(), 0);
    }

    #[test]
    fn directed_reverse_spt_respects_direction() {
        // 0 -> 1 -> 2, but no way back: from 2 nothing is reachable.
        let mut b = GraphBuilder::directed(3);
        b.edge(0, 1, 1).edge(1, 2, 1);
        let g = b.build().unwrap();
        assert_eq!(find_ksp(&g, v(0), v(2), 2).len(), 1);
        assert!(find_ksp(&g, v(2), v(0), 2).is_empty());
    }

    #[test]
    fn spt_guidance_settles_fewer_vertices_than_unguided_yen_on_a_corridor() {
        // A long corridor with a small detour near the start. A* guided to the target
        // should not explore the whole corridor for every spur search.
        let n = 200u32;
        let mut b = GraphBuilder::undirected(n as usize + 2);
        for i in 0..n {
            b.edge(i, i + 1, 1);
        }
        // Detour near the start.
        b.edge(0, n + 1, 1);
        b.edge(n + 1, 2, 1);
        let g = b.build().unwrap();
        let mut f = FindKsp::new(&g, v(0), v(n));
        let paths = f.take_up_to(2);
        assert_eq!(paths.len(), 2);
        // The A* searches should settle on the order of the corridor length per search,
        // not corridor length × number of spur positions.
        assert!(
            f.settled_vertices() < 5 * n as usize,
            "settled {} vertices, guidance appears ineffective",
            f.settled_vertices()
        );
    }

    #[test]
    fn produced_paths_are_sorted_and_simple() {
        let net =
            RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(150)).generate(23).unwrap();
        let paths = find_ksp(&net.graph, v(1), v(100), 6);
        for w in paths.windows(2) {
            assert!(w[0].distance() <= w[1].distance());
        }
        for p in &paths {
            assert!(Path::is_simple(p.vertices()));
        }
    }
}
