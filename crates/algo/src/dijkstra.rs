//! Binary-heap Dijkstra searches over any [`GraphView`].
//!
//! Scratch state is kept in hash maps keyed by vertex id rather than dense arrays, so
//! running a search confined to a small subgraph costs time and memory proportional to
//! the subgraph — not to the full road network — which matters because DTLP runs one
//! search per pair of boundary vertices per subgraph.

use crate::path::Path;
use ksp_graph::{GraphView, VertexId, Weight};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Result of a single-source Dijkstra: distances and predecessor pointers.
#[derive(Debug, Clone, Default)]
pub struct DistanceMap {
    source: Option<VertexId>,
    dist: HashMap<VertexId, Weight>,
    parent: HashMap<VertexId, VertexId>,
}

impl DistanceMap {
    /// The source vertex of the search.
    pub fn source(&self) -> Option<VertexId> {
        self.source
    }

    /// The distance from the source to `v`, or [`Weight::INFINITY`] if unreachable.
    pub fn distance(&self, v: VertexId) -> Weight {
        self.dist.get(&v).copied().unwrap_or(Weight::INFINITY)
    }

    /// Whether `v` was reached by the search.
    pub fn is_reached(&self, v: VertexId) -> bool {
        self.dist.contains_key(&v)
    }

    /// Number of vertices reached (including the source).
    pub fn num_reached(&self) -> usize {
        self.dist.len()
    }

    /// Iterates over all reached vertices and their distances.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.dist.iter().map(|(&v, &d)| (v, d))
    }

    /// Reconstructs the shortest path from the source to `v`, if `v` was reached.
    pub fn path_to(&self, v: VertexId) -> Option<Path> {
        let source = self.source?;
        if !self.is_reached(v) {
            return None;
        }
        let mut vertices = vec![v];
        let mut cur = v;
        while cur != source {
            cur = *self.parent.get(&cur)?;
            vertices.push(cur);
        }
        vertices.reverse();
        Some(Path::new(vertices, self.distance(v)))
    }
}

#[derive(PartialEq, Eq)]
struct HeapEntry {
    dist: Weight,
    vertex: VertexId,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist.cmp(&other.dist).then_with(|| self.vertex.cmp(&other.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs a full single-source Dijkstra from `source` over `view`.
pub fn dijkstra_all<G: GraphView>(view: &G, source: VertexId) -> DistanceMap {
    dijkstra_internal(view, source, None, &HashSet::new(), &HashSet::new())
}

/// Computes the shortest path from `source` to `target`, stopping as soon as the
/// target is settled. Returns `None` if `target` is unreachable.
pub fn dijkstra_path<G: GraphView>(view: &G, source: VertexId, target: VertexId) -> Option<Path> {
    let map = dijkstra_internal(view, source, Some(target), &HashSet::new(), &HashSet::new());
    map.path_to(target)
}

/// Computes the shortest path from `source` to `target` avoiding the banned vertices
/// and the banned (directed) edges. Used as the spur-path search inside Yen's
/// algorithm; for undirected views a banned edge `(u, v)` also bans traversal `v → u`
/// only if the caller inserts both orientations.
pub fn dijkstra_path_with_bans<G: GraphView>(
    view: &G,
    source: VertexId,
    target: VertexId,
    banned_vertices: &HashSet<VertexId>,
    banned_edges: &HashSet<(VertexId, VertexId)>,
) -> Option<Path> {
    if banned_vertices.contains(&source) || banned_vertices.contains(&target) {
        return None;
    }
    let map = dijkstra_internal(view, source, Some(target), banned_vertices, banned_edges);
    map.path_to(target)
}

/// Settles vertices outward from `source` until the next vertex would be at
/// distance `bound` or more, returning every vertex settled — i.e. exactly the
/// set `{v : dist(source, v) < bound}`.
///
/// This is the *survival sweep* of the query-trace machinery: after a KSP
/// query finishes with a k-th answer distance `T`, sweeping the skeleton
/// overlay to `T` enumerates every skeleton vertex through which a path
/// shorter than `T` could possibly route. Any region outside the sweep is
/// provably too far to ever change the answer, which is what lets a cached
/// result survive epoch publishes that only dirty far-away subgraphs.
pub fn dijkstra_settled_within<G: GraphView>(
    view: &G,
    source: VertexId,
    bound: Weight,
) -> Vec<VertexId> {
    let mut settled_list = Vec::new();
    if !view.contains_vertex(source) || Weight::ZERO >= bound {
        return settled_list;
    }
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
    let mut dist: HashMap<VertexId, Weight> = HashMap::new();
    let mut settled: HashSet<VertexId> = HashSet::new();
    dist.insert(source, Weight::ZERO);
    heap.push(Reverse(HeapEntry { dist: Weight::ZERO, vertex: source }));
    while let Some(Reverse(HeapEntry { dist: d, vertex })) = heap.pop() {
        if settled.contains(&vertex) {
            continue;
        }
        if d >= bound {
            break;
        }
        settled.insert(vertex);
        settled_list.push(vertex);
        view.for_each_neighbor(vertex, |to, w| {
            if settled.contains(&to) {
                return;
            }
            let candidate = d + w;
            if candidate >= bound {
                return;
            }
            let better = match dist.get(&to) {
                Some(&existing) => candidate < existing,
                None => true,
            };
            if better {
                dist.insert(to, candidate);
                heap.push(Reverse(HeapEntry { dist: candidate, vertex: to }));
            }
        });
    }
    settled_list
}

fn dijkstra_internal<G: GraphView>(
    view: &G,
    source: VertexId,
    target: Option<VertexId>,
    banned_vertices: &HashSet<VertexId>,
    banned_edges: &HashSet<(VertexId, VertexId)>,
) -> DistanceMap {
    let mut result = DistanceMap { source: Some(source), ..Default::default() };
    if !view.contains_vertex(source) {
        return result;
    }
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
    let mut settled: HashSet<VertexId> = HashSet::new();
    result.dist.insert(source, Weight::ZERO);
    heap.push(Reverse(HeapEntry { dist: Weight::ZERO, vertex: source }));

    while let Some(Reverse(HeapEntry { dist, vertex })) = heap.pop() {
        if settled.contains(&vertex) {
            continue;
        }
        settled.insert(vertex);
        if target == Some(vertex) {
            break;
        }
        view.for_each_neighbor(vertex, |to, w| {
            if settled.contains(&to)
                || banned_vertices.contains(&to)
                || banned_edges.contains(&(vertex, to))
            {
                return;
            }
            let candidate = dist + w;
            let better = match result.dist.get(&to) {
                Some(&existing) => candidate < existing,
                None => true,
            };
            if better {
                result.dist.insert(to, candidate);
                result.parent.insert(to, vertex);
                heap.push(Reverse(HeapEntry { dist: candidate, vertex: to }));
            }
        });
    }
    // Remove tentative (unsettled) distances when the search stopped early at the
    // target, so reported distances are always final.
    if target.is_some() {
        result.dist.retain(|v, _| settled.contains(v));
        result.parent.retain(|v, _| settled.contains(v));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// The small example used throughout the paper's Figure 6a: a 3-way parallel graph.
    fn parallel_graph() -> ksp_graph::DynamicGraph {
        let mut b = GraphBuilder::undirected(8);
        // vs=0, vt=7; route A via 1, route B via 2,3, route C via 4,5,6.
        b.edge(0, 1, 1).edge(1, 7, 1);
        b.edge(0, 2, 1).edge(2, 3, 1).edge(3, 7, 1);
        b.edge(0, 4, 1).edge(4, 5, 1).edge(5, 6, 1).edge(6, 7, 1);
        b.build().unwrap()
    }

    fn weighted_graph() -> ksp_graph::DynamicGraph {
        let mut b = GraphBuilder::undirected(6);
        b.edge(0, 1, 7).edge(0, 2, 9).edge(0, 5, 14);
        b.edge(1, 2, 10).edge(1, 3, 15);
        b.edge(2, 3, 11).edge(2, 5, 2);
        b.edge(3, 4, 6);
        b.edge(4, 5, 9);
        b.build().unwrap()
    }

    #[test]
    fn single_source_distances_match_known_values() {
        // Classic Wikipedia Dijkstra example: distances from vertex 0.
        let g = weighted_graph();
        let map = dijkstra_all(&g, v(0));
        assert_eq!(map.distance(v(0)), Weight::ZERO);
        assert_eq!(map.distance(v(1)), Weight::new(7.0));
        assert_eq!(map.distance(v(2)), Weight::new(9.0));
        assert_eq!(map.distance(v(3)), Weight::new(20.0));
        assert_eq!(map.distance(v(4)), Weight::new(20.0));
        assert_eq!(map.distance(v(5)), Weight::new(11.0));
        assert_eq!(map.num_reached(), 6);
    }

    #[test]
    fn point_to_point_path_is_reconstructed() {
        let g = weighted_graph();
        let p = dijkstra_path(&g, v(0), v(4)).unwrap();
        assert_eq!(p.distance(), Weight::new(20.0));
        assert_eq!(p.source(), v(0));
        assert_eq!(p.target(), v(4));
        assert_eq!(p.vertices(), &[v(0), v(2), v(5), v(4)]);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut b = GraphBuilder::undirected(4);
        b.edge(0, 1, 1).edge(2, 3, 1);
        let g = b.build().unwrap();
        assert!(dijkstra_path(&g, v(0), v(3)).is_none());
        let map = dijkstra_all(&g, v(0));
        assert_eq!(map.distance(v(3)), Weight::INFINITY);
        assert!(!map.is_reached(v(3)));
    }

    #[test]
    fn source_equals_target_gives_trivial_path() {
        let g = weighted_graph();
        let p = dijkstra_path(&g, v(3), v(3)).unwrap();
        assert_eq!(p.vertices(), &[v(3)]);
        assert_eq!(p.distance(), Weight::ZERO);
    }

    #[test]
    fn banned_vertices_are_avoided() {
        let g = parallel_graph();
        let shortest = dijkstra_path(&g, v(0), v(7)).unwrap();
        assert_eq!(shortest.distance(), Weight::new(2.0));
        // Ban the middle vertex of the shortest route; the 3-hop route must be used.
        let banned: HashSet<_> = [v(1)].into_iter().collect();
        let p = dijkstra_path_with_bans(&g, v(0), v(7), &banned, &HashSet::new()).unwrap();
        assert_eq!(p.distance(), Weight::new(3.0));
        assert!(!p.contains(v(1)));
    }

    #[test]
    fn banned_edges_are_avoided() {
        let g = parallel_graph();
        // Ban the first edge of the 2-hop route in both orientations.
        let banned_edges: HashSet<_> = [(v(0), v(1)), (v(1), v(0))].into_iter().collect();
        let p = dijkstra_path_with_bans(&g, v(0), v(7), &HashSet::new(), &banned_edges).unwrap();
        assert_eq!(p.distance(), Weight::new(3.0));
    }

    #[test]
    fn banning_source_or_target_returns_none() {
        let g = parallel_graph();
        let banned: HashSet<_> = [v(0)].into_iter().collect();
        assert!(dijkstra_path_with_bans(&g, v(0), v(7), &banned, &HashSet::new()).is_none());
    }

    #[test]
    fn directed_graphs_respect_edge_direction() {
        let mut b = GraphBuilder::directed(3);
        b.edge(0, 1, 1).edge(1, 2, 1);
        let g = b.build().unwrap();
        assert!(dijkstra_path(&g, v(0), v(2)).is_some());
        assert!(dijkstra_path(&g, v(2), v(0)).is_none());
    }

    #[test]
    fn early_termination_reports_only_settled_vertices() {
        let g = weighted_graph();
        let map = dijkstra_internal(&g, v(0), Some(v(1)), &HashSet::new(), &HashSet::new());
        // Every distance it does report must be final (equal to the full search).
        let full = dijkstra_all(&g, v(0));
        for (vertex, d) in map.iter() {
            assert_eq!(d, full.distance(vertex));
        }
    }

    #[test]
    fn settled_within_returns_exactly_the_strictly_closer_ball() {
        let g = weighted_graph();
        let full = dijkstra_all(&g, v(0));
        for bound in [0.0, 5.0, 9.0, 11.5, 25.0] {
            let bound = Weight::new(bound);
            let mut swept = dijkstra_settled_within(&g, v(0), bound);
            swept.sort();
            let mut expected: Vec<VertexId> =
                full.iter().filter(|&(_, d)| d < bound).map(|(vertex, _)| vertex).collect();
            expected.sort();
            assert_eq!(swept, expected, "sweep mismatch at bound {bound}");
        }
        // An infinite bound sweeps the whole reachable component.
        assert_eq!(dijkstra_settled_within(&g, v(0), Weight::INFINITY).len(), 6);
        // A missing source sweeps nothing.
        assert!(dijkstra_settled_within(&g, VertexId(99), Weight::new(5.0)).is_empty());
    }

    #[test]
    fn path_to_unreached_vertex_is_none() {
        let g = weighted_graph();
        let map = dijkstra_all(&g, v(0));
        assert!(map.path_to(v(5)).is_some());
        assert!(map.path_to(VertexId(99)).is_none());
        assert_eq!(map.source(), Some(v(0)));
    }
}
