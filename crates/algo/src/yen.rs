//! Yen's k-shortest-simple-paths algorithm [27], as a lazy enumerator.
//!
//! The enumerator form matters for KSP-DG: Algorithm 3 consumes *reference paths* from
//! the skeleton graph one at a time and stops as soon as the termination condition of
//! Theorem 3 holds, so eagerly computing `k` paths up front would waste work. The same
//! enumerator also powers the plain Yen baseline and the partial-KSP computation inside
//! each subgraph (Algorithm 4, line 6).

use crate::dijkstra::{dijkstra_path, dijkstra_path_with_bans};
use crate::path::Path;
use ksp_graph::{GraphView, VertexId, Weight};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Lazy enumerator of the successive shortest simple paths between two vertices.
pub struct KspEnumerator<'a, G: GraphView> {
    view: &'a G,
    source: VertexId,
    target: VertexId,
    /// Paths already produced, in ascending distance order (Yen's list `A`).
    produced: Vec<Path>,
    /// Candidate paths not yet produced (Yen's list `B`), keyed by distance.
    candidates: BinaryHeap<Reverse<Candidate>>,
    /// Routes already present in `produced` or `candidates`, to avoid duplicates.
    seen_routes: HashSet<Vec<VertexId>>,
    exhausted: bool,
    /// Number of spur searches performed; exposed for cost accounting in benchmarks.
    spur_searches: usize,
}

#[derive(PartialEq, Eq)]
struct Candidate {
    distance: Weight,
    vertices: Vec<VertexId>,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance.cmp(&other.distance).then_with(|| self.vertices.cmp(&other.vertices))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a, G: GraphView> KspEnumerator<'a, G> {
    /// Creates an enumerator for paths from `source` to `target` in `view`.
    pub fn new(view: &'a G, source: VertexId, target: VertexId) -> Self {
        KspEnumerator {
            view,
            source,
            target,
            produced: Vec::new(),
            candidates: BinaryHeap::new(),
            seen_routes: HashSet::new(),
            exhausted: false,
            spur_searches: 0,
        }
    }

    /// The paths produced so far, in ascending distance order.
    pub fn produced(&self) -> &[Path] {
        &self.produced
    }

    /// Number of spur-path searches performed so far (a proxy for the computation cost
    /// of the enumeration, reported by the cost-model benchmarks).
    pub fn spur_searches(&self) -> usize {
        self.spur_searches
    }

    /// Produces the next shortest simple path, or `None` when no further simple path
    /// exists.
    pub fn next_path(&mut self) -> Option<Path> {
        if self.exhausted {
            return None;
        }
        if self.produced.is_empty() {
            // First path: plain Dijkstra.
            let first = if self.source == self.target {
                Some(Path::trivial(self.source))
            } else {
                dijkstra_path(self.view, self.source, self.target)
            };
            return match first {
                Some(p) => {
                    self.seen_routes.insert(p.vertices().to_vec());
                    self.produced.push(p.clone());
                    Some(p)
                }
                None => {
                    self.exhausted = true;
                    None
                }
            };
        }

        // Generate deviations of the most recently produced path.
        let prev = self.produced.last().expect("produced is non-empty").clone();
        if prev.num_edges() > 0 {
            self.generate_deviations(&prev);
        }

        match self.candidates.pop() {
            Some(Reverse(c)) => {
                let path = Path::new(c.vertices, c.distance);
                self.produced.push(path.clone());
                Some(path)
            }
            None => {
                self.exhausted = true;
                None
            }
        }
    }

    /// Produces up to `k` paths (including any already produced).
    pub fn take_up_to(&mut self, k: usize) -> Vec<Path> {
        while self.produced.len() < k {
            if self.next_path().is_none() {
                break;
            }
        }
        self.produced.iter().take(k).cloned().collect()
    }

    fn generate_deviations(&mut self, prev: &Path) {
        let prev_vertices = prev.vertices();
        for i in 0..prev.num_edges() {
            let spur_node = prev_vertices[i];
            let root_vertices = &prev_vertices[..=i];

            // Ban the next edge of every already-produced path sharing this root, so
            // the spur path deviates from all of them.
            let mut banned_edges: HashSet<(VertexId, VertexId)> = HashSet::new();
            for p in &self.produced {
                let pv = p.vertices();
                if pv.len() > i + 1 && &pv[..=i] == root_vertices {
                    banned_edges.insert((pv[i], pv[i + 1]));
                    banned_edges.insert((pv[i + 1], pv[i]));
                }
            }
            // Ban the root path's vertices (except the spur node) so the total path
            // stays simple.
            let banned_vertices: HashSet<VertexId> = root_vertices[..i].iter().copied().collect();

            self.spur_searches += 1;
            let Some(spur_path) = dijkstra_path_with_bans(
                self.view,
                spur_node,
                self.target,
                &banned_vertices,
                &banned_edges,
            ) else {
                continue;
            };

            // Assemble root + spur.
            let mut vertices = root_vertices.to_vec();
            vertices.extend_from_slice(&spur_path.vertices()[1..]);
            if !Path::is_simple(&vertices) {
                continue;
            }
            if self.seen_routes.contains(&vertices) {
                continue;
            }
            let root_distance: Weight = root_vertices
                .windows(2)
                .map(|w| self.view.edge_weight(w[0], w[1]).expect("root edges exist in the view"))
                .sum();
            let distance = root_distance + spur_path.distance();
            self.seen_routes.insert(vertices.clone());
            self.candidates.push(Reverse(Candidate { distance, vertices }));
        }
    }
}

/// Convenience wrapper: computes the `k` shortest simple paths from `source` to
/// `target`, fewer if fewer exist.
pub fn yen_ksp<G: GraphView>(view: &G, source: VertexId, target: VertexId, k: usize) -> Vec<Path> {
    let mut enumerator = KspEnumerator::new(view, source, target);
    enumerator.take_up_to(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::{DynamicGraph, GraphBuilder};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// The classic Yen example graph (from the original paper / Wikipedia), directed.
    /// Vertices: C=0, D=1, E=2, F=3, G=4, H=5.
    fn yen_wikipedia_graph() -> DynamicGraph {
        let mut b = GraphBuilder::directed(6);
        b.edge(0, 1, 3) // C -> D
            .edge(0, 2, 2) // C -> E
            .edge(1, 3, 4) // D -> F
            .edge(2, 1, 1) // E -> D
            .edge(2, 3, 2) // E -> F
            .edge(2, 4, 3) // E -> G
            .edge(3, 4, 2) // F -> G
            .edge(3, 5, 1) // F -> H
            .edge(4, 5, 2); // G -> H
        b.build().unwrap()
    }

    #[test]
    fn reproduces_the_classic_yen_example() {
        let g = yen_wikipedia_graph();
        let paths = yen_ksp(&g, v(0), v(5), 3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].distance(), Weight::new(5.0));
        assert_eq!(paths[0].vertices(), &[v(0), v(2), v(3), v(5)]);
        assert_eq!(paths[1].distance(), Weight::new(7.0));
        assert_eq!(paths[2].distance(), Weight::new(8.0));
    }

    #[test]
    fn paths_are_simple_distinct_and_sorted() {
        let g = yen_wikipedia_graph();
        let paths = yen_ksp(&g, v(0), v(5), 10);
        for w in paths.windows(2) {
            assert!(w[0].distance() <= w[1].distance());
            assert!(!w[0].same_route(&w[1]));
        }
        for p in &paths {
            assert!(Path::is_simple(p.vertices()));
            assert_eq!(p.source(), v(0));
            assert_eq!(p.target(), v(5));
        }
    }

    #[test]
    fn enumeration_terminates_when_paths_are_exhausted() {
        // A graph with exactly 2 simple routes between the endpoints.
        let mut b = GraphBuilder::undirected(4);
        b.edge(0, 1, 1).edge(1, 3, 1).edge(0, 2, 2).edge(2, 3, 2);
        let g = b.build().unwrap();
        let paths = yen_ksp(&g, v(0), v(3), 10);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].distance(), Weight::new(2.0));
        assert_eq!(paths[1].distance(), Weight::new(4.0));

        let mut e = KspEnumerator::new(&g, v(0), v(3));
        assert!(e.next_path().is_some());
        assert!(e.next_path().is_some());
        assert!(e.next_path().is_none());
        assert!(e.next_path().is_none(), "enumerator stays exhausted");
        assert!(e.spur_searches() > 0);
    }

    #[test]
    fn unreachable_pairs_yield_no_paths() {
        let mut b = GraphBuilder::undirected(4);
        b.edge(0, 1, 1).edge(2, 3, 1);
        let g = b.build().unwrap();
        assert!(yen_ksp(&g, v(0), v(3), 5).is_empty());
    }

    #[test]
    fn identical_endpoints_yield_the_trivial_path() {
        let g = yen_wikipedia_graph();
        let paths = yen_ksp(&g, v(2), v(2), 3);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].vertices(), &[v(2)]);
        assert_eq!(paths[0].distance(), Weight::ZERO);
    }

    #[test]
    fn lazy_enumeration_matches_batch_results() {
        let g = yen_wikipedia_graph();
        let batch = yen_ksp(&g, v(0), v(5), 5);
        let mut enumerator = KspEnumerator::new(&g, v(0), v(5));
        let mut lazy = Vec::new();
        while let Some(p) = enumerator.next_path() {
            lazy.push(p);
            if lazy.len() == 5 {
                break;
            }
        }
        assert_eq!(batch.len(), lazy.len());
        for (a, b) in batch.iter().zip(lazy.iter()) {
            assert!(a.same_route(b));
            assert_eq!(a.distance(), b.distance());
        }
    }

    #[test]
    fn undirected_triangle_has_expected_second_path() {
        let mut b = GraphBuilder::undirected(3);
        b.edge(0, 1, 1).edge(1, 2, 1).edge(0, 2, 5);
        let g = b.build().unwrap();
        let paths = yen_ksp(&g, v(0), v(2), 3);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].distance(), Weight::new(2.0));
        assert_eq!(paths[1].distance(), Weight::new(5.0));
        assert_eq!(paths[1].vertices(), &[v(0), v(2)]);
    }

    #[test]
    fn produces_exactly_k_paths_when_more_exist() {
        // A ladder graph has many simple paths; ask for 4.
        let mut b = GraphBuilder::undirected(8);
        for i in 0..3u32 {
            b.edge(2 * i, 2 * i + 2, 1);
            b.edge(2 * i + 1, 2 * i + 3, 1);
            b.edge(2 * i, 2 * i + 1, 2);
        }
        b.edge(6, 7, 2);
        let g = b.build().unwrap();
        let paths = yen_ksp(&g, v(0), v(7), 4);
        assert_eq!(paths.len(), 4);
        for w in paths.windows(2) {
            assert!(w[0].distance() <= w[1].distance());
        }
    }

    #[test]
    fn take_up_to_is_idempotent() {
        let g = yen_wikipedia_graph();
        let mut e = KspEnumerator::new(&g, v(0), v(5));
        let first = e.take_up_to(2);
        let again = e.take_up_to(2);
        assert_eq!(first.len(), 2);
        assert_eq!(again.len(), 2);
        assert!(first[0].same_route(&again[0]));
        assert_eq!(e.produced().len(), 2);
    }
}
