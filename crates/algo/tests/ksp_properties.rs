//! Property-based tests of the KSP algorithms: Yen and FindKSP must agree with each
//! other and with a brute-force enumeration of all simple paths on small graphs.

use ksp_algo::{find_ksp, yen_ksp, Path};
use ksp_graph::{DynamicGraph, GraphBuilder, GraphView, VertexId, Weight};
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = DynamicGraph> {
    (4usize..9).prop_flat_map(|n| {
        let edge_count = n * 2;
        (Just(n), proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..12), edge_count))
            .prop_map(|(n, edges)| {
                let mut b = GraphBuilder::undirected(n);
                for (u, v, w) in edges {
                    if u != v {
                        b.edge(u, v, w);
                    }
                }
                b.build().expect("valid graph")
            })
    })
}

/// Exhaustively enumerates the distances of all simple paths between two vertices via
/// depth-first search; feasible because the graphs are tiny.
fn brute_force_distances(graph: &DynamicGraph, s: VertexId, t: VertexId) -> Vec<Weight> {
    fn dfs(
        graph: &DynamicGraph,
        current: VertexId,
        target: VertexId,
        visited: &mut Vec<VertexId>,
        distance: Weight,
        out: &mut Vec<Weight>,
    ) {
        if current == target {
            out.push(distance);
            return;
        }
        let neighbors = graph.neighbors(current);
        for (to, w) in neighbors {
            if visited.contains(&to) {
                continue;
            }
            visited.push(to);
            dfs(graph, to, target, visited, distance + w, out);
            visited.pop();
        }
    }
    let mut out = Vec::new();
    let mut visited = vec![s];
    dfs(graph, s, t, &mut visited, Weight::ZERO, &mut out);
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn yen_matches_brute_force(graph in arbitrary_graph(), k in 1usize..6) {
        let s = VertexId(0);
        let t = VertexId((graph.num_vertices() - 1) as u32);
        let expected = brute_force_distances(&graph, s, t);
        let got = yen_ksp(&graph, s, t, k);
        let expected_k: Vec<Weight> = expected.iter().copied().take(k).collect();
        prop_assert_eq!(got.len(), expected_k.len());
        for (p, want) in got.iter().zip(expected_k.iter()) {
            prop_assert!(p.distance().approx_eq(*want),
                "yen distance {} but brute force {}", p.distance(), want);
            prop_assert!(Path::is_simple(p.vertices()));
        }
    }

    #[test]
    fn findksp_matches_yen_distances(graph in arbitrary_graph(), k in 1usize..6) {
        let s = VertexId(1 % graph.num_vertices() as u32);
        let t = VertexId((graph.num_vertices() - 2) as u32);
        let a = yen_ksp(&graph, s, t, k);
        let b = find_ksp(&graph, s, t, k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!(x.distance().approx_eq(y.distance()));
        }
    }

    #[test]
    fn yen_output_is_sorted_distinct_and_simple(graph in arbitrary_graph(), k in 1usize..8) {
        let s = VertexId(0);
        let t = VertexId((graph.num_vertices() / 2) as u32);
        let paths = yen_ksp(&graph, s, t, k);
        prop_assert!(paths.len() <= k);
        for w in paths.windows(2) {
            prop_assert!(w[0].distance() <= w[1].distance());
            prop_assert!(!w[0].same_route(&w[1]));
        }
        for p in &paths {
            prop_assert!(Path::is_simple(p.vertices()));
            let recomputed = p.recompute_distance(&graph).expect("edges exist");
            prop_assert!(recomputed.approx_eq(p.distance()));
        }
    }
}
