//! The primary contribution of *Distributed Processing of k Shortest Path Queries over
//! Dynamic Road Networks* (SIGMOD 2020): the DTLP index and the KSP-DG algorithm.
//!
//! # Overview
//!
//! The system answers k-shortest-path (KSP) queries over a road network whose edge
//! weights (travel times) change continuously. It is built from two pieces:
//!
//! * [`dtlp`] — the **D**istributed **T**wo-**L**evel **P**ath index. The graph is
//!   partitioned into subgraphs of at most `z` vertices; inside every subgraph, up to
//!   `ξ` *bounding paths* are precomputed between each pair of boundary vertices. The
//!   bounding paths are selected by *virtual-fragment* count, which never changes as
//!   weights evolve, so the index structure itself never has to be rebuilt — only the
//!   cheap *bound distances* are refreshed. The second level is the *skeleton graph*
//!   `Gλ` over all boundary vertices whose edge weights are lower bounds of
//!   within-subgraph shortest distances.
//! * [`kspdg`] — the iterative filter-and-refine query algorithm. The filter step
//!   enumerates *reference paths* (successive shortest paths in `Gλ`); the refine step
//!   computes partial k-shortest paths between adjacent boundary vertices of the
//!   reference path inside the relevant subgraphs (in parallel across workers in the
//!   distributed runtime) and joins them into candidate KSPs. Iteration stops when the
//!   k-th best complete path found so far is no longer than the next reference path
//!   (Theorem 3), which guarantees the exact answer.
//!
//! The crate is deliberately independent of any particular execution environment: the
//! distributed runtime in `ksp-cluster` drives the same types from worker threads,
//! while the examples and tests drive them single-threaded.
//!
//! # Quick example
//!
//! ```
//! use ksp_core::dtlp::{DtlpConfig, DtlpIndex};
//! use ksp_core::kspdg::KspDgEngine;
//! use ksp_graph::{GraphBuilder, VertexId};
//!
//! // A small road network.
//! let mut b = GraphBuilder::undirected(6);
//! b.edge(0, 1, 2).edge(1, 2, 2).edge(2, 3, 2).edge(3, 4, 2).edge(4, 5, 2).edge(0, 5, 9);
//! let graph = b.build().unwrap();
//!
//! // Build the index with subgraphs of at most 3 vertices and ξ = 2 bounding paths.
//! let index = DtlpIndex::build(&graph, DtlpConfig::new(3, 2)).unwrap();
//!
//! // Answer a 2-shortest-paths query.
//! let engine = KspDgEngine::new(&index);
//! let result = engine.query(VertexId(0), VertexId(4), 2);
//! assert_eq!(result.paths.len(), 2);
//! assert!(result.paths[0].distance() <= result.paths[1].distance());
//! ```

#![warn(missing_docs)]

pub mod dtlp;
pub mod kspdg;

pub use dtlp::{DtlpConfig, DtlpIndex, PathStorageBackend};
pub use kspdg::{KspDgEngine, QueryResult, QueryStats, QueryTrace, SharedEngine};
