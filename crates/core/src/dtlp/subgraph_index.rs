//! The per-subgraph (level-one) part of DTLP.
//!
//! A [`SubgraphIndex`] is what a worker keeps for each subgraph it owns: the subgraph
//! itself (with live weights), the bounding paths between its boundary-vertex pairs,
//! the unit-weight multiset, and a storage backend (EP-Index or MFP forest) that maps
//! an edge to the bounding paths covering it. It receives the weight updates routed to
//! this subgraph and reports which pairs' lower bound distances changed, so the
//! skeleton graph can be patched incrementally.

use crate::dtlp::bounding::{BoundingPath, BoundingPathSet};
use crate::dtlp::ep_index::{EpIndex, PathRef};
use crate::dtlp::mfp::MfpForest;
use crate::dtlp::unit_weights::UnitWeightMultiset;
use ksp_algo::{fewest_vfrag_paths, Path};
use ksp_graph::{EdgeId, GraphError, Subgraph, SubgraphId, VertexId, Weight, WeightUpdate};
use std::collections::HashMap;
use std::sync::Arc;

/// Which structure stores the edge → bounding-paths mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The plain EP-Index map of Section 3.7 (larger, slightly faster lookups).
    #[default]
    EpIndex,
    /// The LSH-grouped MFP-tree forest of Section 4 (compressed).
    MfpTree,
}

#[derive(Debug, Clone)]
enum BackendStore {
    Ep(EpIndex),
    Mfp(MfpForest),
}

impl BackendStore {
    fn collect_paths_through(&self, edge: EdgeId, out: &mut Vec<PathRef>) {
        match self {
            BackendStore::Ep(ep) => out.extend_from_slice(ep.paths_through(edge)),
            BackendStore::Mfp(mfp) => mfp.collect_paths_through(edge, out),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            BackendStore::Ep(ep) => ep.memory_bytes(),
            BackendStore::Mfp(mfp) => mfp.memory_bytes(),
        }
    }
}

/// Per-pair change reported after applying a batch of weight updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBoundChange {
    /// First endpoint of the boundary pair.
    pub a: VertexId,
    /// Second endpoint of the boundary pair.
    pub b: VertexId,
    /// The new lower bound distance for this subgraph.
    pub new_lbd: Weight,
}

/// The level-one DTLP index of a single subgraph.
///
/// The subgraph and the edge → bounding-paths backend are held behind `Arc`s:
/// the subgraph so that the partitioner's allocation is referenced rather than
/// copied at build time, and the backend because it is immutable after
/// construction (it maps edges to path *slots*, not distances). Cloning a
/// `SubgraphIndex` therefore copies only the mutable bound state (`pairs`,
/// `last_lbd`, the unit-weight multiset); a clone that is then mutated
/// unshares its subgraph copy-on-write via `Arc::make_mut`.
#[derive(Debug, Clone)]
pub struct SubgraphIndex {
    subgraph: Arc<Subgraph>,
    pairs: Vec<BoundingPathSet>,
    /// Last lower bound distance reported for each pair, to detect changes.
    last_lbd: Vec<Weight>,
    backend: Arc<BackendStore>,
    unit_weights: UnitWeightMultiset,
    /// Total number of bounding paths across all pairs.
    num_bounding_paths: usize,
}

impl SubgraphIndex {
    /// Builds the index for one subgraph.
    ///
    /// `xi` is the maximum number of bounding paths per boundary pair (the paper's ξ);
    /// `max_enumerated` caps the path enumeration per pair (see
    /// [`ksp_algo::fewest_vfrag_paths`] for why truncation is safe).
    pub fn build(
        subgraph: impl Into<Arc<Subgraph>>,
        xi: usize,
        max_enumerated: usize,
        backend: BackendKind,
    ) -> Self {
        let subgraph: Arc<Subgraph> = subgraph.into();
        let directed = subgraph.is_directed();
        let boundary: Vec<VertexId> = subgraph.boundary_vertices().to_vec();

        let mut pairs: Vec<BoundingPathSet> = Vec::new();
        for (i, &a) in boundary.iter().enumerate() {
            for (j, &b) in boundary.iter().enumerate() {
                let take = if directed { i != j } else { j > i };
                if !take {
                    continue;
                }
                let candidates = fewest_vfrag_paths(&subgraph, a, b, xi, max_enumerated);
                let paths: Vec<BoundingPath> = candidates
                    .into_iter()
                    .filter_map(|c| {
                        let dist = Path::from_vertices(&subgraph, c.vertices.clone())?.distance();
                        Some(BoundingPath::new(c.vertices, c.vfrags, dist))
                    })
                    .collect();
                if !paths.is_empty() {
                    pairs.push(BoundingPathSet::new(a, b, paths));
                }
            }
        }

        let backend = Arc::new(build_backend(&subgraph, &pairs, backend));
        let unit_weights = UnitWeightMultiset::from_subgraph(&subgraph);
        let num_bounding_paths = pairs.iter().map(|p| p.len()).sum();
        let last_lbd = pairs.iter().map(|p| p.lower_bound_distance(&unit_weights)).collect();
        SubgraphIndex { subgraph, pairs, last_lbd, backend, unit_weights, num_bounding_paths }
    }

    /// Reassembles an index from persisted parts, skipping the expensive
    /// bounding-path enumeration of [`SubgraphIndex::build`].
    ///
    /// `pairs` carries the accumulated `current_distance` of every bounding
    /// path and `last_lbd` the exact lower bounds last reported to the
    /// skeleton, so the restored index continues maintenance bit-identically
    /// to the instance that was checkpointed. The edge → paths backend and the
    /// unit-weight multiset are derived data and are rebuilt here (both are
    /// deterministic functions of `subgraph` and `pairs`).
    pub fn restore(
        subgraph: impl Into<Arc<Subgraph>>,
        pairs: Vec<BoundingPathSet>,
        last_lbd: Vec<Weight>,
        backend: BackendKind,
    ) -> Self {
        let subgraph: Arc<Subgraph> = subgraph.into();
        assert_eq!(pairs.len(), last_lbd.len(), "one stored lower bound per boundary pair");
        let backend = Arc::new(build_backend(&subgraph, &pairs, backend));
        let unit_weights = UnitWeightMultiset::from_subgraph(&subgraph);
        let num_bounding_paths = pairs.iter().map(|p| p.len()).sum();
        SubgraphIndex { subgraph, pairs, last_lbd, backend, unit_weights, num_bounding_paths }
    }

    /// The subgraph this index covers (with live weights).
    pub fn subgraph(&self) -> &Subgraph {
        &self.subgraph
    }

    /// The shared handle to the subgraph. Two indexes (or two epochs of the
    /// same index) that return pointer-equal handles share one allocation.
    pub fn subgraph_handle(&self) -> &Arc<Subgraph> {
        &self.subgraph
    }

    /// A clone that shares nothing with `self`: every `Arc`'d component is
    /// reallocated. This is the "clone the whole index per epoch" behaviour
    /// the copy-on-write publish path replaced; it exists as the baseline for
    /// the `epoch_publish` benchmark and for tests that must rule out
    /// accidental sharing.
    pub fn deep_clone(&self) -> Self {
        let mut copy = self.clone();
        copy.subgraph = Arc::new((*self.subgraph).clone());
        copy.backend = Arc::new((*self.backend).clone());
        copy
    }

    /// The bounding-path sets, one per indexed boundary pair.
    pub fn pairs(&self) -> &[BoundingPathSet] {
        &self.pairs
    }

    /// The lower bound distance last reported for each pair (parallel to
    /// [`SubgraphIndex::pairs`]). Persisted verbatim so a restored index
    /// detects future bound changes against the same baseline.
    pub fn last_lower_bounds(&self) -> &[Weight] {
        &self.last_lbd
    }

    /// Which backend kind stores the edge → bounding-paths mapping.
    pub fn backend_kind(&self) -> BackendKind {
        match *self.backend {
            BackendStore::Ep(_) => BackendKind::EpIndex,
            BackendStore::Mfp(_) => BackendKind::MfpTree,
        }
    }

    /// Identifier of the underlying subgraph.
    pub fn id(&self) -> SubgraphId {
        self.subgraph.id()
    }

    /// Number of boundary pairs indexed.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Total number of bounding paths stored.
    pub fn num_bounding_paths(&self) -> usize {
        self.num_bounding_paths
    }

    /// Iterates over the current lower bound distances of every indexed pair.
    pub fn lower_bounds(&self) -> impl Iterator<Item = LowerBoundChange> + '_ {
        self.pairs.iter().zip(self.last_lbd.iter()).map(|(set, &lbd)| LowerBoundChange {
            a: set.a,
            b: set.b,
            new_lbd: lbd,
        })
    }

    /// Applies a batch of weight updates belonging to this subgraph (Algorithm 2).
    ///
    /// Returns the pairs whose lower bound distance changed, so the caller can patch
    /// the skeleton graph. Also returns, via the second tuple element, the number of
    /// bounding paths whose stored distance was adjusted (a cost metric).
    pub fn apply_updates(
        &mut self,
        updates: &[WeightUpdate],
    ) -> Result<(Vec<LowerBoundChange>, usize), GraphError> {
        if updates.is_empty() {
            return Ok((Vec::new(), 0));
        }
        let mut paths_touched = 0usize;
        let mut refs: Vec<PathRef> = Vec::new();
        // Copy-on-write: the first update of a batch unshares the subgraph if
        // a previous epoch still holds it; later updates mutate in place.
        for update in updates {
            let delta = Arc::make_mut(&mut self.subgraph).apply_update(update)?;
            if delta == 0.0 {
                continue;
            }
            refs.clear();
            self.backend.collect_paths_through(update.edge, &mut refs);
            for r in &refs {
                let set = &mut self.pairs[r.pair as usize];
                let p = &mut set.paths[r.path as usize];
                let new = (p.current_distance.value() + delta).max(0.0);
                p.current_distance = Weight::new(new);
                paths_touched += 1;
            }
        }

        // The unit-weight multiset depends on every weight in the subgraph, so rebuild
        // it once per batch, then refresh every pair's lower bound (each refresh is
        // O(ξ log |E_sg|)). Only pairs whose bound actually moved are reported.
        self.unit_weights = UnitWeightMultiset::from_subgraph(&self.subgraph);
        let mut changed = Vec::new();
        for (i, set) in self.pairs.iter().enumerate() {
            let lbd = set.lower_bound_distance(&self.unit_weights);
            if !lbd.approx_eq(self.last_lbd[i]) {
                self.last_lbd[i] = lbd;
                changed.push(LowerBoundChange { a: set.a, b: set.b, new_lbd: lbd });
            }
        }
        Ok((changed, paths_touched))
    }

    /// Shortest distances from `v` to every boundary vertex of this subgraph, computed
    /// on the current weights. Used to attach a non-boundary query endpoint to the
    /// skeleton graph (Section 5.3 / Step 1 of the Storm deployment).
    pub fn boundary_distances_from(&self, v: VertexId) -> Vec<(VertexId, Weight)> {
        let map = ksp_algo::dijkstra_all(&self.subgraph, v);
        self.subgraph
            .boundary_vertices()
            .iter()
            .filter_map(|&b| {
                let d = map.distance(b);
                d.is_finite().then_some((b, d))
            })
            .collect()
    }

    /// Shortest distances from every boundary vertex of this subgraph *to* `v`.
    /// Identical to [`Self::boundary_distances_from`] for undirected subgraphs; for
    /// directed subgraphs it searches the reversed subgraph.
    pub fn boundary_distances_to(&self, v: VertexId) -> Vec<(VertexId, Weight)> {
        if !self.subgraph.is_directed() {
            return self.boundary_distances_from(v);
        }
        let reversed = ReversedSubgraph::new(&self.subgraph);
        let map = ksp_algo::dijkstra_all(&reversed, v);
        self.subgraph
            .boundary_vertices()
            .iter()
            .filter_map(|&b| {
                let d = map.distance(b);
                d.is_finite().then_some((b, d))
            })
            .collect()
    }

    /// Estimated memory footprint of the level-one index structures in bytes
    /// (excluding the subgraph itself).
    pub fn index_memory_bytes(&self) -> usize {
        self.backend.memory_bytes()
            + self.pairs.iter().map(|p| p.memory_bytes()).sum::<usize>()
            + self.unit_weights.memory_bytes()
            + self.last_lbd.len() * std::mem::size_of::<Weight>()
    }

    /// Memory footprint of the subgraph structure itself in bytes.
    pub fn subgraph_memory_bytes(&self) -> usize {
        self.subgraph.memory_bytes()
    }
}

/// Builds the edge → bounding-paths backend for `pairs` over `subgraph`.
/// Shared by [`SubgraphIndex::build`] and [`SubgraphIndex::restore`]: the
/// backend is fully derived from the paths, so it is never persisted.
fn build_backend(
    subgraph: &Subgraph,
    pairs: &[BoundingPathSet],
    kind: BackendKind,
) -> BackendStore {
    // Edge lookup (endpoint pair -> global edge id) for registering paths.
    let mut edge_of: HashMap<(VertexId, VertexId), EdgeId> = HashMap::new();
    for e in subgraph.edges() {
        edge_of.insert((e.u, e.v), e.global_id);
        if !subgraph.is_directed() {
            edge_of.insert((e.v, e.u), e.global_id);
        }
    }
    let mut edge_paths: HashMap<EdgeId, Vec<PathRef>> = HashMap::new();
    for (pi, set) in pairs.iter().enumerate() {
        for (qi, p) in set.paths.iter().enumerate() {
            for w in p.vertices.windows(2) {
                let Some(&e) = edge_of.get(&(w[0], w[1])) else { continue };
                edge_paths.entry(e).or_default().push(PathRef { pair: pi as u32, path: qi as u32 });
            }
        }
    }
    match kind {
        BackendKind::EpIndex => {
            let mut ep = EpIndex::new();
            for (e, refs) in &edge_paths {
                for &r in refs {
                    ep.insert(*e, r);
                }
            }
            BackendStore::Ep(ep)
        }
        BackendKind::MfpTree => {
            let mut list: Vec<(EdgeId, Vec<PathRef>)> =
                edge_paths.iter().map(|(e, v)| (*e, v.clone())).collect();
            list.sort_by_key(|(e, _)| e.0);
            BackendStore::Mfp(MfpForest::build(&list))
        }
    }
}

/// A reversed view of a directed subgraph (in-edges become out-edges).
struct ReversedSubgraph {
    adj: HashMap<VertexId, Vec<(VertexId, Weight)>>,
    max_vertex: usize,
}

impl ReversedSubgraph {
    fn new(subgraph: &Subgraph) -> Self {
        let mut adj: HashMap<VertexId, Vec<(VertexId, Weight)>> = HashMap::new();
        for e in subgraph.edges() {
            adj.entry(e.v).or_default().push((e.u, e.current_weight));
        }
        let max_vertex = ksp_graph::GraphView::num_vertices(subgraph);
        ReversedSubgraph { adj, max_vertex }
    }
}

impl ksp_graph::GraphView for ReversedSubgraph {
    fn num_vertices(&self) -> usize {
        self.max_vertex
    }
    fn contains_vertex(&self, v: VertexId) -> bool {
        self.adj.contains_key(&v) || v.index() < self.max_vertex
    }
    fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, Weight)) {
        if let Some(list) = self.adj.get(&v) {
            for &(to, w) in list {
                f(to, w);
            }
        }
    }
    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.adj.get(&u)?.iter().find(|&&(to, _)| to == v).map(|&(_, w)| w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_algo::dijkstra_path;
    use ksp_graph::{GraphBuilder, PartitionConfig, Partitioner};

    /// Builds the Figure 3 graph of the paper and partitions it with z = 6.
    fn paper_partitioning() -> (ksp_graph::DynamicGraph, ksp_graph::Partitioning) {
        let edges: &[(u32, u32, u32)] = &[
            (1, 2, 3),
            (1, 3, 3),
            (2, 3, 6),
            (2, 4, 3),
            (3, 5, 2),
            (4, 5, 3),
            (4, 6, 4),
            (5, 6, 4),
            (4, 7, 3),
            (6, 9, 3),
            (7, 8, 5),
            (8, 9, 4),
            (8, 10, 6),
            (9, 10, 5),
            (9, 14, 7),
            (10, 11, 5),
            (11, 12, 3),
            (12, 13, 3),
            (10, 13, 6),
            (13, 14, 3),
            (13, 18, 3),
            (14, 16, 3),
            (16, 13, 5),
            (16, 17, 2),
            (17, 18, 2),
            (18, 19, 3),
        ];
        let mut b = GraphBuilder::undirected(19);
        for &(x, y, w) in edges {
            b.edge(x - 1, y - 1, w);
        }
        let g = b.build().unwrap();
        let p = Partitioner::new(PartitionConfig::with_max_vertices(6)).partition(&g).unwrap();
        (g, p)
    }

    fn build_indexes(
        partitioning: &ksp_graph::Partitioning,
        xi: usize,
        backend: BackendKind,
    ) -> Vec<SubgraphIndex> {
        partitioning
            .subgraphs()
            .iter()
            .map(|sg| SubgraphIndex::build(sg.clone(), xi, 64, backend))
            .collect()
    }

    #[test]
    fn lower_bounds_never_exceed_subgraph_shortest_distances() {
        let (_, partitioning) = paper_partitioning();
        for idx in build_indexes(&partitioning, 3, BackendKind::EpIndex) {
            for lb in idx.lower_bounds() {
                let shortest = dijkstra_path(idx.subgraph(), lb.a, lb.b)
                    .map(|p| p.distance())
                    .unwrap_or(Weight::INFINITY);
                assert!(
                    lb.new_lbd <= shortest || lb.new_lbd.approx_eq(shortest),
                    "LBD({}, {}) = {} exceeds shortest {shortest}",
                    lb.a,
                    lb.b,
                    lb.new_lbd
                );
            }
        }
    }

    #[test]
    fn initial_lower_bounds_equal_shortest_distances() {
        // Section 5.5: at construction time all unit weights equal 1 and the lower
        // bound distance equals the true shortest distance within every subgraph.
        let (_, partitioning) = paper_partitioning();
        for idx in build_indexes(&partitioning, 3, BackendKind::EpIndex) {
            for lb in idx.lower_bounds() {
                if !lb.new_lbd.is_finite() {
                    continue;
                }
                let shortest = dijkstra_path(idx.subgraph(), lb.a, lb.b).unwrap().distance();
                assert!(
                    lb.new_lbd.approx_eq(shortest),
                    "initial LBD({}, {}) = {} != shortest {shortest}",
                    lb.a,
                    lb.b,
                    lb.new_lbd
                );
            }
        }
    }

    #[test]
    fn updates_keep_lower_bound_property() {
        let (_, partitioning) = paper_partitioning();
        let mut indexes = build_indexes(&partitioning, 2, BackendKind::EpIndex);
        // Repeatedly perturb each subgraph's edges and re-check the bound property.
        for round in 1..5u32 {
            for idx in &mut indexes {
                let updates: Vec<WeightUpdate> = idx
                    .subgraph()
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (i + round as usize).is_multiple_of(3))
                    .map(|(i, e)| {
                        let factor = 0.5 + ((i as f64 * 0.37 + round as f64) % 1.0);
                        WeightUpdate::new(
                            e.global_id,
                            Weight::new(e.initial_weight as f64 * factor),
                        )
                    })
                    .collect();
                idx.apply_updates(&updates).unwrap();
                for lb in idx.lower_bounds() {
                    let shortest = dijkstra_path(idx.subgraph(), lb.a, lb.b)
                        .map(|p| p.distance())
                        .unwrap_or(Weight::INFINITY);
                    assert!(
                        lb.new_lbd <= shortest || lb.new_lbd.approx_eq(shortest),
                        "after update: LBD({}, {}) = {} exceeds shortest {shortest}",
                        lb.a,
                        lb.b,
                        lb.new_lbd
                    );
                }
            }
        }
    }

    #[test]
    fn ep_and_mfp_backends_agree_after_updates() {
        let (_, partitioning) = paper_partitioning();
        let mut ep = build_indexes(&partitioning, 2, BackendKind::EpIndex);
        let mut mfp = build_indexes(&partitioning, 2, BackendKind::MfpTree);
        for (a, b) in ep.iter_mut().zip(mfp.iter_mut()) {
            let updates: Vec<WeightUpdate> = a
                .subgraph()
                .edges()
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == 0)
                .map(|(i, e)| {
                    WeightUpdate::new(e.global_id, Weight::new(e.initial_weight as f64 + i as f64))
                })
                .collect();
            a.apply_updates(&updates).unwrap();
            b.apply_updates(&updates).unwrap();
            let la: Vec<_> = a.lower_bounds().collect();
            let lb: Vec<_> = b.lower_bounds().collect();
            assert_eq!(la.len(), lb.len());
            for (x, y) in la.iter().zip(lb.iter()) {
                assert_eq!(x.a, y.a);
                assert_eq!(x.b, y.b);
                assert!(x.new_lbd.approx_eq(y.new_lbd), "{} vs {}", x.new_lbd, y.new_lbd);
            }
        }
    }

    #[test]
    fn apply_updates_reports_touched_paths_and_changes() {
        let (_, partitioning) = paper_partitioning();
        let mut indexes = build_indexes(&partitioning, 2, BackendKind::EpIndex);
        let idx = indexes
            .iter_mut()
            .find(|i| i.num_pairs() > 0 && i.subgraph().num_edges() > 2)
            .expect("some subgraph has pairs");
        // Raise the weight of every edge sharply: distances of all bounding paths grow.
        let updates: Vec<WeightUpdate> = idx
            .subgraph()
            .edges()
            .iter()
            .map(|e| WeightUpdate::new(e.global_id, Weight::new(e.initial_weight as f64 * 10.0)))
            .collect();
        let (changes, touched) = idx.apply_updates(&updates).unwrap();
        assert!(touched > 0, "bounding paths must have been adjusted");
        assert!(!changes.is_empty(), "lower bounds must change when all weights grow 10x");
        // A second identical batch changes nothing.
        let (changes2, _) = idx.apply_updates(&updates).unwrap();
        assert!(changes2.is_empty());
    }

    #[test]
    fn updates_for_foreign_edges_are_rejected() {
        let (_, partitioning) = paper_partitioning();
        let mut indexes = build_indexes(&partitioning, 1, BackendKind::EpIndex);
        let foreign = EdgeId(10_000);
        let err =
            indexes[0].apply_updates(&[WeightUpdate::new(foreign, Weight::new(1.0))]).unwrap_err();
        assert!(matches!(err, GraphError::EdgeOutOfRange { .. }));
    }

    #[test]
    fn boundary_distances_from_cover_reachable_boundary_vertices() {
        let (_, partitioning) = paper_partitioning();
        let indexes = build_indexes(&partitioning, 1, BackendKind::EpIndex);
        for idx in &indexes {
            let Some(&start) = idx.subgraph().vertices().first() else { continue };
            let dists = idx.boundary_distances_from(start);
            for (b, d) in dists {
                let expected = dijkstra_path(idx.subgraph(), start, b).unwrap().distance();
                assert!(d.approx_eq(expected));
            }
        }
    }

    #[test]
    fn directed_boundary_distances_respect_direction() {
        let mut b = GraphBuilder::directed(4);
        // 0 -> 1 -> 2 -> 3 and a back edge 3 -> 0.
        b.edge(0, 1, 1).edge(1, 2, 1).edge(2, 3, 1).edge(3, 0, 1);
        let g = b.build().unwrap();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(3)).partition(&g).unwrap();
        for sg in partitioning.subgraphs() {
            let idx = SubgraphIndex::build(sg.clone(), 1, 16, BackendKind::EpIndex);
            for &bv in idx.subgraph().boundary_vertices() {
                // distances *to* bv from bv must be zero in both helper directions.
                let from = idx.boundary_distances_from(bv);
                let to = idx.boundary_distances_to(bv);
                assert!(from.iter().any(|&(x, d)| x == bv && d == Weight::ZERO));
                assert!(to.iter().any(|&(x, d)| x == bv && d == Weight::ZERO));
            }
        }
    }

    #[test]
    fn memory_accounting_is_positive_for_nonempty_indexes() {
        let (_, partitioning) = paper_partitioning();
        let indexes = build_indexes(&partitioning, 2, BackendKind::EpIndex);
        let with_pairs = indexes.iter().filter(|i| i.num_pairs() > 0).count();
        assert!(with_pairs > 0);
        for idx in indexes.iter().filter(|i| i.num_pairs() > 0) {
            assert!(idx.index_memory_bytes() > 0);
            assert!(idx.subgraph_memory_bytes() > 0);
            assert!(idx.num_bounding_paths() >= idx.num_pairs());
        }
    }
}
