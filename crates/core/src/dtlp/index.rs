//! The assembled DTLP index (Algorithms 1 and 2 of the paper).

use crate::dtlp::skeleton::SkeletonGraph;
use crate::dtlp::subgraph_index::{BackendKind, SubgraphIndex};
use ksp_graph::{
    DynamicGraph, EdgeId, GraphError, PartitionConfig, Partitioner, SubgraphId, UpdateBatch,
    VertexId,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

pub use crate::dtlp::subgraph_index::BackendKind as PathStorageBackend;

/// Configuration of the DTLP index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtlpConfig {
    /// Maximum number of vertices per subgraph (the paper's `z`).
    pub max_subgraph_vertices: usize,
    /// Maximum number of bounding paths per boundary pair (the paper's `ξ`).
    pub xi: usize,
    /// Cap on the number of paths enumerated per pair while searching for bounding
    /// paths; truncation trades bound tightness for build time, never correctness.
    pub max_enumerated_per_pair: usize,
    /// Which storage backend maintains the edge → bounding-paths mapping.
    pub backend: PathStorageBackend,
}

impl DtlpConfig {
    /// Creates a configuration with the given `z` and `ξ` and default remaining fields.
    pub fn new(z: usize, xi: usize) -> Self {
        DtlpConfig {
            max_subgraph_vertices: z,
            xi,
            max_enumerated_per_pair: 48,
            backend: BackendKind::EpIndex,
        }
    }

    /// Returns a copy using the MFP-tree backend.
    pub fn with_mfp_backend(mut self) -> Self {
        self.backend = BackendKind::MfpTree;
        self
    }
}

impl Default for DtlpConfig {
    fn default() -> Self {
        DtlpConfig::new(200, 5)
    }
}

/// Statistics recorded while building the index (reported by Figures 15–18 / Table 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuildStats {
    /// Number of subgraphs produced by the partitioner.
    pub num_subgraphs: usize,
    /// Number of subgraphs with more than five boundary vertices (Table 1).
    pub num_subgraphs_boundary_over_5: usize,
    /// Number of boundary vertices (= skeleton vertices).
    pub num_boundary_vertices: usize,
    /// Number of boundary pairs indexed across all subgraphs.
    pub num_pairs: usize,
    /// Total number of bounding paths stored.
    pub num_bounding_paths: usize,
    /// Number of edges in the skeleton graph.
    pub skeleton_edges: usize,
    /// Wall-clock time spent building.
    pub build_time: Duration,
    /// Memory used by the level-one (per-subgraph) index structures, in bytes.
    pub level1_memory_bytes: usize,
    /// Memory used by the skeleton graph, in bytes.
    pub skeleton_memory_bytes: usize,
}

/// Statistics returned by a maintenance (update-batch) call (Figures 19–23).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Number of weight updates applied.
    pub updates_applied: usize,
    /// Number of bounding-path distance adjustments performed.
    pub paths_touched: usize,
    /// Number of boundary pairs whose lower bound distance changed.
    pub pairs_changed: usize,
    /// Number of skeleton edges whose weight changed as a result.
    pub skeleton_edges_changed: usize,
}

/// The Distributed Two-Level Path index over one graph.
#[derive(Debug, Clone)]
pub struct DtlpIndex {
    config: DtlpConfig,
    directed: bool,
    subgraph_indexes: Vec<SubgraphIndex>,
    vertex_subgraphs: HashMap<VertexId, Vec<SubgraphId>>,
    edge_owner: Vec<SubgraphId>,
    boundary: Vec<VertexId>,
    skeleton: SkeletonGraph,
    build_stats: BuildStats,
}

impl DtlpIndex {
    /// Builds the index for `graph` (Algorithm 1): partition, compute bounding paths
    /// and lower bounds per subgraph, then assemble the skeleton graph.
    pub fn build(graph: &DynamicGraph, config: DtlpConfig) -> Result<Self, GraphError> {
        let start = Instant::now();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(config.max_subgraph_vertices))
                .partition(graph)?;

        let boundary = partitioning.boundary_vertices().to_vec();
        let num_subgraphs = partitioning.num_subgraphs();
        let num_subgraphs_boundary_over_5 = partitioning.subgraphs_with_boundary_over(5);
        let mut vertex_subgraphs = HashMap::new();
        for v in graph.vertices() {
            let sgs = partitioning.subgraphs_of_vertex(v).to_vec();
            vertex_subgraphs.insert(v, sgs);
        }
        let edge_owner: Vec<SubgraphId> =
            graph.edge_ids().map(|e| partitioning.owner_of_edge(e)).collect();

        let subgraph_indexes: Vec<SubgraphIndex> = partitioning
            .into_subgraphs()
            .into_iter()
            .map(|sg| {
                SubgraphIndex::build(sg, config.xi, config.max_enumerated_per_pair, config.backend)
            })
            .collect();

        let mut index = Self::assemble(
            config,
            graph.is_directed(),
            subgraph_indexes,
            vertex_subgraphs,
            edge_owner,
            boundary,
        );
        index.build_stats.num_subgraphs = num_subgraphs;
        index.build_stats.num_subgraphs_boundary_over_5 = num_subgraphs_boundary_over_5;
        index.build_stats.build_time = start.elapsed();
        Ok(index)
    }

    /// Assembles an index from per-subgraph indexes that may have been built elsewhere
    /// (e.g. in parallel on the workers of the distributed runtime).
    pub fn assemble(
        config: DtlpConfig,
        directed: bool,
        subgraph_indexes: Vec<SubgraphIndex>,
        vertex_subgraphs: HashMap<VertexId, Vec<SubgraphId>>,
        edge_owner: Vec<SubgraphId>,
        boundary: Vec<VertexId>,
    ) -> Self {
        let mut skeleton = SkeletonGraph::new(directed);
        let mut num_pairs = 0;
        let mut num_bounding_paths = 0;
        let mut level1_memory_bytes = 0;
        for idx in &subgraph_indexes {
            num_pairs += idx.num_pairs();
            num_bounding_paths += idx.num_bounding_paths();
            level1_memory_bytes += idx.index_memory_bytes();
            for lb in idx.lower_bounds() {
                skeleton.set_contribution(lb.a, lb.b, idx.id(), lb.new_lbd);
            }
        }
        let build_stats = BuildStats {
            num_subgraphs: subgraph_indexes.len(),
            num_subgraphs_boundary_over_5: 0,
            num_boundary_vertices: boundary.len(),
            num_pairs,
            num_bounding_paths,
            skeleton_edges: skeleton.num_skeleton_edges(),
            build_time: Duration::default(),
            level1_memory_bytes,
            skeleton_memory_bytes: skeleton.memory_bytes(),
        };
        DtlpIndex {
            config,
            directed,
            subgraph_indexes,
            vertex_subgraphs,
            edge_owner,
            boundary,
            skeleton,
            build_stats,
        }
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &DtlpConfig {
        &self.config
    }

    /// Whether the indexed graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Build statistics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// The skeleton graph `Gλ`.
    pub fn skeleton(&self) -> &SkeletonGraph {
        &self.skeleton
    }

    /// The per-subgraph indexes (indexed by [`SubgraphId`]).
    pub fn subgraph_indexes(&self) -> &[SubgraphIndex] {
        &self.subgraph_indexes
    }

    /// The index of one subgraph.
    pub fn subgraph_index(&self, id: SubgraphId) -> &SubgraphIndex {
        &self.subgraph_indexes[id.index()]
    }

    /// Number of subgraphs.
    pub fn num_subgraphs(&self) -> usize {
        self.subgraph_indexes.len()
    }

    /// All boundary vertices, sorted ascending.
    pub fn boundary_vertices(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Whether `v` is a boundary vertex.
    pub fn is_boundary(&self, v: VertexId) -> bool {
        self.boundary.binary_search(&v).is_ok()
    }

    /// The subgraphs a vertex belongs to.
    pub fn subgraphs_of_vertex(&self, v: VertexId) -> &[SubgraphId] {
        self.vertex_subgraphs.get(&v).map(|s| s.as_slice()).unwrap_or(&[])
    }

    /// Every vertex → subgraphs membership entry, in unspecified order.
    /// Exposed so the storage layer can persist the table exactly as built
    /// (per-vertex membership order matters to refine-step candidate order).
    pub fn vertex_memberships(&self) -> impl Iterator<Item = (VertexId, &[SubgraphId])> {
        self.vertex_subgraphs.iter().map(|(&v, sgs)| (v, sgs.as_slice()))
    }

    /// The subgraph owning an edge.
    pub fn owner_of_edge(&self, e: EdgeId) -> SubgraphId {
        self.edge_owner[e.index()]
    }

    /// The owner of every edge, indexed by [`EdgeId`]. Exposed so the storage
    /// layer can persist the ownership table wholesale.
    pub fn edge_owners(&self) -> &[SubgraphId] {
        &self.edge_owner
    }

    /// The subgraphs containing both vertices (the candidates examined by the refine
    /// step for one adjacent pair of a reference path).
    pub fn subgraphs_containing_pair(&self, a: VertexId, b: VertexId) -> Vec<SubgraphId> {
        let sa = self.subgraphs_of_vertex(a);
        let sb = self.subgraphs_of_vertex(b);
        sa.iter().filter(|id| sb.contains(id)).copied().collect()
    }

    /// Splits a batch of updates by owning subgraph, mirroring how the EntranceSpout
    /// scatters an update stream to the SubgraphBolts.
    pub fn route_batch(
        &self,
        batch: &UpdateBatch,
    ) -> Result<HashMap<SubgraphId, Vec<ksp_graph::WeightUpdate>>, GraphError> {
        let mut per_subgraph: HashMap<SubgraphId, Vec<ksp_graph::WeightUpdate>> = HashMap::new();
        for u in batch.iter() {
            let owner = *self.edge_owner.get(u.edge.index()).ok_or(GraphError::EdgeOutOfRange {
                edge: u.edge,
                num_edges: self.edge_owner.len(),
            })?;
            per_subgraph.entry(owner).or_default().push(*u);
        }
        Ok(per_subgraph)
    }

    /// Applies the updates destined for one subgraph (they must all belong to it) and
    /// patches the skeleton graph with the resulting lower-bound changes. This is the
    /// unit of work a single worker performs during maintenance; the distributed
    /// runtime calls it per subgraph so it can attribute the cost to the owning server.
    pub fn apply_updates_for_subgraph(
        &mut self,
        sg_id: SubgraphId,
        updates: &[ksp_graph::WeightUpdate],
    ) -> Result<MaintenanceStats, GraphError> {
        let idx = &mut self.subgraph_indexes[sg_id.index()];
        let (changes, touched) = idx.apply_updates(updates)?;
        let mut stats = MaintenanceStats {
            updates_applied: updates.len(),
            paths_touched: touched,
            pairs_changed: changes.len(),
            skeleton_edges_changed: 0,
        };
        for c in changes {
            if self.skeleton.set_contribution(c.a, c.b, sg_id, c.new_lbd) {
                stats.skeleton_edges_changed += 1;
            }
        }
        Ok(stats)
    }

    /// Applies a batch of weight updates (Algorithm 2): routes each update to the
    /// owning subgraph, refreshes bounding-path distances and lower bounds, and patches
    /// the skeleton graph.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<MaintenanceStats, GraphError> {
        let per_subgraph = self.route_batch(batch)?;
        let mut stats = MaintenanceStats::default();
        for (sg_id, updates) in per_subgraph {
            let part = self.apply_updates_for_subgraph(sg_id, &updates)?;
            stats.updates_applied += part.updates_applied;
            stats.paths_touched += part.paths_touched;
            stats.pairs_changed += part.pairs_changed;
            stats.skeleton_edges_changed += part.skeleton_edges_changed;
        }
        Ok(stats)
    }

    /// Total memory of the level-one index structures across all subgraphs, in bytes.
    pub fn level1_memory_bytes(&self) -> usize {
        self.subgraph_indexes.iter().map(|i| i.index_memory_bytes()).sum()
    }

    /// Memory of the skeleton graph in bytes.
    pub fn skeleton_memory_bytes(&self) -> usize {
        self.skeleton.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_algo::dijkstra_path;
    use ksp_graph::{GraphBuilder, GraphView, Weight};
    use ksp_workload::{
        QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
        TrafficModel,
    };

    fn paper_graph() -> DynamicGraph {
        let edges: &[(u32, u32, u32)] = &[
            (1, 2, 3),
            (1, 3, 3),
            (2, 3, 6),
            (2, 4, 3),
            (3, 5, 2),
            (4, 5, 3),
            (4, 6, 4),
            (5, 6, 4),
            (4, 7, 3),
            (6, 9, 3),
            (7, 8, 5),
            (8, 9, 4),
            (8, 10, 6),
            (9, 10, 5),
            (9, 14, 7),
            (10, 11, 5),
            (11, 12, 3),
            (12, 13, 3),
            (10, 13, 6),
            (13, 14, 3),
            (13, 18, 3),
            (14, 16, 3),
            (16, 13, 5),
            (16, 17, 2),
            (17, 18, 2),
            (18, 19, 3),
        ];
        let mut b = GraphBuilder::undirected(19);
        for &(x, y, w) in edges {
            b.edge(x - 1, y - 1, w);
        }
        b.build().unwrap()
    }

    fn road_network(n: usize, seed: u64) -> DynamicGraph {
        RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap().graph
    }

    #[test]
    fn build_produces_consistent_statistics() {
        let g = paper_graph();
        let index = DtlpIndex::build(&g, DtlpConfig::new(6, 3)).unwrap();
        let stats = index.build_stats();
        assert_eq!(stats.num_subgraphs, index.num_subgraphs());
        assert_eq!(stats.num_boundary_vertices, index.boundary_vertices().len());
        assert_eq!(stats.skeleton_edges, index.skeleton().num_skeleton_edges());
        assert!(stats.num_pairs > 0);
        assert!(stats.num_bounding_paths >= stats.num_pairs);
        assert!(stats.level1_memory_bytes > 0);
        assert!(stats.skeleton_memory_bytes > 0);
        // Every boundary vertex appears in the skeleton.
        for &b in index.boundary_vertices() {
            assert!(index.skeleton().contains(b), "boundary vertex {b} missing from skeleton");
        }
    }

    #[test]
    fn theorem2_skeleton_distance_is_a_lower_bound_on_graph_distance() {
        let g = road_network(300, 11);
        let index = DtlpIndex::build(&g, DtlpConfig::new(20, 2)).unwrap();
        let workload = QueryWorkload::generate_from_candidates(
            index.boundary_vertices(),
            QueryWorkloadConfig::new(40, 1),
            7,
        );
        for q in workload.iter() {
            let skeleton_dist = dijkstra_path(index.skeleton(), q.source, q.target)
                .map(|p| p.distance())
                .unwrap_or(Weight::INFINITY);
            let graph_dist = dijkstra_path(&g, q.source, q.target)
                .map(|p| p.distance())
                .unwrap_or(Weight::INFINITY);
            assert!(
                skeleton_dist <= graph_dist || skeleton_dist.approx_eq(graph_dist),
                "Theorem 2 violated for {} -> {}: skeleton {skeleton_dist} > graph {graph_dist}",
                q.source,
                q.target
            );
        }
    }

    #[test]
    fn theorem2_holds_after_traffic_updates() {
        let mut g = road_network(250, 3);
        let mut index = DtlpIndex::build(&g, DtlpConfig::new(18, 2)).unwrap();
        let mut traffic = TrafficModel::new(&g, TrafficConfig::new(0.4, 0.5), 5);
        for _ in 0..3 {
            let batch = traffic.next_snapshot();
            g.apply_batch(&batch).unwrap();
            index.apply_batch(&batch).unwrap();
        }
        let workload = QueryWorkload::generate_from_candidates(
            index.boundary_vertices(),
            QueryWorkloadConfig::new(30, 1),
            13,
        );
        for q in workload.iter() {
            let skeleton_dist = dijkstra_path(index.skeleton(), q.source, q.target)
                .map(|p| p.distance())
                .unwrap_or(Weight::INFINITY);
            let graph_dist = dijkstra_path(&g, q.source, q.target)
                .map(|p| p.distance())
                .unwrap_or(Weight::INFINITY);
            assert!(
                skeleton_dist <= graph_dist || skeleton_dist.approx_eq(graph_dist),
                "Theorem 2 violated after updates for {} -> {}",
                q.source,
                q.target
            );
        }
    }

    #[test]
    fn subgraph_weights_track_applied_batches() {
        let g = road_network(200, 9);
        let mut index = DtlpIndex::build(&g, DtlpConfig::new(15, 1)).unwrap();
        let edge = EdgeId(0);
        let owner = index.owner_of_edge(edge);
        let batch = UpdateBatch::new(vec![ksp_graph::WeightUpdate::new(edge, Weight::new(123.0))]);
        let stats = index.apply_batch(&batch).unwrap();
        assert_eq!(stats.updates_applied, 1);
        let stored = index.subgraph_index(owner).subgraph().edge(edge).unwrap();
        assert_eq!(stored.current_weight, Weight::new(123.0));
    }

    #[test]
    fn apply_batch_rejects_unknown_edges() {
        let g = road_network(150, 2);
        let mut index = DtlpIndex::build(&g, DtlpConfig::new(15, 1)).unwrap();
        let batch =
            UpdateBatch::new(vec![ksp_graph::WeightUpdate::new(EdgeId(999_999), Weight::new(1.0))]);
        assert!(index.apply_batch(&batch).is_err());
    }

    #[test]
    fn skeleton_is_much_smaller_than_the_graph() {
        let g = road_network(800, 21);
        let index = DtlpIndex::build(&g, DtlpConfig::new(60, 1)).unwrap();
        assert!(index.skeleton().num_skeleton_vertices() < g.num_vertices() / 2);
        assert!(index.skeleton().num_skeleton_vertices() > 0);
    }

    #[test]
    fn larger_z_yields_smaller_skeleton() {
        // Table 3 of the paper: the skeleton shrinks as z grows.
        let g = road_network(600, 5);
        let small = DtlpIndex::build(&g, DtlpConfig::new(15, 1)).unwrap();
        let large = DtlpIndex::build(&g, DtlpConfig::new(80, 1)).unwrap();
        assert!(
            large.skeleton().num_skeleton_vertices() < small.skeleton().num_skeleton_vertices()
        );
        assert!(large.num_subgraphs() < small.num_subgraphs());
    }

    #[test]
    fn directed_index_doubles_pair_work() {
        let cfg = RoadNetworkConfig::with_vertices(200).directed();
        let gd = RoadNetworkGenerator::new(cfg).generate(31).unwrap().graph;
        let gu = road_network(200, 31);
        let id = DtlpIndex::build(&gd, DtlpConfig::new(15, 1)).unwrap();
        let iu = DtlpIndex::build(&gu, DtlpConfig::new(15, 1)).unwrap();
        assert!(id.is_directed());
        assert!(!iu.is_directed());
        // The directed index maintains bounds per direction, so it stores more pairs
        // relative to its boundary-vertex count.
        assert!(id.build_stats().num_pairs > 0);
        assert!(iu.build_stats().num_pairs > 0);
    }

    #[test]
    fn vertex_and_edge_ownership_lookups_are_consistent() {
        let g = road_network(300, 8);
        let index = DtlpIndex::build(&g, DtlpConfig::new(25, 1)).unwrap();
        for e in g.edge_ids().take(100) {
            let owner = index.owner_of_edge(e);
            let record = g.edge(e);
            assert!(index.subgraphs_of_vertex(record.u).contains(&owner));
            assert!(index.subgraphs_of_vertex(record.v).contains(&owner));
            assert!(index.subgraph_index(owner).subgraph().owns_edge(e));
        }
        for &b in index.boundary_vertices().iter().take(50) {
            assert!(index.is_boundary(b));
            assert!(index.subgraphs_of_vertex(b).len() >= 2);
        }
    }

    #[test]
    fn maintenance_stats_reflect_work_done() {
        let g = road_network(300, 10);
        let mut index = DtlpIndex::build(&g, DtlpConfig::new(20, 3)).unwrap();
        let mut traffic = TrafficModel::new(&g, TrafficConfig::new(0.5, 0.5), 3);
        let batch = traffic.next_snapshot();
        let stats = index.apply_batch(&batch).unwrap();
        assert_eq!(stats.updates_applied, batch.len());
        assert!(stats.paths_touched > 0);
        assert!(stats.pairs_changed > 0);
        assert!(stats.skeleton_edges_changed > 0);
        assert!(stats.skeleton_edges_changed <= stats.pairs_changed);
    }

    #[test]
    fn skeleton_view_num_vertices_covers_ids() {
        let g = paper_graph();
        let index = DtlpIndex::build(&g, DtlpConfig::new(6, 2)).unwrap();
        let max_boundary = index.boundary_vertices().iter().map(|v| v.index()).max().unwrap();
        assert!(GraphView::num_vertices(index.skeleton()) > max_boundary);
    }
}
