//! The assembled DTLP index (Algorithms 1 and 2 of the paper).

use crate::dtlp::skeleton::SkeletonGraph;
use crate::dtlp::subgraph_index::{BackendKind, SubgraphIndex};
use ksp_graph::{
    DynamicGraph, EdgeId, GraphError, PartitionConfig, Partitioner, SubgraphId, UpdateBatch,
    VertexId,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::dtlp::subgraph_index::BackendKind as PathStorageBackend;

/// Configuration of the DTLP index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtlpConfig {
    /// Maximum number of vertices per subgraph (the paper's `z`).
    pub max_subgraph_vertices: usize,
    /// Maximum number of bounding paths per boundary pair (the paper's `ξ`).
    pub xi: usize,
    /// Cap on the number of paths enumerated per pair while searching for bounding
    /// paths; truncation trades bound tightness for build time, never correctness.
    pub max_enumerated_per_pair: usize,
    /// Which storage backend maintains the edge → bounding-paths mapping.
    pub backend: PathStorageBackend,
}

impl DtlpConfig {
    /// Creates a configuration with the given `z` and `ξ` and default remaining fields.
    pub fn new(z: usize, xi: usize) -> Self {
        DtlpConfig {
            max_subgraph_vertices: z,
            xi,
            max_enumerated_per_pair: 48,
            backend: BackendKind::EpIndex,
        }
    }

    /// Returns a copy using the MFP-tree backend.
    pub fn with_mfp_backend(mut self) -> Self {
        self.backend = BackendKind::MfpTree;
        self
    }
}

impl Default for DtlpConfig {
    fn default() -> Self {
        DtlpConfig::new(200, 5)
    }
}

/// Statistics recorded while building the index (reported by Figures 15–18 / Table 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuildStats {
    /// Number of subgraphs produced by the partitioner.
    pub num_subgraphs: usize,
    /// Number of subgraphs with more than five boundary vertices (Table 1).
    pub num_subgraphs_boundary_over_5: usize,
    /// Number of boundary vertices (= skeleton vertices).
    pub num_boundary_vertices: usize,
    /// Number of boundary pairs indexed across all subgraphs.
    pub num_pairs: usize,
    /// Total number of bounding paths stored.
    pub num_bounding_paths: usize,
    /// Number of edges in the skeleton graph.
    pub skeleton_edges: usize,
    /// Wall-clock time spent building.
    pub build_time: Duration,
    /// Memory used by the level-one (per-subgraph) index structures, in bytes.
    pub level1_memory_bytes: usize,
    /// Memory used by the skeleton graph, in bytes.
    pub skeleton_memory_bytes: usize,
}

/// Statistics returned by a maintenance (update-batch) call (Figures 19–23).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Number of weight updates applied.
    pub updates_applied: usize,
    /// Number of bounding-path distance adjustments performed.
    pub paths_touched: usize,
    /// Number of boundary pairs whose lower bound distance changed.
    pub pairs_changed: usize,
    /// Number of skeleton edges whose weight changed as a result.
    pub skeleton_edges_changed: usize,
    /// The subgraphs that received at least one update from this batch —
    /// exactly the per-subgraph indexes the copy-on-write maintenance path
    /// unshared. Sorted ascending. Everything *not* listed here still shares
    /// its allocation with the pre-batch index, and the storage layer writes
    /// incremental checkpoints covering only these ids.
    pub dirty_subgraphs: Vec<SubgraphId>,
}

/// The Distributed Two-Level Path index over one graph.
///
/// The index is a copy-on-write persistent structure: every per-subgraph index
/// sits behind its own `Arc`, and the (immutable after build) membership,
/// ownership and boundary tables behind shared ones. `clone()` is therefore a
/// handle copy — O(#subgraphs) reference-count bumps — and
/// [`DtlpIndex::apply_batch`] on the clone deep-copies *only* the subgraph
/// indexes the batch routes updates into, leaving every other entry
/// pointer-shared with the original. This is what makes epoch publication in
/// the serving layer proportional to the update batch instead of the index.
#[derive(Debug, Clone)]
pub struct DtlpIndex {
    config: DtlpConfig,
    directed: bool,
    subgraph_indexes: Vec<Arc<SubgraphIndex>>,
    vertex_subgraphs: Arc<HashMap<VertexId, Vec<SubgraphId>>>,
    edge_owner: Arc<Vec<SubgraphId>>,
    boundary: Arc<Vec<VertexId>>,
    skeleton: Arc<SkeletonGraph>,
    build_stats: BuildStats,
}

impl DtlpIndex {
    /// Builds the index for `graph` (Algorithm 1): partition, compute bounding paths
    /// and lower bounds per subgraph, then assemble the skeleton graph.
    pub fn build(graph: &DynamicGraph, config: DtlpConfig) -> Result<Self, GraphError> {
        let start = Instant::now();
        let partitioning =
            Partitioner::new(PartitionConfig::with_max_vertices(config.max_subgraph_vertices))
                .partition(graph)?;

        let boundary = partitioning.boundary_vertices().to_vec();
        let num_subgraphs = partitioning.num_subgraphs();
        let num_subgraphs_boundary_over_5 = partitioning.subgraphs_with_boundary_over(5);
        let mut vertex_subgraphs = HashMap::new();
        for v in graph.vertices() {
            let sgs = partitioning.subgraphs_of_vertex(v).to_vec();
            vertex_subgraphs.insert(v, sgs);
        }
        let edge_owner: Vec<SubgraphId> =
            graph.edge_ids().map(|e| partitioning.owner_of_edge(e)).collect();

        let subgraph_indexes: Vec<SubgraphIndex> = partitioning
            .into_subgraphs()
            .into_iter()
            .map(|sg| {
                SubgraphIndex::build(sg, config.xi, config.max_enumerated_per_pair, config.backend)
            })
            .collect();

        let mut index = Self::assemble(
            config,
            graph.is_directed(),
            subgraph_indexes,
            vertex_subgraphs,
            edge_owner,
            boundary,
        );
        index.build_stats.num_subgraphs = num_subgraphs;
        index.build_stats.num_subgraphs_boundary_over_5 = num_subgraphs_boundary_over_5;
        index.build_stats.build_time = start.elapsed();
        Ok(index)
    }

    /// Assembles an index from per-subgraph indexes that may have been built elsewhere
    /// (e.g. in parallel on the workers of the distributed runtime).
    pub fn assemble(
        config: DtlpConfig,
        directed: bool,
        subgraph_indexes: Vec<SubgraphIndex>,
        vertex_subgraphs: HashMap<VertexId, Vec<SubgraphId>>,
        edge_owner: Vec<SubgraphId>,
        boundary: Vec<VertexId>,
    ) -> Self {
        Self::assemble_shared(
            config,
            directed,
            subgraph_indexes.into_iter().map(Arc::new).collect(),
            vertex_subgraphs,
            edge_owner,
            boundary,
        )
    }

    /// Like [`DtlpIndex::assemble`], but takes already-shared per-subgraph
    /// handles so callers that hold `Arc`s (the storage layer's checkpoint
    /// decode, the incremental-image apply path) assemble without copying.
    pub fn assemble_shared(
        config: DtlpConfig,
        directed: bool,
        subgraph_indexes: Vec<Arc<SubgraphIndex>>,
        vertex_subgraphs: HashMap<VertexId, Vec<SubgraphId>>,
        edge_owner: Vec<SubgraphId>,
        boundary: Vec<VertexId>,
    ) -> Self {
        let (skeleton, build_stats) =
            Self::derive_from_parts(directed, &subgraph_indexes, &boundary);
        DtlpIndex {
            config,
            directed,
            subgraph_indexes,
            vertex_subgraphs: Arc::new(vertex_subgraphs),
            edge_owner: Arc::new(edge_owner),
            boundary: Arc::new(boundary),
            skeleton: Arc::new(skeleton),
            build_stats,
        }
    }

    /// Rebuilds the skeleton graph and the assembly-time statistics from the
    /// per-subgraph indexes. The skeleton is a deterministic function of the
    /// `last_lbd` state every [`SubgraphIndex`] carries, so assembling it from
    /// a mixture of retained and replaced subgraph indexes (the incremental
    /// checkpoint recovery path) reproduces the live skeleton exactly.
    fn derive_from_parts(
        directed: bool,
        subgraph_indexes: &[Arc<SubgraphIndex>],
        boundary: &[VertexId],
    ) -> (SkeletonGraph, BuildStats) {
        let mut skeleton = SkeletonGraph::new(directed);
        let mut num_pairs = 0;
        let mut num_bounding_paths = 0;
        let mut level1_memory_bytes = 0;
        for idx in subgraph_indexes {
            num_pairs += idx.num_pairs();
            num_bounding_paths += idx.num_bounding_paths();
            level1_memory_bytes += idx.index_memory_bytes();
            for lb in idx.lower_bounds() {
                skeleton.set_contribution(lb.a, lb.b, idx.id(), lb.new_lbd);
            }
        }
        let build_stats = BuildStats {
            num_subgraphs: subgraph_indexes.len(),
            num_subgraphs_boundary_over_5: 0,
            num_boundary_vertices: boundary.len(),
            num_pairs,
            num_bounding_paths,
            skeleton_edges: skeleton.num_skeleton_edges(),
            build_time: Duration::default(),
            level1_memory_bytes,
            skeleton_memory_bytes: skeleton.memory_bytes(),
        };
        (skeleton, build_stats)
    }

    /// A new index sharing everything with `self` except the given per-subgraph
    /// indexes, which replace the entries with matching ids; the skeleton graph
    /// and assembly statistics are re-derived. This is the apply primitive for
    /// incremental checkpoints: recovery slots the dirty subgraph images from a
    /// partial image into the index recovered so far.
    ///
    /// Fails if a replacement's id is outside the index's subgraph range.
    pub fn with_replaced_subgraphs(
        &self,
        replacements: Vec<Arc<SubgraphIndex>>,
    ) -> Result<Self, GraphError> {
        let mut subgraph_indexes = self.subgraph_indexes.clone();
        for replacement in replacements {
            let slot = replacement.id().index();
            if slot >= subgraph_indexes.len() {
                return Err(GraphError::SubgraphOutOfRange {
                    subgraph: replacement.id(),
                    num_subgraphs: subgraph_indexes.len(),
                });
            }
            subgraph_indexes[slot] = replacement;
        }
        let (skeleton, mut build_stats) =
            Self::derive_from_parts(self.directed, &subgraph_indexes, &self.boundary);
        build_stats.num_subgraphs_boundary_over_5 = self.build_stats.num_subgraphs_boundary_over_5;
        Ok(DtlpIndex {
            config: self.config,
            directed: self.directed,
            subgraph_indexes,
            vertex_subgraphs: Arc::clone(&self.vertex_subgraphs),
            edge_owner: Arc::clone(&self.edge_owner),
            boundary: Arc::clone(&self.boundary),
            skeleton: Arc::new(skeleton),
            build_stats,
        })
    }

    /// A clone that shares no allocation with `self`: every per-subgraph index
    /// and every shared table is duplicated. This is exactly the
    /// clone-the-world publish cost the copy-on-write representation removed;
    /// the `epoch_publish` benchmark uses it as the baseline, and sharing
    /// tests use it as a guaranteed-unshared control.
    pub fn deep_clone(&self) -> Self {
        DtlpIndex {
            config: self.config,
            directed: self.directed,
            subgraph_indexes: self
                .subgraph_indexes
                .iter()
                .map(|idx| Arc::new(idx.deep_clone()))
                .collect(),
            vertex_subgraphs: Arc::new((*self.vertex_subgraphs).clone()),
            edge_owner: Arc::new((*self.edge_owner).clone()),
            boundary: Arc::new((*self.boundary).clone()),
            skeleton: Arc::new((*self.skeleton).clone()),
            build_stats: self.build_stats.clone(),
        }
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &DtlpConfig {
        &self.config
    }

    /// Whether the indexed graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Build statistics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// The skeleton graph `Gλ`.
    pub fn skeleton(&self) -> &SkeletonGraph {
        &self.skeleton
    }

    /// The shared handle to the skeleton graph. Epochs between which no lower
    /// bound moved return pointer-equal handles.
    pub fn skeleton_handle(&self) -> &Arc<SkeletonGraph> {
        &self.skeleton
    }

    /// The per-subgraph indexes (indexed by [`SubgraphId`]), as the shared
    /// handles the copy-on-write clone path bumps. Pointer-equal handles
    /// across two indexes mean the subgraph state is structurally shared.
    pub fn subgraph_indexes(&self) -> &[Arc<SubgraphIndex>] {
        &self.subgraph_indexes
    }

    /// The index of one subgraph.
    pub fn subgraph_index(&self, id: SubgraphId) -> &SubgraphIndex {
        &self.subgraph_indexes[id.index()]
    }

    /// The shared handle of one subgraph's index. `Arc::ptr_eq` over handles
    /// from two epochs tells whether publication shared or copied the entry.
    pub fn subgraph_index_handle(&self, id: SubgraphId) -> &Arc<SubgraphIndex> {
        &self.subgraph_indexes[id.index()]
    }

    /// Number of subgraphs.
    pub fn num_subgraphs(&self) -> usize {
        self.subgraph_indexes.len()
    }

    /// All boundary vertices, sorted ascending.
    pub fn boundary_vertices(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Whether `v` is a boundary vertex.
    pub fn is_boundary(&self, v: VertexId) -> bool {
        self.boundary.binary_search(&v).is_ok()
    }

    /// The subgraphs a vertex belongs to.
    pub fn subgraphs_of_vertex(&self, v: VertexId) -> &[SubgraphId] {
        self.vertex_subgraphs.get(&v).map(|s| s.as_slice()).unwrap_or(&[])
    }

    /// Every vertex → subgraphs membership entry, in unspecified order.
    /// Exposed so the storage layer can persist the table exactly as built
    /// (per-vertex membership order matters to refine-step candidate order).
    pub fn vertex_memberships(&self) -> impl Iterator<Item = (VertexId, &[SubgraphId])> {
        self.vertex_subgraphs.iter().map(|(&v, sgs)| (v, sgs.as_slice()))
    }

    /// The subgraph owning an edge.
    pub fn owner_of_edge(&self, e: EdgeId) -> SubgraphId {
        self.edge_owner[e.index()]
    }

    /// The owner of every edge, indexed by [`EdgeId`]. Exposed so the storage
    /// layer can persist the ownership table wholesale.
    pub fn edge_owners(&self) -> &[SubgraphId] {
        &self.edge_owner
    }

    /// The subgraphs containing both vertices (the candidates examined by the refine
    /// step for one adjacent pair of a reference path).
    pub fn subgraphs_containing_pair(&self, a: VertexId, b: VertexId) -> Vec<SubgraphId> {
        let sa = self.subgraphs_of_vertex(a);
        let sb = self.subgraphs_of_vertex(b);
        sa.iter().filter(|id| sb.contains(id)).copied().collect()
    }

    /// Splits a batch of updates by owning subgraph, mirroring how the EntranceSpout
    /// scatters an update stream to the SubgraphBolts.
    pub fn route_batch(
        &self,
        batch: &UpdateBatch,
    ) -> Result<HashMap<SubgraphId, Vec<ksp_graph::WeightUpdate>>, GraphError> {
        let mut per_subgraph: HashMap<SubgraphId, Vec<ksp_graph::WeightUpdate>> = HashMap::new();
        for u in batch.iter() {
            let owner = *self.edge_owner.get(u.edge.index()).ok_or(GraphError::EdgeOutOfRange {
                edge: u.edge,
                num_edges: self.edge_owner.len(),
            })?;
            per_subgraph.entry(owner).or_default().push(*u);
        }
        Ok(per_subgraph)
    }

    /// Applies the updates destined for one subgraph (they must all belong to it) and
    /// patches the skeleton graph with the resulting lower-bound changes. This is the
    /// unit of work a single worker performs during maintenance; the distributed
    /// runtime calls it per subgraph so it can attribute the cost to the owning server.
    pub fn apply_updates_for_subgraph(
        &mut self,
        sg_id: SubgraphId,
        updates: &[ksp_graph::WeightUpdate],
    ) -> Result<MaintenanceStats, GraphError> {
        // Copy-on-write: unshare this subgraph's index (and only this one) if
        // another epoch still references it.
        let idx = Arc::make_mut(&mut self.subgraph_indexes[sg_id.index()]);
        let (changes, touched) = idx.apply_updates(updates)?;
        let mut stats = MaintenanceStats {
            updates_applied: updates.len(),
            paths_touched: touched,
            pairs_changed: changes.len(),
            skeleton_edges_changed: 0,
            dirty_subgraphs: if updates.is_empty() { Vec::new() } else { vec![sg_id] },
        };
        for c in changes {
            // The skeleton unshares lazily too: epochs whose batches move no
            // lower bound keep sharing the previous skeleton allocation.
            if Arc::make_mut(&mut self.skeleton).set_contribution(c.a, c.b, sg_id, c.new_lbd) {
                stats.skeleton_edges_changed += 1;
            }
        }
        Ok(stats)
    }

    /// Applies a batch of weight updates (Algorithm 2): routes each update to the
    /// owning subgraph, refreshes bounding-path distances and lower bounds, and patches
    /// the skeleton graph.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<MaintenanceStats, GraphError> {
        let per_subgraph = self.route_batch(batch)?;
        let mut stats = MaintenanceStats::default();
        for (sg_id, updates) in per_subgraph {
            let part = self.apply_updates_for_subgraph(sg_id, &updates)?;
            stats.updates_applied += part.updates_applied;
            stats.paths_touched += part.paths_touched;
            stats.pairs_changed += part.pairs_changed;
            stats.skeleton_edges_changed += part.skeleton_edges_changed;
            stats.dirty_subgraphs.extend(part.dirty_subgraphs);
        }
        stats.dirty_subgraphs.sort_unstable();
        Ok(stats)
    }

    /// Total memory of the level-one index structures across all subgraphs, in bytes.
    pub fn level1_memory_bytes(&self) -> usize {
        self.subgraph_indexes.iter().map(|i| i.index_memory_bytes()).sum()
    }

    /// Memory of the skeleton graph in bytes.
    pub fn skeleton_memory_bytes(&self) -> usize {
        self.skeleton.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_algo::dijkstra_path;
    use ksp_graph::{GraphBuilder, GraphView, Weight};
    use ksp_workload::{
        QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
        TrafficModel,
    };

    fn paper_graph() -> DynamicGraph {
        let edges: &[(u32, u32, u32)] = &[
            (1, 2, 3),
            (1, 3, 3),
            (2, 3, 6),
            (2, 4, 3),
            (3, 5, 2),
            (4, 5, 3),
            (4, 6, 4),
            (5, 6, 4),
            (4, 7, 3),
            (6, 9, 3),
            (7, 8, 5),
            (8, 9, 4),
            (8, 10, 6),
            (9, 10, 5),
            (9, 14, 7),
            (10, 11, 5),
            (11, 12, 3),
            (12, 13, 3),
            (10, 13, 6),
            (13, 14, 3),
            (13, 18, 3),
            (14, 16, 3),
            (16, 13, 5),
            (16, 17, 2),
            (17, 18, 2),
            (18, 19, 3),
        ];
        let mut b = GraphBuilder::undirected(19);
        for &(x, y, w) in edges {
            b.edge(x - 1, y - 1, w);
        }
        b.build().unwrap()
    }

    fn road_network(n: usize, seed: u64) -> DynamicGraph {
        RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap().graph
    }

    #[test]
    fn build_produces_consistent_statistics() {
        let g = paper_graph();
        let index = DtlpIndex::build(&g, DtlpConfig::new(6, 3)).unwrap();
        let stats = index.build_stats();
        assert_eq!(stats.num_subgraphs, index.num_subgraphs());
        assert_eq!(stats.num_boundary_vertices, index.boundary_vertices().len());
        assert_eq!(stats.skeleton_edges, index.skeleton().num_skeleton_edges());
        assert!(stats.num_pairs > 0);
        assert!(stats.num_bounding_paths >= stats.num_pairs);
        assert!(stats.level1_memory_bytes > 0);
        assert!(stats.skeleton_memory_bytes > 0);
        // Every boundary vertex appears in the skeleton.
        for &b in index.boundary_vertices() {
            assert!(index.skeleton().contains(b), "boundary vertex {b} missing from skeleton");
        }
    }

    #[test]
    fn theorem2_skeleton_distance_is_a_lower_bound_on_graph_distance() {
        let g = road_network(300, 11);
        let index = DtlpIndex::build(&g, DtlpConfig::new(20, 2)).unwrap();
        let workload = QueryWorkload::generate_from_candidates(
            index.boundary_vertices(),
            QueryWorkloadConfig::new(40, 1),
            7,
        );
        for q in workload.iter() {
            let skeleton_dist = dijkstra_path(index.skeleton(), q.source, q.target)
                .map(|p| p.distance())
                .unwrap_or(Weight::INFINITY);
            let graph_dist = dijkstra_path(&g, q.source, q.target)
                .map(|p| p.distance())
                .unwrap_or(Weight::INFINITY);
            assert!(
                skeleton_dist <= graph_dist || skeleton_dist.approx_eq(graph_dist),
                "Theorem 2 violated for {} -> {}: skeleton {skeleton_dist} > graph {graph_dist}",
                q.source,
                q.target
            );
        }
    }

    #[test]
    fn theorem2_holds_after_traffic_updates() {
        let mut g = road_network(250, 3);
        let mut index = DtlpIndex::build(&g, DtlpConfig::new(18, 2)).unwrap();
        let mut traffic = TrafficModel::new(&g, TrafficConfig::new(0.4, 0.5), 5);
        for _ in 0..3 {
            let batch = traffic.next_snapshot();
            g.apply_batch(&batch).unwrap();
            index.apply_batch(&batch).unwrap();
        }
        let workload = QueryWorkload::generate_from_candidates(
            index.boundary_vertices(),
            QueryWorkloadConfig::new(30, 1),
            13,
        );
        for q in workload.iter() {
            let skeleton_dist = dijkstra_path(index.skeleton(), q.source, q.target)
                .map(|p| p.distance())
                .unwrap_or(Weight::INFINITY);
            let graph_dist = dijkstra_path(&g, q.source, q.target)
                .map(|p| p.distance())
                .unwrap_or(Weight::INFINITY);
            assert!(
                skeleton_dist <= graph_dist || skeleton_dist.approx_eq(graph_dist),
                "Theorem 2 violated after updates for {} -> {}",
                q.source,
                q.target
            );
        }
    }

    #[test]
    fn subgraph_weights_track_applied_batches() {
        let g = road_network(200, 9);
        let mut index = DtlpIndex::build(&g, DtlpConfig::new(15, 1)).unwrap();
        let edge = EdgeId(0);
        let owner = index.owner_of_edge(edge);
        let batch = UpdateBatch::new(vec![ksp_graph::WeightUpdate::new(edge, Weight::new(123.0))]);
        let stats = index.apply_batch(&batch).unwrap();
        assert_eq!(stats.updates_applied, 1);
        let stored = index.subgraph_index(owner).subgraph().edge(edge).unwrap();
        assert_eq!(stored.current_weight, Weight::new(123.0));
    }

    #[test]
    fn apply_batch_rejects_unknown_edges() {
        let g = road_network(150, 2);
        let mut index = DtlpIndex::build(&g, DtlpConfig::new(15, 1)).unwrap();
        let batch =
            UpdateBatch::new(vec![ksp_graph::WeightUpdate::new(EdgeId(999_999), Weight::new(1.0))]);
        assert!(index.apply_batch(&batch).is_err());
    }

    #[test]
    fn skeleton_is_much_smaller_than_the_graph() {
        let g = road_network(800, 21);
        let index = DtlpIndex::build(&g, DtlpConfig::new(60, 1)).unwrap();
        assert!(index.skeleton().num_skeleton_vertices() < g.num_vertices() / 2);
        assert!(index.skeleton().num_skeleton_vertices() > 0);
    }

    #[test]
    fn larger_z_yields_smaller_skeleton() {
        // Table 3 of the paper: the skeleton shrinks as z grows.
        let g = road_network(600, 5);
        let small = DtlpIndex::build(&g, DtlpConfig::new(15, 1)).unwrap();
        let large = DtlpIndex::build(&g, DtlpConfig::new(80, 1)).unwrap();
        assert!(
            large.skeleton().num_skeleton_vertices() < small.skeleton().num_skeleton_vertices()
        );
        assert!(large.num_subgraphs() < small.num_subgraphs());
    }

    #[test]
    fn directed_index_doubles_pair_work() {
        let cfg = RoadNetworkConfig::with_vertices(200).directed();
        let gd = RoadNetworkGenerator::new(cfg).generate(31).unwrap().graph;
        let gu = road_network(200, 31);
        let id = DtlpIndex::build(&gd, DtlpConfig::new(15, 1)).unwrap();
        let iu = DtlpIndex::build(&gu, DtlpConfig::new(15, 1)).unwrap();
        assert!(id.is_directed());
        assert!(!iu.is_directed());
        // The directed index maintains bounds per direction, so it stores more pairs
        // relative to its boundary-vertex count.
        assert!(id.build_stats().num_pairs > 0);
        assert!(iu.build_stats().num_pairs > 0);
    }

    #[test]
    fn vertex_and_edge_ownership_lookups_are_consistent() {
        let g = road_network(300, 8);
        let index = DtlpIndex::build(&g, DtlpConfig::new(25, 1)).unwrap();
        for e in g.edge_ids().take(100) {
            let owner = index.owner_of_edge(e);
            let record = g.edge(e);
            assert!(index.subgraphs_of_vertex(record.u).contains(&owner));
            assert!(index.subgraphs_of_vertex(record.v).contains(&owner));
            assert!(index.subgraph_index(owner).subgraph().owns_edge(e));
        }
        for &b in index.boundary_vertices().iter().take(50) {
            assert!(index.is_boundary(b));
            assert!(index.subgraphs_of_vertex(b).len() >= 2);
        }
    }

    #[test]
    fn maintenance_stats_reflect_work_done() {
        let g = road_network(300, 10);
        let mut index = DtlpIndex::build(&g, DtlpConfig::new(20, 3)).unwrap();
        let mut traffic = TrafficModel::new(&g, TrafficConfig::new(0.5, 0.5), 3);
        let batch = traffic.next_snapshot();
        let stats = index.apply_batch(&batch).unwrap();
        assert_eq!(stats.updates_applied, batch.len());
        assert!(stats.paths_touched > 0);
        assert!(stats.pairs_changed > 0);
        assert!(stats.skeleton_edges_changed > 0);
        assert!(stats.skeleton_edges_changed <= stats.pairs_changed);
    }

    #[test]
    fn cloned_index_shares_untouched_subgraphs_and_copies_dirty_ones() {
        let g = road_network(300, 17);
        let base = DtlpIndex::build(&g, DtlpConfig::new(20, 2)).unwrap();
        assert!(base.num_subgraphs() > 3, "test needs several subgraphs");

        // Dirty exactly one subgraph: update a single edge.
        let edge = EdgeId(0);
        let owner = base.owner_of_edge(edge);
        let batch = UpdateBatch::new(vec![ksp_graph::WeightUpdate::new(edge, Weight::new(77.0))]);

        let mut next = base.clone();
        let stats = next.apply_batch(&batch).unwrap();
        assert_eq!(stats.dirty_subgraphs, vec![owner]);

        for id in 0..base.num_subgraphs() {
            let id = ksp_graph::SubgraphId(id as u32);
            let shared = std::sync::Arc::ptr_eq(
                base.subgraph_index_handle(id),
                next.subgraph_index_handle(id),
            );
            if id == owner {
                assert!(!shared, "the dirtied subgraph must be unshared");
                // Even the unshared copy still shares its immutable backend.
                assert_eq!(
                    next.subgraph_index(id).subgraph().edge(edge).unwrap().current_weight,
                    Weight::new(77.0)
                );
            } else {
                assert!(shared, "untouched subgraph {id} was deep-copied");
            }
        }
        // The original is untouched.
        assert_eq!(
            base.subgraph_index(owner).subgraph().edge(edge).unwrap().current_weight,
            g.weight(edge)
        );
        // The auxiliary tables are shared wholesale.
        assert_eq!(base.boundary_vertices(), next.boundary_vertices());

        // A deep clone shares nothing.
        let deep = next.deep_clone();
        for id in 0..next.num_subgraphs() {
            let id = ksp_graph::SubgraphId(id as u32);
            assert!(!std::sync::Arc::ptr_eq(
                next.subgraph_index_handle(id),
                deep.subgraph_index_handle(id)
            ));
        }
    }

    #[test]
    fn replaced_subgraphs_reproduce_incremental_maintenance_exactly() {
        let g = road_network(250, 23);
        let mut live = DtlpIndex::build(&g, DtlpConfig::new(18, 2)).unwrap();
        let baseline = live.clone();
        let mut traffic = TrafficModel::new(&g, TrafficConfig::new(0.4, 0.5), 7);
        let mut dirty = std::collections::BTreeSet::new();
        for _ in 0..3 {
            let stats = live.apply_batch(&traffic.next_snapshot()).unwrap();
            dirty.extend(stats.dirty_subgraphs);
        }
        // Rebuild "recovery style": take the pre-update index and slot in only
        // the dirty subgraph indexes from the live one.
        let replacements: Vec<_> =
            dirty.iter().map(|&id| std::sync::Arc::clone(live.subgraph_index_handle(id))).collect();
        let rebuilt = baseline.with_replaced_subgraphs(replacements).unwrap();
        // The skeleton derived from the mixed set matches the live skeleton
        // edge for edge, bit for bit.
        assert_eq!(rebuilt.skeleton().num_skeleton_edges(), live.skeleton().num_skeleton_edges());
        for e in live.skeleton().edges() {
            let w = rebuilt.skeleton().skeleton_edge_weight(e.a, e.b).unwrap();
            assert_eq!(w.value().to_bits(), e.weight().value().to_bits());
        }
        // A replacement whose id exceeds the target index's range is rejected.
        let coarse = DtlpIndex::build(&g, DtlpConfig::new(200, 1)).unwrap();
        assert!(coarse.num_subgraphs() < live.num_subgraphs());
        let out_of_range = live.num_subgraphs() - 1;
        assert!(coarse
            .with_replaced_subgraphs(vec![std::sync::Arc::clone(
                live.subgraph_index_handle(SubgraphId(out_of_range as u32))
            )])
            .is_err());
    }

    #[test]
    fn skeleton_view_num_vertices_covers_ids() {
        let g = paper_graph();
        let index = DtlpIndex::build(&g, DtlpConfig::new(6, 2)).unwrap();
        let max_boundary = index.boundary_vertices().iter().map(|v| v.index()).max().unwrap();
        assert!(GraphView::num_vertices(index.skeleton()) > max_boundary);
    }
}
