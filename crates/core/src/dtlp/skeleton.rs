//! The skeleton graph `Gλ` (Section 3.6) and the query-time overlay view (Section 5.3).
//!
//! The skeleton graph contains every boundary vertex of every subgraph; a pair of
//! boundary vertices that co-occur in at least one subgraph is connected by an edge
//! whose weight is the *minimum lower bound distance* over those subgraphs. Because
//! each subgraph contributes its own lower bound, the skeleton keeps the per-subgraph
//! contributions and recomputes the minimum whenever one of them changes.
//!
//! Queries whose endpoints are not boundary vertices are handled with an
//! [`OverlayView`]: the endpoints are attached to `Gλ` with temporary edges to the
//! boundary vertices of their home subgraphs, without mutating the shared skeleton.

use ksp_graph::{GraphView, SubgraphId, VertexId, Weight};
use std::collections::HashMap;

/// One edge of the skeleton graph, with per-subgraph lower-bound contributions.
#[derive(Debug, Clone)]
pub struct SkeletonEdge {
    /// First endpoint (source for directed skeletons).
    pub a: VertexId,
    /// Second endpoint (destination for directed skeletons).
    pub b: VertexId,
    /// Lower bound distance contributed by each subgraph containing both endpoints.
    contributions: Vec<(SubgraphId, Weight)>,
    /// Cached minimum over the contributions (the paper's `MBD(a, b)`).
    weight: Weight,
}

impl SkeletonEdge {
    /// The current weight (minimum lower bound distance) of this edge.
    pub fn weight(&self) -> Weight {
        self.weight
    }

    /// The per-subgraph contributions.
    pub fn contributions(&self) -> &[(SubgraphId, Weight)] {
        &self.contributions
    }

    fn set_contribution(&mut self, sg: SubgraphId, w: Weight) -> bool {
        match self.contributions.iter_mut().find(|(s, _)| *s == sg) {
            Some(entry) => entry.1 = w,
            None => self.contributions.push((sg, w)),
        }
        let new_weight =
            self.contributions.iter().map(|&(_, w)| w).min().unwrap_or(Weight::INFINITY);
        let changed = !new_weight.approx_eq(self.weight);
        self.weight = new_weight;
        changed
    }
}

/// The skeleton graph `Gλ`.
#[derive(Debug, Clone)]
pub struct SkeletonGraph {
    directed: bool,
    edges: Vec<SkeletonEdge>,
    edge_lookup: HashMap<(VertexId, VertexId), u32>,
    adj: HashMap<VertexId, Vec<(VertexId, u32)>>,
    max_vertex_id: usize,
}

impl SkeletonGraph {
    /// Creates an empty skeleton graph.
    pub fn new(directed: bool) -> Self {
        SkeletonGraph {
            directed,
            edges: Vec::new(),
            edge_lookup: HashMap::new(),
            adj: HashMap::new(),
            max_vertex_id: 0,
        }
    }

    /// Whether the skeleton is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of (boundary) vertices in the skeleton.
    pub fn num_skeleton_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges in the skeleton.
    pub fn num_skeleton_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the skeleton contains the vertex.
    pub fn contains(&self, v: VertexId) -> bool {
        self.adj.contains_key(&v)
    }

    /// All skeleton vertices (unsorted).
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.adj.keys().copied()
    }

    /// Iterates over all skeleton edges.
    pub fn edges(&self) -> impl Iterator<Item = &SkeletonEdge> {
        self.edges.iter()
    }

    /// Records (or updates) the lower bound distance contributed by subgraph `sg` for
    /// the boundary pair `(a, b)`. Returns `true` if the edge's effective weight (the
    /// minimum over contributions) changed.
    pub fn set_contribution(
        &mut self,
        a: VertexId,
        b: VertexId,
        sg: SubgraphId,
        lbd: Weight,
    ) -> bool {
        let key = self.key(a, b);
        match self.edge_lookup.get(&key) {
            Some(&idx) => self.edges[idx as usize].set_contribution(sg, lbd),
            None => {
                let idx = self.edges.len() as u32;
                self.edges.push(SkeletonEdge {
                    a: key.0,
                    b: key.1,
                    contributions: vec![(sg, lbd)],
                    weight: lbd,
                });
                self.edge_lookup.insert(key, idx);
                self.adj.entry(key.0).or_default().push((key.1, idx));
                if !self.directed {
                    self.adj.entry(key.1).or_default().push((key.0, idx));
                } else {
                    self.adj.entry(key.1).or_default();
                }
                self.max_vertex_id =
                    self.max_vertex_id.max(key.0.index() + 1).max(key.1.index() + 1);
                true
            }
        }
    }

    /// The current weight of the skeleton edge between `a` and `b`, if present.
    pub fn skeleton_edge_weight(&self, a: VertexId, b: VertexId) -> Option<Weight> {
        let key = self.key(a, b);
        self.edge_lookup.get(&key).map(|&i| self.edges[i as usize].weight())
    }

    /// Estimated memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<SkeletonEdge>()
            + self
                .edges
                .iter()
                .map(|e| e.contributions.len() * std::mem::size_of::<(SubgraphId, Weight)>())
                .sum::<usize>()
            + self.edge_lookup.len() * (std::mem::size_of::<(VertexId, VertexId)>() + 4)
            + self
                .adj
                .values()
                .map(|v| v.len() * std::mem::size_of::<(VertexId, u32)>())
                .sum::<usize>()
            + self.adj.len() * std::mem::size_of::<VertexId>()
    }

    /// Builds an overlay view that adds temporary vertices/edges (query endpoints that
    /// are not boundary vertices) on top of this skeleton.
    pub fn overlay(&self) -> OverlayView<'_> {
        OverlayView { skeleton: self, extra: HashMap::new(), max_extra_id: 0 }
    }

    #[inline]
    fn key(&self, a: VertexId, b: VertexId) -> (VertexId, VertexId) {
        if self.directed || a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

impl GraphView for SkeletonGraph {
    fn num_vertices(&self) -> usize {
        self.max_vertex_id
    }

    fn contains_vertex(&self, v: VertexId) -> bool {
        self.adj.contains_key(&v)
    }

    fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, Weight)) {
        if let Some(list) = self.adj.get(&v) {
            for &(to, idx) in list {
                f(to, self.edges[idx as usize].weight());
            }
        }
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        if self.directed {
            let key = (u, v);
            return self.edge_lookup.get(&key).map(|&i| self.edges[i as usize].weight());
        }
        self.skeleton_edge_weight(u, v)
    }
}

/// A read-only view of the skeleton graph plus query-local extra edges.
///
/// The extra edges attach a non-boundary source/destination to the boundary vertices of
/// its home subgraph(s) with lower-bound weights (Section 5.3). The underlying skeleton
/// is not mutated, so concurrent queries can each hold their own overlay.
#[derive(Debug, Clone)]
pub struct OverlayView<'a> {
    skeleton: &'a SkeletonGraph,
    /// Extra adjacency: vertex → (neighbour, weight). Entries are directional; the
    /// caller adds both directions for undirected graphs.
    extra: HashMap<VertexId, Vec<(VertexId, Weight)>>,
    max_extra_id: usize,
}

impl OverlayView<'_> {
    /// Adds a one-directional overlay edge from `u` to `v` with the given weight.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.extra.entry(u).or_default().push((v, w));
        self.extra.entry(v).or_default();
        self.max_extra_id = self.max_extra_id.max(u.index() + 1).max(v.index() + 1);
    }

    /// Adds overlay edges in both directions between `u` and `v`.
    pub fn add_undirected_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.add_edge(u, v, w);
        self.add_edge(v, u, w);
    }

    /// Number of extra (overlay) directed edge entries.
    pub fn num_overlay_edges(&self) -> usize {
        self.extra.values().map(|v| v.len()).sum()
    }
}

impl GraphView for OverlayView<'_> {
    fn num_vertices(&self) -> usize {
        self.skeleton.num_vertices().max(self.max_extra_id)
    }

    fn contains_vertex(&self, v: VertexId) -> bool {
        self.skeleton.contains_vertex(v) || self.extra.contains_key(&v)
    }

    fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, Weight)) {
        self.skeleton.for_each_neighbor(v, &mut f);
        if let Some(list) = self.extra.get(&v) {
            for &(to, w) in list {
                f(to, w);
            }
        }
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let base = self.skeleton.edge_weight(u, v);
        let extra = self
            .extra
            .get(&u)
            .and_then(|list| list.iter().find(|&&(to, _)| to == v).map(|&(_, w)| w));
        match (base, extra) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_algo::dijkstra_path;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn sample_skeleton() -> SkeletonGraph {
        let mut sk = SkeletonGraph::new(false);
        sk.set_contribution(v(1), v(2), SubgraphId(0), Weight::new(5.0));
        sk.set_contribution(v(2), v(3), SubgraphId(1), Weight::new(4.0));
        sk.set_contribution(v(1), v(3), SubgraphId(2), Weight::new(20.0));
        sk
    }

    #[test]
    fn contributions_take_the_minimum() {
        let mut sk = sample_skeleton();
        assert_eq!(sk.skeleton_edge_weight(v(1), v(2)), Some(Weight::new(5.0)));
        // A second subgraph contributes a smaller bound: the weight drops.
        assert!(sk.set_contribution(v(2), v(1), SubgraphId(5), Weight::new(3.0)));
        assert_eq!(sk.skeleton_edge_weight(v(1), v(2)), Some(Weight::new(3.0)));
        // Raising the non-minimal contribution does not change the weight.
        assert!(!sk.set_contribution(v(1), v(2), SubgraphId(0), Weight::new(100.0)));
        assert_eq!(sk.skeleton_edge_weight(v(1), v(2)), Some(Weight::new(3.0)));
        // Raising the minimal contribution re-evaluates the minimum.
        assert!(sk.set_contribution(v(1), v(2), SubgraphId(5), Weight::new(50.0)));
        assert_eq!(sk.skeleton_edge_weight(v(1), v(2)), Some(Weight::new(50.0)));
    }

    #[test]
    fn undirected_skeleton_is_symmetric() {
        let sk = sample_skeleton();
        assert_eq!(sk.edge_weight(v(2), v(1)), sk.edge_weight(v(1), v(2)));
        let n1 = sk.neighbors(v(1));
        assert_eq!(n1.len(), 2);
        assert_eq!(sk.num_skeleton_vertices(), 3);
        assert_eq!(sk.num_skeleton_edges(), 3);
    }

    #[test]
    fn directed_skeleton_keeps_directions_apart() {
        let mut sk = SkeletonGraph::new(true);
        sk.set_contribution(v(1), v(2), SubgraphId(0), Weight::new(5.0));
        sk.set_contribution(v(2), v(1), SubgraphId(0), Weight::new(8.0));
        assert_eq!(sk.edge_weight(v(1), v(2)), Some(Weight::new(5.0)));
        assert_eq!(sk.edge_weight(v(2), v(1)), Some(Weight::new(8.0)));
        assert_eq!(sk.neighbors(v(1)).len(), 1);
        assert_eq!(sk.num_skeleton_edges(), 2);
    }

    #[test]
    fn shortest_paths_run_over_the_skeleton() {
        let sk = sample_skeleton();
        let p = dijkstra_path(&sk, v(1), v(3)).unwrap();
        assert_eq!(p.distance(), Weight::new(9.0));
        assert_eq!(p.vertices(), &[v(1), v(2), v(3)]);
    }

    #[test]
    fn overlay_attaches_temporary_endpoints() {
        let sk = sample_skeleton();
        let mut overlay = sk.overlay();
        // Vertex 50 is a non-boundary source attached to boundary vertices 1 and 2.
        overlay.add_undirected_edge(v(50), v(1), Weight::new(1.0));
        overlay.add_undirected_edge(v(50), v(2), Weight::new(7.0));
        assert!(overlay.contains_vertex(v(50)));
        assert_eq!(overlay.num_overlay_edges(), 4);
        let p = dijkstra_path(&overlay, v(50), v(3)).unwrap();
        // 50 -> 1 -> 2 -> 3 = 1 + 5 + 4 = 10, vs 50 -> 2 -> 3 = 7 + 4 = 11.
        assert_eq!(p.distance(), Weight::new(10.0));
        // The underlying skeleton is untouched.
        assert!(!sk.contains(v(50)));
    }

    #[test]
    fn overlay_edge_weight_prefers_the_smaller_of_base_and_extra() {
        let sk = sample_skeleton();
        let mut overlay = sk.overlay();
        overlay.add_undirected_edge(v(1), v(2), Weight::new(1.5));
        assert_eq!(overlay.edge_weight(v(1), v(2)), Some(Weight::new(1.5)));
        assert_eq!(overlay.edge_weight(v(2), v(3)), Some(Weight::new(4.0)));
    }

    #[test]
    fn memory_estimate_is_positive() {
        let sk = sample_skeleton();
        assert!(sk.memory_bytes() > 0);
    }
}
