//! The unit-weight multiset of a subgraph and bound-distance computation (Section 3.4).
//!
//! Every edge `e` contributes `w0(e)` virtual fragments, each with *unit weight*
//! `w(e) / w0(e)`. The bound distance of a bounding path with `φ` vfrags is the sum of
//! the `φ` smallest unit weights in the subgraph. The multiset keeps the fragments as
//! `(unit weight, count)` groups sorted by unit weight with prefix sums, so a bound
//! distance query costs `O(log |E_sg|)`.

use ksp_graph::{Subgraph, Weight};

/// Sorted multiset of the unit weights of a subgraph, with prefix sums.
#[derive(Debug, Clone)]
pub struct UnitWeightMultiset {
    /// `(unit weight, vfrag count)` groups sorted ascending by unit weight.
    groups: Vec<(f64, u64)>,
    /// Prefix sums of vfrag counts: `count_prefix[i]` = total vfrags in groups `0..i`.
    count_prefix: Vec<u64>,
    /// Prefix sums of `unit weight × count`.
    weight_prefix: Vec<f64>,
    total_vfrags: u64,
}

impl UnitWeightMultiset {
    /// Builds the multiset from the current weights of a subgraph.
    pub fn from_subgraph(subgraph: &Subgraph) -> Self {
        let mut groups: Vec<(f64, u64)> =
            subgraph.unit_weight_multiset().map(|(w, count)| (w.value(), count as u64)).collect();
        groups.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Merge equal unit weights to keep the structure compact.
        let mut merged: Vec<(f64, u64)> = Vec::with_capacity(groups.len());
        for (w, c) in groups {
            match merged.last_mut() {
                Some(last) if last.0 == w => last.1 += c,
                _ => merged.push((w, c)),
            }
        }
        let mut count_prefix = Vec::with_capacity(merged.len() + 1);
        let mut weight_prefix = Vec::with_capacity(merged.len() + 1);
        count_prefix.push(0);
        weight_prefix.push(0.0);
        for &(w, c) in &merged {
            count_prefix.push(count_prefix.last().unwrap() + c);
            weight_prefix.push(weight_prefix.last().unwrap() + w * c as f64);
        }
        let total_vfrags = *count_prefix.last().unwrap();
        UnitWeightMultiset { groups: merged, count_prefix, weight_prefix, total_vfrags }
    }

    /// Total number of virtual fragments in the subgraph.
    pub fn total_vfrags(&self) -> u64 {
        self.total_vfrags
    }

    /// Number of distinct unit-weight values.
    pub fn num_distinct(&self) -> usize {
        self.groups.len()
    }

    /// The bound distance for a path with `vfrags` virtual fragments: the sum of the
    /// `vfrags` smallest unit weights in the subgraph (Example 4 of the paper).
    ///
    /// If the path has more vfrags than the subgraph contains (possible only if the
    /// path is not confined to the subgraph, which would be a logic error upstream),
    /// the total weight of the subgraph is returned, which is still a valid lower
    /// bound.
    pub fn bound_distance(&self, vfrags: u64) -> Weight {
        if vfrags == 0 {
            return Weight::ZERO;
        }
        let take = vfrags.min(self.total_vfrags);
        // Find the first group index where the cumulative count reaches `take`.
        let idx = self.count_prefix.partition_point(|&c| c < take);
        // groups[..idx-1] are fully taken; part of groups[idx-1] completes the sum.
        let full = idx - 1;
        let taken_full = self.count_prefix[full];
        let mut sum = self.weight_prefix[full];
        let remaining = take - taken_full;
        sum += self.groups[full].0 * remaining as f64;
        Weight::new(sum.max(0.0))
    }

    /// Estimated memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.groups.len() * std::mem::size_of::<(f64, u64)>()
            + self.count_prefix.len() * std::mem::size_of::<u64>()
            + self.weight_prefix.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::{GraphBuilder, PartitionConfig, Partitioner, UpdateBatch, WeightUpdate};

    /// Builds the paper's subgraph SG4 of Figure 5: edges with initial weights
    /// 5, 3, 3, 2, 2, 3 (16 vfrags total, all unit weights 1 initially).
    fn paper_sg4() -> (ksp_graph::DynamicGraph, Subgraph) {
        let mut b = GraphBuilder::undirected(6);
        b.edge(0, 2, 5).edge(2, 1, 3).edge(0, 4, 3).edge(4, 3, 2).edge(3, 2, 2).edge(4, 5, 3);
        let g = b.build().unwrap();
        let sg = Partitioner::new(PartitionConfig::with_max_vertices(100))
            .partition(&g)
            .unwrap()
            .into_subgraphs()
            .remove(0);
        let sg = std::sync::Arc::try_unwrap(sg).expect("sole handle");
        (g, sg)
    }

    #[test]
    fn initial_unit_weights_are_all_one() {
        let (_, sg) = paper_sg4();
        let ms = UnitWeightMultiset::from_subgraph(&sg);
        assert_eq!(ms.total_vfrags(), 18);
        assert_eq!(ms.num_distinct(), 1);
        // Example 4: with all unit weights 1, BD of an 8-vfrag path is 8.
        assert_eq!(ms.bound_distance(8), Weight::new(8.0));
        assert_eq!(ms.bound_distance(1), Weight::new(1.0));
        assert_eq!(ms.bound_distance(0), Weight::ZERO);
    }

    #[test]
    fn bound_distance_uses_smallest_unit_weights_after_updates() {
        // Reproduces the spirit of Example 4: after weights change, the 8 smallest unit
        // weights are mixed fractions.
        let (g, mut sg) = paper_sg4();
        // Make edge (0,2) [5 vfrags] have weight 2.5 -> unit weight 0.5,
        // and edge (2,1) [3 vfrags] weight 1.0 -> unit weight 1/3.
        let e02 = g.edge_between(ksp_graph::VertexId(0), ksp_graph::VertexId(2)).unwrap();
        let e21 = g.edge_between(ksp_graph::VertexId(2), ksp_graph::VertexId(1)).unwrap();
        let batch = UpdateBatch::new(vec![
            WeightUpdate::new(e02, Weight::new(2.5)),
            WeightUpdate::new(e21, Weight::new(1.0)),
        ]);
        for u in batch.iter() {
            sg.apply_update(u).unwrap();
        }
        let ms = UnitWeightMultiset::from_subgraph(&sg);
        // Unit weights now: 3 × 1/3, 5 × 1/2, 10 × 1.
        assert_eq!(ms.num_distinct(), 3);
        // 8 smallest = 3×(1/3) + 5×(1/2) = 1 + 2.5 = 3.5
        assert!(ms.bound_distance(8).approx_eq(Weight::new(3.5)));
        // 4 smallest = 3×(1/3) + 1×(1/2) = 1.5
        assert!(ms.bound_distance(4).approx_eq(Weight::new(1.5)));
    }

    #[test]
    fn bound_distance_is_monotone_in_vfrags() {
        let (_, sg) = paper_sg4();
        let ms = UnitWeightMultiset::from_subgraph(&sg);
        let mut prev = Weight::ZERO;
        for phi in 1..=ms.total_vfrags() {
            let bd = ms.bound_distance(phi);
            assert!(bd >= prev);
            prev = bd;
        }
    }

    #[test]
    fn oversized_vfrag_request_clamps_to_total() {
        let (_, sg) = paper_sg4();
        let ms = UnitWeightMultiset::from_subgraph(&sg);
        assert_eq!(ms.bound_distance(10_000), ms.bound_distance(ms.total_vfrags()));
    }

    #[test]
    fn bound_distance_is_a_lower_bound_of_any_path_with_that_many_vfrags() {
        let (_, mut sg) = paper_sg4();
        // Perturb some weights.
        let updates: Vec<WeightUpdate> = sg
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| {
                WeightUpdate::new(
                    e.global_id,
                    Weight::new(e.current_weight.value() * (0.5 + 0.3 * i as f64)),
                )
            })
            .collect();
        for u in &updates {
            sg.apply_update(u).unwrap();
        }
        let ms = UnitWeightMultiset::from_subgraph(&sg);
        // For every single edge (a path of w0 vfrags), BD(w0 vfrags) <= actual weight.
        for e in sg.edges() {
            let bd = ms.bound_distance(e.initial_weight as u64);
            assert!(
                bd <= e.current_weight || bd.approx_eq(e.current_weight),
                "bound {bd} exceeds edge weight {}",
                e.current_weight
            );
        }
    }

    #[test]
    fn memory_estimate_positive() {
        let (_, sg) = paper_sg4();
        let ms = UnitWeightMultiset::from_subgraph(&sg);
        assert!(ms.memory_bytes() > 0);
    }
}
