//! The compressed bounding-path storage: MinHash/LSH grouping and MFP-trees (Section 4).
//!
//! The EP-Index duplicates every bounding path once per edge it covers, which the paper
//! observes can dwarf the subgraph itself. Section 4 compresses it in two steps:
//!
//! 1. **Grouping** ([`MinHashLsh`]): edges whose path sets have a high Jaccard
//!    similarity are placed in the same group, using MinHash signatures and
//!    locality-sensitive hashing over signature bands. Edges colliding in at least one
//!    band end up in the same group.
//! 2. **Compression** ([`MfpForest`]): within a group, each edge's path list (sorted by
//!    how often each path occurs across the group, descending) is inserted into a
//!    modified FP-tree, so edges with similar path sets share prefix nodes. The tail
//!    node of every insertion records the edge and the length of its path list, so the
//!    list can be recovered by walking up that many ancestors.
//!
//! The forest exposes the same lookup operation as the EP-Index — "which bounding
//! paths pass through this edge" — so the two are interchangeable maintenance backends
//! (see [`crate::dtlp::PathStorageBackend`]).

use crate::dtlp::ep_index::PathRef;
use ksp_graph::EdgeId;
use std::collections::HashMap;

/// Number of MinHash hash functions used for signatures.
const NUM_HASHES: usize = 8;
/// Number of LSH bands (each band has `NUM_HASHES / NUM_BANDS` rows).
const NUM_BANDS: usize = 4;

fn mix(x: u64) -> u64 {
    // SplitMix64 finaliser; a good cheap 64-bit mixer.
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn hash_path(p: PathRef, salt: u64) -> u64 {
    mix(((p.pair as u64) << 32 | p.path as u64) ^ mix(salt))
}

/// MinHash + LSH grouping of edges by path-set similarity.
#[derive(Debug, Clone, Default)]
pub struct MinHashLsh;

impl MinHashLsh {
    /// Groups edges so that edges with similar path sets share a group.
    ///
    /// The input is the EP-Index content as (edge, path list) pairs; the output is a
    /// partition of the edges (every edge appears in exactly one group).
    pub fn group_edges(edge_paths: &[(EdgeId, Vec<PathRef>)]) -> Vec<Vec<usize>> {
        let n = edge_paths.len();
        if n == 0 {
            return Vec::new();
        }
        // Signature matrix: per edge, NUM_HASHES minhash values.
        let signatures: Vec<[u64; NUM_HASHES]> = edge_paths
            .iter()
            .map(|(_, paths)| {
                let mut sig = [u64::MAX; NUM_HASHES];
                for &p in paths {
                    for (h, slot) in sig.iter_mut().enumerate() {
                        let v = hash_path(p, h as u64);
                        if v < *slot {
                            *slot = v;
                        }
                    }
                }
                sig
            })
            .collect();

        // LSH banding: edges identical in at least one band are unioned.
        let rows_per_band = NUM_HASHES / NUM_BANDS;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for band in 0..NUM_BANDS {
            let mut buckets: HashMap<u64, usize> = HashMap::new();
            for (i, sig) in signatures.iter().enumerate() {
                let mut key = band as u64;
                for r in 0..rows_per_band {
                    key = mix(key ^ sig[band * rows_per_band + r]);
                }
                match buckets.get(&key) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        if ri != rj {
                            parent[ri] = rj;
                        }
                    }
                    None => {
                        buckets.insert(key, i);
                    }
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }

    /// Exact Jaccard similarity of two path sets; used by tests to validate grouping.
    pub fn jaccard(a: &[PathRef], b: &[PathRef]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let sa: std::collections::HashSet<_> = a.iter().collect();
        let sb: std::collections::HashSet<_> = b.iter().collect();
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        inter / union
    }
}

/// A node of one MFP-tree.
#[derive(Debug, Clone)]
struct MfpNode {
    /// The bounding path this node represents; `None` for the root and for tail nodes.
    path: Option<PathRef>,
    parent: Option<u32>,
    children: Vec<u32>,
}

/// One MFP-tree: a prefix tree over path lists, with tail entries per edge.
#[derive(Debug, Clone)]
pub struct MfpTree {
    nodes: Vec<MfpNode>,
    /// edge → (node index of the last path node of its list, list length).
    tails: HashMap<EdgeId, (u32, u32)>,
}

impl MfpTree {
    fn new() -> Self {
        MfpTree {
            nodes: vec![MfpNode { path: None, parent: None, children: Vec::new() }],
            tails: HashMap::new(),
        }
    }

    /// Inserts an edge's (already frequency-sorted) path list.
    fn insert(&mut self, edge: EdgeId, paths: &[PathRef]) {
        let mut cur = 0u32; // root
        let mut i = 0usize;
        // Follow the longest matching prefix.
        'outer: while i < paths.len() {
            let want = paths[i];
            for &child in &self.nodes[cur as usize].children {
                if self.nodes[child as usize].path == Some(want) {
                    cur = child;
                    i += 1;
                    continue 'outer;
                }
            }
            break;
        }
        // Append the remainder.
        for &p in &paths[i..] {
            let idx = self.nodes.len() as u32;
            self.nodes.push(MfpNode { path: Some(p), parent: Some(cur), children: Vec::new() });
            self.nodes[cur as usize].children.push(idx);
            cur = idx;
        }
        self.tails.insert(edge, (cur, paths.len() as u32));
    }

    /// Recovers the path list of `edge` by walking up from its tail node.
    fn paths_of(&self, edge: EdgeId, out: &mut Vec<PathRef>) -> bool {
        let Some(&(mut node, count)) = self.tails.get(&edge) else { return false };
        let start = out.len();
        for _ in 0..count {
            let n = &self.nodes[node as usize];
            out.push(n.path.expect("path nodes below the root carry a PathRef"));
            node = n.parent.expect("walked past the root");
        }
        out[start..].reverse();
        true
    }

    /// Number of nodes (excluding the root).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - 1
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<MfpNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.len() * std::mem::size_of::<u32>())
                .sum::<usize>()
            + self.tails.len() * (std::mem::size_of::<EdgeId>() + 8)
    }
}

/// The forest of MFP-trees for one subgraph (one tree per LSH group), merged under a
/// conceptual empty root as in Figure 13 of the paper.
#[derive(Debug, Clone, Default)]
pub struct MfpForest {
    trees: Vec<MfpTree>,
    /// edge → tree index (the tree holding its tail).
    edge_tree: HashMap<EdgeId, u32>,
}

impl MfpForest {
    /// Builds the forest from EP-Index content.
    pub fn build(edge_paths: &[(EdgeId, Vec<PathRef>)]) -> Self {
        let groups = MinHashLsh::group_edges(edge_paths);
        let mut trees = Vec::with_capacity(groups.len());
        let mut edge_tree = HashMap::with_capacity(edge_paths.len());
        for group in groups {
            // Global (within-group) frequency of each path, for the descending sort the
            // paper prescribes — frequent paths near the root maximise prefix sharing.
            let mut freq: HashMap<PathRef, u32> = HashMap::new();
            for &i in &group {
                for &p in &edge_paths[i].1 {
                    *freq.entry(p).or_insert(0) += 1;
                }
            }
            let mut tree = MfpTree::new();
            for &i in &group {
                let (edge, paths) = &edge_paths[i];
                let mut sorted = paths.clone();
                sorted.sort_by(|a, b| {
                    freq[b].cmp(&freq[a]).then_with(|| (a.pair, a.path).cmp(&(b.pair, b.path)))
                });
                tree.insert(*edge, &sorted);
                edge_tree.insert(*edge, trees.len() as u32);
            }
            trees.push(tree);
        }
        MfpForest { trees, edge_tree }
    }

    /// Appends the bounding paths passing through `edge` to `out`.
    pub fn collect_paths_through(&self, edge: EdgeId, out: &mut Vec<PathRef>) {
        if let Some(&t) = self.edge_tree.get(&edge) {
            self.trees[t as usize].paths_of(edge, out);
        }
    }

    /// Number of trees in the forest (LSH groups).
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total number of path nodes stored; with effective prefix sharing this is smaller
    /// than the EP-Index entry count.
    pub fn num_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.num_nodes()).sum()
    }

    /// Estimated memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.trees.iter().map(|t| t.memory_bytes()).sum::<usize>()
            + self.edge_tree.len() * (std::mem::size_of::<EdgeId>() + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(pair: u32, path: u32) -> PathRef {
        PathRef { pair, path }
    }

    fn sample_edge_paths() -> Vec<(EdgeId, Vec<PathRef>)> {
        // Edges 0..3 share most of their paths (like consecutive road segments), edge 9
        // has a disjoint set.
        vec![
            (EdgeId(0), vec![p(0, 0), p(0, 1), p(1, 0)]),
            (EdgeId(1), vec![p(0, 0), p(0, 1), p(1, 0), p(2, 0)]),
            (EdgeId(2), vec![p(0, 0), p(0, 1)]),
            (EdgeId(3), vec![p(0, 0), p(1, 0)]),
            (EdgeId(9), vec![p(7, 0), p(7, 1)]),
        ]
    }

    #[test]
    fn forest_recovers_exact_path_sets() {
        let input = sample_edge_paths();
        let forest = MfpForest::build(&input);
        for (edge, paths) in &input {
            let mut out = Vec::new();
            forest.collect_paths_through(*edge, &mut out);
            let mut expected = paths.clone();
            expected.sort_by_key(|p| (p.pair, p.path));
            out.sort_by_key(|p| (p.pair, p.path));
            assert_eq!(out, expected, "path set of {edge} not preserved");
        }
    }

    #[test]
    fn unknown_edges_yield_nothing() {
        let forest = MfpForest::build(&sample_edge_paths());
        let mut out = Vec::new();
        forest.collect_paths_through(EdgeId(77), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn similar_edges_share_prefix_nodes() {
        let input = sample_edge_paths();
        let forest = MfpForest::build(&input);
        let total_entries: usize = input.iter().map(|(_, ps)| ps.len()).sum();
        assert!(
            forest.num_nodes() < total_entries,
            "expected compression: {} nodes vs {} raw entries",
            forest.num_nodes(),
            total_entries
        );
    }

    #[test]
    fn jaccard_similarity_is_correct() {
        let a = vec![p(0, 0), p(0, 1), p(1, 0)];
        let b = vec![p(0, 0), p(0, 1), p(2, 0)];
        let j = MinHashLsh::jaccard(&a, &b);
        assert!((j - 0.5).abs() < 1e-12);
        assert_eq!(MinHashLsh::jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn grouping_is_a_partition_of_all_edges() {
        let input = sample_edge_paths();
        let groups = MinHashLsh::group_edges(&input);
        let mut covered: Vec<usize> = groups.iter().flatten().copied().collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..input.len()).collect::<Vec<_>>());
    }

    #[test]
    fn highly_similar_edges_usually_land_in_the_same_group() {
        // Two identical path sets must always collide in every band.
        let input = vec![
            (EdgeId(0), vec![p(0, 0), p(0, 1), p(1, 0)]),
            (EdgeId(1), vec![p(0, 0), p(0, 1), p(1, 0)]),
            (EdgeId(2), vec![p(9, 0)]),
        ];
        let groups = MinHashLsh::group_edges(&input);
        let group_of = |i: usize| groups.iter().position(|g| g.contains(&i)).unwrap();
        assert_eq!(group_of(0), group_of(1));
    }

    #[test]
    fn empty_input_builds_an_empty_forest() {
        let forest = MfpForest::build(&[]);
        assert_eq!(forest.num_trees(), 0);
        assert_eq!(forest.num_nodes(), 0);
        assert_eq!(forest.memory_bytes(), 0);
    }

    #[test]
    fn memory_estimate_reflects_compression() {
        // Many edges sharing one long path list should need far less memory per edge
        // than storing the list repeatedly.
        let shared: Vec<PathRef> = (0..20).map(|i| p(i, 0)).collect();
        let input: Vec<(EdgeId, Vec<PathRef>)> =
            (0..50).map(|e| (EdgeId(e), shared.clone())).collect();
        let forest = MfpForest::build(&input);
        assert!(forest.num_nodes() <= 20 * 4, "sharing failed: {} nodes", forest.num_nodes());
    }
}
