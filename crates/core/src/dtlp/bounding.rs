//! Bounding paths, lower bounding paths and lower bound distances (Sections 3.4–3.5).

use crate::dtlp::unit_weights::UnitWeightMultiset;
use ksp_graph::{VertexId, Weight};

/// One bounding path between a pair of boundary vertices in a subgraph.
///
/// The *structure* of a bounding path (its vertex sequence and vfrag count) never
/// changes as edge weights evolve; only `current_distance` is maintained, via the
/// EP-Index / MFP-tree backend, as weight updates arrive.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingPath {
    /// The vertex sequence of the path, in global vertex ids.
    pub vertices: Vec<VertexId>,
    /// Total number of virtual fragments along the path (φ); immutable.
    pub vfrags: u64,
    /// The path's actual distance at the current weights.
    pub current_distance: Weight,
}

impl BoundingPath {
    /// Creates a bounding path.
    pub fn new(vertices: Vec<VertexId>, vfrags: u64, current_distance: Weight) -> Self {
        debug_assert!(vertices.len() >= 2, "a bounding path joins two distinct vertices");
        BoundingPath { vertices, vfrags, current_distance }
    }

    /// Number of edges on the path.
    pub fn num_edges(&self) -> usize {
        self.vertices.len() - 1
    }

    /// The bound distance of this path given the subgraph's unit-weight multiset: the
    /// sum of the `vfrags` smallest unit weights (Section 3.4).
    pub fn bound_distance(&self, multiset: &UnitWeightMultiset) -> Weight {
        multiset.bound_distance(self.vfrags)
    }

    /// Estimated memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.vertices.len() * std::mem::size_of::<VertexId>() + 24
    }
}

/// The set of bounding paths between one pair of boundary vertices in one subgraph,
/// ordered by ascending vfrag count (equivalently ascending bound distance).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingPathSet {
    /// First endpoint (source for directed subgraphs).
    pub a: VertexId,
    /// Second endpoint (destination for directed subgraphs).
    pub b: VertexId,
    /// The bounding paths, ascending by vfrag count; at most ξ entries.
    pub paths: Vec<BoundingPath>,
}

impl BoundingPathSet {
    /// Creates the set, asserting the vfrag ordering invariant.
    pub fn new(a: VertexId, b: VertexId, paths: Vec<BoundingPath>) -> Self {
        debug_assert!(
            paths.windows(2).all(|w| w[0].vfrags < w[1].vfrags),
            "bounding paths must have strictly increasing vfrag counts"
        );
        BoundingPathSet { a, b, paths }
    }

    /// Whether the set is empty (the pair is not connected within the subgraph).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Number of bounding paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// The lower bound distance `LBD(a, b)` for this subgraph (Definitions 6–7,
    /// computed via Theorem 1).
    ///
    /// Writing `D_u` for the smallest *actual* distance among the bounding paths and
    /// `BD_r` for the largest *bound* distance (the last path's, since bound distance
    /// is monotone in vfrag count), Theorem 1 gives:
    ///
    /// * if `BD_r ≥ D_u` (claim 1), the path achieving `D_u` is the true shortest path
    ///   between `a` and `b` in the subgraph, so `LBD = D_u`;
    /// * otherwise (claim 2), `BD_r` is a valid lower bound, so `LBD = BD_r`.
    ///
    /// Both cases reduce to `LBD = min(D_u, BD_r)`, which is what this returns.
    /// Returns [`Weight::INFINITY`] for an empty set (unconnected pair).
    pub fn lower_bound_distance(&self, multiset: &UnitWeightMultiset) -> Weight {
        if self.paths.is_empty() {
            return Weight::INFINITY;
        }
        let d_u = self.paths.iter().map(|p| p.current_distance).min().expect("non-empty path set");
        let bd_r = self.paths.last().expect("non-empty path set").bound_distance(multiset);
        d_u.min(bd_r)
    }

    /// Whether Theorem 1's claim 1 applies, i.e. the lower bound distance is exactly
    /// the shortest distance between the pair within the subgraph. Exposed so tests
    /// and diagnostics can distinguish tight from loose bounds.
    pub fn bound_is_exact(&self, multiset: &UnitWeightMultiset) -> bool {
        if self.paths.is_empty() {
            return false;
        }
        let d_u = self.paths.iter().map(|p| p.current_distance).min().unwrap();
        let bd_r = self.paths.last().unwrap().bound_distance(multiset);
        bd_r >= d_u
    }

    /// Applies a weight delta to every path in this set that traverses edge `(u, v)`
    /// (in either orientation). Returns the number of paths touched. Used by the
    /// simple (non-indexed) maintenance path and by tests; the EP-Index backend
    /// locates affected paths without scanning.
    pub fn apply_edge_delta(&mut self, u: VertexId, v: VertexId, delta: f64) -> usize {
        let mut touched = 0;
        for p in &mut self.paths {
            let on_path =
                p.vertices.windows(2).any(|w| (w[0] == u && w[1] == v) || (w[0] == v && w[1] == u));
            if on_path {
                let new = (p.current_distance.value() + delta).max(0.0);
                p.current_distance = Weight::new(new);
                touched += 1;
            }
        }
        touched
    }

    /// Estimated memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.paths.iter().map(|p| p.memory_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksp_graph::{GraphBuilder, PartitionConfig, Partitioner, Subgraph, WeightUpdate};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Figure 6 of the paper: vs=0, vt=7, three parallel routes.
    /// Route 1: 0-1-7 (2 edges), route 2: 0-2-3-7 (3 edges), route 3: 0-4-5-6-7 (4 edges).
    fn figure6_subgraph(weights: &[(u32, u32, u32)]) -> Subgraph {
        let mut b = GraphBuilder::undirected(8);
        for &(u, w, wt) in weights {
            b.edge(u, w, wt);
        }
        let g = b.build().unwrap();
        let sg = Partitioner::new(PartitionConfig::with_max_vertices(100))
            .partition(&g)
            .unwrap()
            .into_subgraphs()
            .remove(0);
        std::sync::Arc::try_unwrap(sg).expect("sole handle")
    }

    /// Edge list of Figure 6a (all weights 1).
    fn fig6a_edges() -> Vec<(u32, u32, u32)> {
        vec![
            (0, 1, 1),
            (1, 7, 1),
            (0, 2, 1),
            (2, 3, 1),
            (3, 7, 1),
            (0, 4, 1),
            (4, 5, 1),
            (5, 6, 1),
            (6, 7, 1),
        ]
    }

    fn fig6_bounding_paths(sg: &Subgraph) -> BoundingPathSet {
        // The three bounding paths of Example 5 (ξ = 3).
        let routes: Vec<Vec<VertexId>> = vec![
            vec![v(0), v(1), v(7)],
            vec![v(0), v(2), v(3), v(7)],
            vec![v(0), v(4), v(5), v(6), v(7)],
        ];
        let paths = routes
            .into_iter()
            .map(|r| {
                let vfrags: u64 = r
                    .windows(2)
                    .map(|w| {
                        sg.edges()
                            .iter()
                            .find(|e| (e.u == w[0] && e.v == w[1]) || (e.u == w[1] && e.v == w[0]))
                            .map(|e| e.initial_weight as u64)
                            .unwrap()
                    })
                    .sum();
                let dist: f64 = r
                    .windows(2)
                    .map(|w| {
                        sg.edges()
                            .iter()
                            .find(|e| (e.u == w[0] && e.v == w[1]) || (e.u == w[1] && e.v == w[0]))
                            .map(|e| e.current_weight.value())
                            .unwrap()
                    })
                    .sum();
                BoundingPath::new(r, vfrags, Weight::new(dist))
            })
            .collect();
        BoundingPathSet::new(v(0), v(7), paths)
    }

    #[test]
    fn example5_case1_bound_equals_shortest_distance() {
        // Figure 6b: weights become 8,8 / 4,4,4 / 2,2,2,2. The 4-edge route is now the
        // shortest (distance 8) and Theorem 1 claim 1 applies: LBD = 8.
        let weights = vec![
            (0, 1, 1),
            (1, 7, 1),
            (0, 2, 1),
            (2, 3, 1),
            (3, 7, 1),
            (0, 4, 1),
            (4, 5, 1),
            (5, 6, 1),
            (6, 7, 1),
        ];
        let mut sg = figure6_subgraph(&weights);
        // Update current weights to the Figure 6b values.
        let new_weights: Vec<(u32, u32, f64)> = vec![
            (0, 1, 8.0),
            (1, 7, 8.0),
            (0, 2, 4.0),
            (2, 3, 4.0),
            (3, 7, 4.0),
            (0, 4, 2.0),
            (4, 5, 2.0),
            (5, 6, 2.0),
            (6, 7, 2.0),
        ];
        for (u, w, nw) in new_weights {
            let e = sg
                .edges()
                .iter()
                .find(|e| (e.u == v(u) && e.v == v(w)) || (e.u == v(w) && e.v == v(u)))
                .unwrap()
                .global_id;
            sg.apply_update(&WeightUpdate::new(e, Weight::new(nw))).unwrap();
        }
        let mut set = fig6_bounding_paths(&figure6_subgraph(&weights));
        // Propagate the weight deltas into the bounding-path distances.
        set.apply_edge_delta(v(0), v(1), 7.0);
        set.apply_edge_delta(v(1), v(7), 7.0);
        set.apply_edge_delta(v(0), v(2), 3.0);
        set.apply_edge_delta(v(2), v(3), 3.0);
        set.apply_edge_delta(v(3), v(7), 3.0);
        set.apply_edge_delta(v(0), v(4), 1.0);
        set.apply_edge_delta(v(4), v(5), 1.0);
        set.apply_edge_delta(v(5), v(6), 1.0);
        set.apply_edge_delta(v(6), v(7), 1.0);

        let ms = UnitWeightMultiset::from_subgraph(&sg);
        // Paper: BD(P1)=4, BD(P2)=6, BD(P3)=8 and D(P3)=8 -> exact.
        assert!(set.paths[0].bound_distance(&ms).approx_eq(Weight::new(4.0)));
        assert!(set.paths[1].bound_distance(&ms).approx_eq(Weight::new(6.0)));
        assert!(set.paths[2].bound_distance(&ms).approx_eq(Weight::new(8.0)));
        assert!(set.bound_is_exact(&ms));
        assert!(set.lower_bound_distance(&ms).approx_eq(Weight::new(8.0)));
    }

    #[test]
    fn example5_case2_bound_is_loose_but_valid() {
        // Figure 6c/6d: an extra chain 0-8-9-10-... of unit edges (five extra vfrags of
        // unit weight 1) keeps small unit weights in the subgraph, so BD(P3) = 4 while
        // D(P3) = 8: claim 2 applies and LBD = BD_r = 4.
        let mut weights = fig6a_edges();
        weights.extend_from_slice(&[(1, 2, 1), (3, 4, 1), (5, 2, 1), (6, 2, 1), (1, 4, 1)]);
        let sg0 = figure6_subgraph(&weights);
        let mut sg = sg0.clone();
        let new_weights: Vec<(u32, u32, f64)> = vec![
            (0, 1, 8.0),
            (1, 7, 8.0),
            (0, 2, 4.0),
            (2, 3, 4.0),
            (3, 7, 4.0),
            (0, 4, 2.0),
            (4, 5, 2.0),
            (5, 6, 2.0),
            (6, 7, 2.0),
        ];
        for (u, w, nw) in &new_weights {
            let e = sg
                .edges()
                .iter()
                .find(|e| (e.u == v(*u) && e.v == v(*w)) || (e.u == v(*w) && e.v == v(*u)))
                .unwrap()
                .global_id;
            sg.apply_update(&WeightUpdate::new(e, Weight::new(*nw))).unwrap();
        }
        let mut set = fig6_bounding_paths(&sg0);
        for (u, w, nw) in &new_weights {
            set.apply_edge_delta(v(*u), v(*w), nw - 1.0);
        }
        let ms = UnitWeightMultiset::from_subgraph(&sg);
        let bd_r = set.paths[2].bound_distance(&ms);
        let d_u = set.paths.iter().map(|p| p.current_distance).min().unwrap();
        assert!(bd_r < d_u, "claim 2 scenario requires BD_r < D_u");
        assert_eq!(set.lower_bound_distance(&ms), bd_r);
        assert!(!set.bound_is_exact(&ms));
    }

    #[test]
    fn lower_bound_never_exceeds_true_shortest_distance() {
        use ksp_algo::dijkstra_path;
        // Randomised check on the Figure 6 subgraph under several weight assignments.
        let base = fig6a_edges();
        for scale in 1..6u32 {
            let weights: Vec<(u32, u32, u32)> =
                base.iter().map(|&(u, w, _)| (u, w, 1 + (u + w + scale) % 7)).collect();
            let sg = figure6_subgraph(&weights);
            let set = {
                // Recompute bounding paths for this weighting via the vfrag search.
                let paths = ksp_algo::fewest_vfrag_paths(&sg, v(0), v(7), 3, 64);
                let bps: Vec<BoundingPath> = paths
                    .into_iter()
                    .map(|p| {
                        let dist = ksp_algo::Path::from_vertices(&sg, p.vertices.clone())
                            .unwrap()
                            .distance();
                        BoundingPath::new(p.vertices, p.vfrags, dist)
                    })
                    .collect();
                BoundingPathSet::new(v(0), v(7), bps)
            };
            let ms = UnitWeightMultiset::from_subgraph(&sg);
            let lbd = set.lower_bound_distance(&ms);
            let true_shortest = dijkstra_path(&sg, v(0), v(7)).unwrap().distance();
            assert!(
                lbd <= true_shortest || lbd.approx_eq(true_shortest),
                "LBD {lbd} exceeds shortest {true_shortest} at scale {scale}"
            );
        }
    }

    #[test]
    fn empty_set_has_infinite_lower_bound() {
        let set = BoundingPathSet::new(v(0), v(1), vec![]);
        let sg = figure6_subgraph(&fig6a_edges());
        let ms = UnitWeightMultiset::from_subgraph(&sg);
        assert_eq!(set.lower_bound_distance(&ms), Weight::INFINITY);
        assert!(set.is_empty());
        assert!(!set.bound_is_exact(&ms));
    }

    #[test]
    fn apply_edge_delta_only_touches_paths_containing_the_edge() {
        let sg = figure6_subgraph(&fig6a_edges());
        let mut set = fig6_bounding_paths(&sg);
        let touched = set.apply_edge_delta(v(0), v(1), 5.0);
        assert_eq!(touched, 1);
        assert_eq!(set.paths[0].current_distance, Weight::new(7.0));
        assert_eq!(set.paths[1].current_distance, Weight::new(3.0));
        // Reverse orientation also matches.
        let touched = set.apply_edge_delta(v(7), v(1), 1.0);
        assert_eq!(touched, 1);
        assert_eq!(set.paths[0].current_distance, Weight::new(8.0));
    }

    #[test]
    fn memory_accounting_is_positive() {
        let sg = figure6_subgraph(&fig6a_edges());
        let set = fig6_bounding_paths(&sg);
        assert!(set.memory_bytes() > 0);
        assert_eq!(set.len(), 3);
    }
}
