//! The EP-Index: edge → bounding-paths map used for index maintenance (Section 3.7).
//!
//! When the weight of edge `e` changes by `Δw`, every bounding path passing through `e`
//! must have its stored distance adjusted by `Δw`. The EP-Index is the key/value
//! structure the paper proposes for locating those paths without scanning: the key is
//! an edge, the value the list of bounding paths covering it.

use ksp_graph::EdgeId;
use std::collections::HashMap;

/// Reference to one bounding path within a subgraph index: the boundary pair it
/// belongs to and its position within that pair's path list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathRef {
    /// Index of the boundary pair in the subgraph index's pair table.
    pub pair: u32,
    /// Index of the path within the pair's bounding-path list.
    pub path: u32,
}

/// The uncompressed edge → paths map.
#[derive(Debug, Clone, Default)]
pub struct EpIndex {
    entries: HashMap<EdgeId, Vec<PathRef>>,
    total_refs: usize,
}

impl EpIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        EpIndex::default()
    }

    /// Registers that the bounding path `path_ref` traverses `edge`.
    pub fn insert(&mut self, edge: EdgeId, path_ref: PathRef) {
        self.entries.entry(edge).or_default().push(path_ref);
        self.total_refs += 1;
    }

    /// The bounding paths passing through `edge` (empty slice if none).
    pub fn paths_through(&self, edge: EdgeId) -> &[PathRef] {
        self.entries.get(&edge).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of edges that have at least one bounding path through them.
    pub fn num_edges(&self) -> usize {
        self.entries.len()
    }

    /// Total number of (edge, path) entries; this is the quantity
    /// `Nb(Nb−1)/2 · ξ · n_e` the paper uses to argue the EP-Index can be large.
    pub fn num_entries(&self) -> usize {
        self.total_refs
    }

    /// Estimated memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<EdgeId>() + std::mem::size_of::<Vec<PathRef>>())
            + self.total_refs * std::mem::size_of::<PathRef>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut idx = EpIndex::new();
        idx.insert(EdgeId(3), PathRef { pair: 0, path: 0 });
        idx.insert(EdgeId(3), PathRef { pair: 1, path: 2 });
        idx.insert(EdgeId(5), PathRef { pair: 0, path: 1 });
        assert_eq!(idx.paths_through(EdgeId(3)).len(), 2);
        assert_eq!(idx.paths_through(EdgeId(5)).len(), 1);
        assert!(idx.paths_through(EdgeId(9)).is_empty());
        assert_eq!(idx.num_edges(), 2);
        assert_eq!(idx.num_entries(), 3);
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn duplicate_inserts_are_kept_as_given() {
        // The builder never inserts duplicates; the index itself does not deduplicate.
        let mut idx = EpIndex::new();
        let r = PathRef { pair: 2, path: 1 };
        idx.insert(EdgeId(1), r);
        idx.insert(EdgeId(1), r);
        assert_eq!(idx.paths_through(EdgeId(1)), &[r, r]);
        assert_eq!(idx.num_entries(), 2);
    }
}
