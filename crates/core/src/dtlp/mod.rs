//! The Distributed Two-Level Path (DTLP) index — Sections 3 and 4 of the paper.
//!
//! Level one ([`subgraph_index`]) lives with each subgraph (on its owning worker in the
//! distributed deployment): the bounding paths between boundary-vertex pairs, the
//! unit-weight multiset used to compute bound distances, and a storage backend
//! ([`ep_index`] or the compressed [`mfp`]) that maps an edge to the bounding paths
//! passing through it so that weight updates touch only what they must.
//!
//! Level two ([`skeleton`]) is the skeleton graph `Gλ` over all boundary vertices; its
//! edge weights are *minimum lower bound distances* and it is small enough to be
//! replicated to every worker.
//!
//! [`index`] ties both levels together behind [`DtlpIndex`].

pub mod bounding;
pub mod ep_index;
pub mod index;
pub mod mfp;
pub mod skeleton;
pub mod subgraph_index;
pub mod unit_weights;

pub use bounding::{BoundingPath, BoundingPathSet};
pub use ep_index::EpIndex;
pub use index::{BuildStats, DtlpConfig, DtlpIndex, MaintenanceStats, PathStorageBackend};
pub use mfp::{MfpForest, MinHashLsh};
pub use skeleton::{OverlayView, SkeletonGraph};
pub use subgraph_index::{BackendKind, LowerBoundChange, SubgraphIndex};
pub use unit_weights::UnitWeightMultiset;
