//! The KSP-DG query algorithm (Section 5 of the paper).
//!
//! * [`refine`] — the refine step: partial k-shortest-path computation between adjacent
//!   reference-path vertices inside the relevant subgraphs, the join that assembles
//!   candidate complete paths (Algorithm 4), and the cross-iteration cache of partial
//!   results the paper describes as the main optimisation of `candidateKSP`.
//! * [`query`] — the full iterative filter-and-refine loop (Algorithm 3) with the
//!   termination condition of Theorem 3, support for non-boundary endpoints
//!   (Section 5.3) and per-query statistics matching the paper's cost model
//!   (Section 5.6).
//! * [`variants`] — the constrained (via-waypoints) and diversity-limited KSP query
//!   variants the paper proposes as future work (Section 8), composed on top of the
//!   engine.

pub mod query;
pub mod refine;
pub mod variants;

pub use query::{KspDgConfig, KspDgEngine, QueryResult, QueryStats, QueryTrace, SharedEngine};
pub use refine::{candidate_ksp, PartialPathCache};
pub use variants::path_similarity;
