//! The iterative filter-and-refine KSP-DG query loop (Algorithm 3, Theorem 3).

use crate::dtlp::{DtlpIndex, OverlayView};
use crate::kspdg::refine::{candidate_ksp, PartialPathCache};
use ksp_algo::path::keep_k_shortest;
use ksp_algo::{dijkstra_settled_within, KspEnumerator, Path};
use ksp_graph::{SubgraphSet, VertexId, Weight};

/// Configuration of the query engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KspDgConfig {
    /// Safety cap on the number of filter/refine iterations per query. The paper shows
    /// the number of iterations stays near `k` in practice (Section 5.5); the cap only
    /// guards against pathological inputs.
    pub max_iterations: usize,
    /// Whether partial k-shortest-path results are cached across iterations of the same
    /// query (the `candidateKSP` optimisation of Section 5.2). Disabling it is only
    /// useful for the ablation benchmarks.
    pub cache_partials: bool,
    /// Whether queries produce a *certified* [`QueryTrace`] — i.e. run the
    /// survival sweep after the answer is found. Off by default: the sweep
    /// costs one extra bounded Dijkstra over the skeleton overlay, which only
    /// pays for itself when something consumes the certificate (the serving
    /// layer's cache-survival machinery turns it on). With it off, the cheap
    /// level-one recording still happens but `QueryTrace::complete` stays
    /// `false`, so nothing downstream can mistake the trace for a
    /// certificate.
    pub collect_trace: bool,
}

impl Default for KspDgConfig {
    fn default() -> Self {
        KspDgConfig { max_iterations: 10_000, cache_partials: true, collect_trace: false }
    }
}

impl KspDgConfig {
    /// Returns a copy with certified trace collection enabled.
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }
}

/// Per-query statistics, matching the cost model of Section 5.6.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of filter/refine iterations executed (reference paths examined).
    pub iterations: usize,
    /// Number of partial k-shortest-path computations actually performed (cache
    /// misses); Operation (2) of the computation-cost analysis.
    pub partial_computations: usize,
    /// Number of partial computations answered from the per-query cache.
    pub partial_cache_hits: usize,
    /// Number of (subgraph, pair) combinations examined by the refine steps.
    pub subgraphs_examined: usize,
    /// Number of candidate complete paths generated across all iterations.
    pub candidates_generated: usize,
    /// Communication cost in vertex units: reference paths broadcast to workers plus
    /// partial paths returned to the query coordinator (Section 5.6.1).
    pub vertices_transferred: usize,
}

/// The set of subgraphs a query's answer depended on, plus whether that set is
/// a *complete* dependency certificate.
///
/// The trace has two parts, collected on the fly:
///
/// * **Level-one lookups** — every subgraph examined while attaching the
///   endpoints to the skeleton and while computing partial k shortest paths in
///   the refine steps. The answer paths' edges all live in these subgraphs,
///   so their distances are a function of exactly this set.
/// * **The survival sweep** — after the filter/refine loop terminates with a
///   k-th answer distance `T`, one bounded Dijkstra sweeps the skeleton
///   overlay from the source out to distance `T` and records the subgraphs of
///   every settled vertex. Any subgraph outside the sweep is provably too far
///   for *any* weight change inside it — increase or decrease — to produce a
///   new path shorter than `T`: a path entering such a subgraph first touches
///   one of its boundary vertices, whose overlay distance from the source
///   already lower-bounds the path at `T` or more.
///
/// Together: if a later update batch dirties no subgraph in a complete trace,
/// the answer is *bit-identical* on the new epoch — which is what lets the
/// serving layer's result cache survive epoch publishes selectively instead
/// of clearing wholesale.
///
/// `complete` is `false` when certified tracing is disabled
/// ([`KspDgConfig::collect_trace`], the default — the sweep is pure overhead
/// for callers that never consume the certificate) or when the query loop was
/// cut short by the [`KspDgConfig::max_iterations`] safety cap, in which case
/// the answer is not certified exact and a cached copy must not outlive its
/// epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// The subgraphs the answer depends on.
    pub subgraphs: SubgraphSet,
    /// Whether the trace certifies the answer (see the type-level docs).
    pub complete: bool,
}

/// The answer to one KSP query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The k shortest paths found, ascending by distance. Fewer than `k` paths are
    /// returned when the graph does not contain `k` distinct simple paths.
    pub paths: Vec<Path>,
    /// Execution statistics.
    pub stats: QueryStats,
    /// The subgraph dependency set of the answer.
    pub trace: QueryTrace,
    /// Wall time the engine spent in the survival sweep that certifies the
    /// trace ([`Duration::ZERO`](std::time::Duration::ZERO) when tracing is
    /// off or the sweep was skipped). The serving layer reports this as its
    /// own span stage, separate from the filter/refine run.
    pub sweep_time: std::time::Duration,
}

impl QueryResult {
    /// Distance of the best path, if any.
    pub fn shortest_distance(&self) -> Option<Weight> {
        self.paths.first().map(|p| p.distance())
    }
}

/// The KSP-DG query engine: runs Algorithm 3 against a [`DtlpIndex`].
#[derive(Debug, Clone)]
pub struct KspDgEngine<'a> {
    index: &'a DtlpIndex,
    config: KspDgConfig,
}

impl<'a> KspDgEngine<'a> {
    /// Creates an engine over the given index with default configuration.
    pub fn new(index: &'a DtlpIndex) -> Self {
        KspDgEngine { index, config: KspDgConfig::default() }
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(index: &'a DtlpIndex, config: KspDgConfig) -> Self {
        KspDgEngine { index, config }
    }

    /// The index this engine queries.
    pub fn index(&self) -> &DtlpIndex {
        self.index
    }

    /// Answers the query `q(source, target)` with parameter `k`.
    pub fn query(&self, source: VertexId, target: VertexId, k: usize) -> QueryResult {
        assert!(k >= 1, "k must be at least 1");
        let mut stats = QueryStats::default();
        let mut trace = QueryTrace::default();

        if source == target {
            // The trivial path has no edges: it depends on no subgraph at all,
            // so the empty trace is trivially complete.
            trace.complete = true;
            return QueryResult {
                paths: vec![Path::trivial(source)],
                stats,
                trace,
                sweep_time: std::time::Duration::ZERO,
            };
        }

        // Filter-step search structure: the skeleton graph with the query endpoints
        // attached (Section 5.3 / Step 1 of the Storm deployment).
        let overlay = self.build_overlay(source, target, &mut trace.subgraphs);

        let mut reference_paths = KspEnumerator::new(&overlay, source, target);
        let mut cache = PartialPathCache::new(k);
        let mut results: Vec<Path> = Vec::new();
        let mut capped = false;

        let mut next_reference = reference_paths.next_path();
        while let Some(reference) = next_reference {
            if stats.iterations >= self.config.max_iterations {
                capped = true;
                break;
            }
            stats.iterations += 1;
            // Broadcasting the reference path to the workers costs O(|Pλ|) vertices.
            stats.vertices_transferred += reference.num_vertices();

            let candidates = if self.config.cache_partials {
                candidate_ksp(
                    self.index,
                    reference.vertices(),
                    k,
                    &mut cache,
                    &mut stats.vertices_transferred,
                    &mut stats.subgraphs_examined,
                    &mut trace.subgraphs,
                )
            } else {
                let mut fresh = PartialPathCache::new(k);
                let out = candidate_ksp(
                    self.index,
                    reference.vertices(),
                    k,
                    &mut fresh,
                    &mut stats.vertices_transferred,
                    &mut stats.subgraphs_examined,
                    &mut trace.subgraphs,
                );
                stats.partial_computations += fresh.misses();
                out
            };
            stats.candidates_generated += candidates.len();
            results.extend(candidates);
            keep_k_shortest(&mut results, k);

            // Termination (Theorem 3): stop when the k-th best complete path found so
            // far is no longer than the next reference path.
            next_reference = reference_paths.next_path();
            if results.len() >= k {
                let kth = results[k - 1].distance();
                match &next_reference {
                    None => break,
                    Some(r) if kth <= r.distance() || kth.approx_eq(r.distance()) => break,
                    Some(_) => {}
                }
            }
        }
        if self.config.cache_partials {
            stats.partial_computations = cache.misses();
            stats.partial_cache_hits = cache.hits();
        }

        let mut sweep_time = std::time::Duration::ZERO;
        if self.config.collect_trace && !capped {
            // Survival sweep (see [`QueryTrace`]): with a full answer, record
            // every subgraph whose boundary lies within the k-th distance of
            // the source — outside that ball no weight change can produce a
            // path short enough to alter the answer. With fewer than k paths
            // the enumeration was exhaustive: every simple s→t path is already
            // in the answer (and traced through its refine subgraphs), and
            // weight updates cannot create new simple paths, so no sweep is
            // needed.
            if results.len() >= k {
                let sweep_started = std::time::Instant::now();
                let bound = results[k - 1].distance();
                for v in dijkstra_settled_within(&overlay, source, bound) {
                    trace.subgraphs.extend(self.index.subgraphs_of_vertex(v).iter().copied());
                }
                sweep_time = sweep_started.elapsed();
            }
            trace.complete = true;
        }
        QueryResult { paths: results, stats, trace, sweep_time }
    }

    /// Builds the overlay view attaching non-boundary endpoints to the skeleton,
    /// recording the subgraphs whose level-one data the overlay edges are
    /// derived from.
    fn build_overlay(
        &self,
        source: VertexId,
        target: VertexId,
        trace: &mut SubgraphSet,
    ) -> OverlayView<'_> {
        trace.extend(self.index.subgraphs_of_vertex(source).iter().copied());
        trace.extend(self.index.subgraphs_of_vertex(target).iter().copied());
        let skeleton = self.index.skeleton();
        let directed = self.index.is_directed();
        let mut overlay = skeleton.overlay();

        if !self.index.is_boundary(source) {
            for &sg in self.index.subgraphs_of_vertex(source) {
                for (b, d) in self.index.subgraph_index(sg).boundary_distances_from(source) {
                    if b == source {
                        continue;
                    }
                    if directed {
                        overlay.add_edge(source, b, d);
                    } else {
                        overlay.add_undirected_edge(source, b, d);
                    }
                }
            }
        }
        if !self.index.is_boundary(target) {
            for &sg in self.index.subgraphs_of_vertex(target) {
                for (b, d) in self.index.subgraph_index(sg).boundary_distances_to(target) {
                    if b == target {
                        continue;
                    }
                    if directed {
                        overlay.add_edge(b, target, d);
                    } else {
                        overlay.add_undirected_edge(b, target, d);
                    }
                }
            }
        }
        // If the endpoints co-occur in a subgraph and at least one of them is not a
        // boundary vertex, the skeleton has no edge covering paths that stay entirely
        // inside that subgraph; add a direct overlay edge with the within-subgraph
        // shortest distance (a valid lower bound of any such path).
        let shared = self.index.subgraphs_containing_pair(source, target);
        if !shared.is_empty()
            && (!self.index.is_boundary(source) || !self.index.is_boundary(target))
        {
            let best = shared
                .iter()
                .filter_map(|&sg| {
                    ksp_algo::dijkstra_path(
                        self.index.subgraph_index(sg).subgraph(),
                        source,
                        target,
                    )
                    .map(|p| p.distance())
                })
                .min();
            if let Some(d) = best {
                if directed {
                    overlay.add_edge(source, target, d);
                } else {
                    overlay.add_undirected_edge(source, target, d);
                }
            }
        }
        overlay
    }
}

/// A query engine that owns its index behind an [`Arc`], so it can be moved into
/// `'static` worker threads (the serving subsystem's shards) and shared freely.
///
/// Queries are read-only, so any number of `SharedEngine`s (or clones of one) can
/// answer queries against the same index concurrently.
#[derive(Debug, Clone)]
pub struct SharedEngine {
    index: std::sync::Arc<DtlpIndex>,
    config: KspDgConfig,
}

impl SharedEngine {
    /// Creates a shared engine over the given index with default configuration.
    pub fn new(index: std::sync::Arc<DtlpIndex>) -> Self {
        SharedEngine { index, config: KspDgConfig::default() }
    }

    /// Creates a shared engine with an explicit configuration.
    pub fn with_config(index: std::sync::Arc<DtlpIndex>, config: KspDgConfig) -> Self {
        SharedEngine { index, config }
    }

    /// The index this engine queries.
    pub fn index(&self) -> &std::sync::Arc<DtlpIndex> {
        &self.index
    }

    /// Answers the query `q(source, target)` with parameter `k`.
    pub fn query(&self, source: VertexId, target: VertexId, k: usize) -> QueryResult {
        KspDgEngine::with_config(&self.index, self.config).query(source, target, k)
    }
}

// The serving subsystem hands `&DtlpIndex` / `SharedEngine` across threads; keep
// that property from regressing silently.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DtlpIndex>();
    assert_send_sync::<SharedEngine>();
    assert_send_sync::<KspDgEngine<'_>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtlp::{DtlpConfig, DtlpIndex};
    use ksp_algo::yen_ksp;
    use ksp_graph::{DynamicGraph, GraphBuilder};
    use ksp_workload::{
        QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig, RoadNetworkGenerator, TrafficConfig,
        TrafficModel,
    };

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn paper_graph() -> DynamicGraph {
        let edges: &[(u32, u32, u32)] = &[
            (1, 2, 3),
            (1, 3, 3),
            (2, 3, 6),
            (2, 4, 3),
            (3, 5, 2),
            (4, 5, 3),
            (4, 6, 4),
            (5, 6, 4),
            (4, 7, 3),
            (6, 9, 3),
            (7, 8, 5),
            (8, 9, 4),
            (8, 10, 6),
            (9, 10, 5),
            (9, 14, 7),
            (10, 11, 5),
            (11, 12, 3),
            (12, 13, 3),
            (10, 13, 6),
            (13, 14, 3),
            (13, 18, 3),
            (14, 16, 3),
            (16, 13, 5),
            (16, 17, 2),
            (17, 18, 2),
            (18, 19, 3),
        ];
        let mut b = GraphBuilder::undirected(19);
        for &(x, y, w) in edges {
            b.edge(x - 1, y - 1, w);
        }
        b.build().unwrap()
    }

    /// Checks that KSP-DG and Yen (ground truth on the full graph) return the same
    /// multiset of path distances for the given query.
    fn assert_matches_yen(
        graph: &DynamicGraph,
        index: &DtlpIndex,
        s: VertexId,
        t: VertexId,
        k: usize,
    ) {
        let engine = KspDgEngine::new(index);
        let result = engine.query(s, t, k);
        let expected = yen_ksp(graph, s, t, k);
        assert_eq!(
            result.paths.len(),
            expected.len(),
            "path count mismatch for {s}->{t} k={k}: got {:?}, expected {:?}",
            result.paths,
            expected
        );
        for (got, want) in result.paths.iter().zip(expected.iter()) {
            assert!(
                got.distance().approx_eq(want.distance()),
                "distance mismatch for {s}->{t} k={k}: got {} expected {}",
                got.distance(),
                want.distance()
            );
        }
    }

    #[test]
    fn reproduces_the_paper_running_example() {
        // Example 8 of the paper runs q(v4, v13) with k = 2 on the Figure 3 graph. Our
        // reconstruction of that figure's edge weights is close but not byte-identical
        // (some labels are ambiguous in the figure), so the expected distances below
        // are the exact 2 shortest path distances of *this* reconstruction (17 and 18),
        // cross-checked against Yen's algorithm on the full graph.
        let g = paper_graph();
        let index = DtlpIndex::build(&g, DtlpConfig::new(6, 3)).unwrap();
        let engine = KspDgEngine::new(&index);
        let result = engine.query(v(3), v(12), 2);
        assert_eq!(result.paths.len(), 2);
        assert!(result.paths[0].distance().approx_eq(Weight::new(17.0)));
        assert!(result.paths[1].distance().approx_eq(Weight::new(18.0)));
        assert_matches_yen(&g, &index, v(3), v(12), 2);
        assert!(result.stats.iterations >= 1);
        assert!(result.stats.vertices_transferred > 0);
        assert_eq!(result.shortest_distance(), Some(result.paths[0].distance()));
    }

    #[test]
    fn matches_yen_for_boundary_endpoint_queries() {
        let net =
            RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(250)).generate(41).unwrap();
        let index = DtlpIndex::build(&net.graph, DtlpConfig::new(18, 2)).unwrap();
        let workload = QueryWorkload::generate_from_candidates(
            index.boundary_vertices(),
            QueryWorkloadConfig::new(12, 3),
            3,
        );
        for q in workload.iter() {
            assert_matches_yen(&net.graph, &index, q.source, q.target, q.k);
        }
    }

    #[test]
    fn matches_yen_for_arbitrary_endpoint_queries() {
        let net =
            RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(220)).generate(43).unwrap();
        let index = DtlpIndex::build(&net.graph, DtlpConfig::new(15, 2)).unwrap();
        let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(12, 2), 5);
        for q in workload.iter() {
            assert_matches_yen(&net.graph, &index, q.source, q.target, q.k);
        }
    }

    #[test]
    fn matches_yen_after_traffic_updates() {
        let mut net =
            RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(200)).generate(47).unwrap();
        let mut index = DtlpIndex::build(&net.graph, DtlpConfig::new(15, 2)).unwrap();
        let mut traffic = TrafficModel::new(&net.graph, TrafficConfig::new(0.4, 0.4), 9);
        for _ in 0..3 {
            let batch = traffic.next_snapshot();
            net.graph.apply_batch(&batch).unwrap();
            index.apply_batch(&batch).unwrap();
        }
        let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(10, 2), 19);
        for q in workload.iter() {
            assert_matches_yen(&net.graph, &index, q.source, q.target, q.k);
        }
    }

    #[test]
    fn same_subgraph_non_boundary_endpoints_are_answered() {
        let net =
            RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(150)).generate(53).unwrap();
        let index = DtlpIndex::build(&net.graph, DtlpConfig::new(30, 2)).unwrap();
        // Find two non-boundary vertices sharing a subgraph.
        let pair = (0..net.graph.num_vertices() as u32)
            .flat_map(|a| (0..net.graph.num_vertices() as u32).map(move |b| (v(a), v(b))))
            .find(|&(a, b)| {
                a != b
                    && !index.is_boundary(a)
                    && !index.is_boundary(b)
                    && !index.subgraphs_containing_pair(a, b).is_empty()
            });
        if let Some((a, b)) = pair {
            assert_matches_yen(&net.graph, &index, a, b, 2);
        }
    }

    #[test]
    fn identical_endpoints_return_the_trivial_path() {
        let g = paper_graph();
        let index = DtlpIndex::build(&g, DtlpConfig::new(6, 2)).unwrap();
        let engine = KspDgEngine::new(&index);
        let result = engine.query(v(4), v(4), 3);
        assert_eq!(result.paths.len(), 1);
        assert_eq!(result.paths[0].num_edges(), 0);
        assert_eq!(result.stats.iterations, 0);
    }

    #[test]
    fn unreachable_targets_return_no_paths() {
        let mut b = GraphBuilder::undirected(6);
        b.edge(0, 1, 2).edge(1, 2, 2).edge(3, 4, 2).edge(4, 5, 2);
        let g = b.build().unwrap();
        let index = DtlpIndex::build(&g, DtlpConfig::new(3, 1)).unwrap();
        let engine = KspDgEngine::new(&index);
        let result = engine.query(v(0), v(5), 2);
        assert!(result.paths.is_empty());
    }

    #[test]
    fn higher_xi_never_increases_iterations() {
        // Figure 24: more bounding paths tighten the bounds and reduce iterations.
        let net =
            RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(300)).generate(61).unwrap();
        let mut g = net.graph.clone();
        let mut traffic = TrafficModel::new(&g, TrafficConfig::new(0.5, 0.6), 3);
        let batch = traffic.next_snapshot();
        g.apply_batch(&batch).unwrap();

        let mut index_lo = DtlpIndex::build(&net.graph, DtlpConfig::new(20, 1)).unwrap();
        let mut index_hi = DtlpIndex::build(&net.graph, DtlpConfig::new(20, 6)).unwrap();
        index_lo.apply_batch(&batch).unwrap();
        index_hi.apply_batch(&batch).unwrap();

        let workload = QueryWorkload::generate(&g, QueryWorkloadConfig::new(8, 6), 71);
        let total = |index: &DtlpIndex| -> usize {
            let engine = KspDgEngine::new(index);
            workload.iter().map(|q| engine.query(q.source, q.target, q.k).stats.iterations).sum()
        };
        let iters_lo = total(&index_lo);
        let iters_hi = total(&index_hi);
        assert!(
            iters_hi <= iters_lo,
            "ξ=6 used more iterations ({iters_hi}) than ξ=1 ({iters_lo})"
        );
    }

    #[test]
    fn cache_disabled_still_produces_correct_results() {
        let net =
            RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(180)).generate(73).unwrap();
        let index = DtlpIndex::build(&net.graph, DtlpConfig::new(15, 2)).unwrap();
        let cached = KspDgEngine::new(&index);
        let uncached = KspDgEngine::with_config(
            &index,
            KspDgConfig { cache_partials: false, ..Default::default() },
        );
        let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(6, 3), 77);
        for q in workload.iter() {
            let a = cached.query(q.source, q.target, q.k);
            let b = uncached.query(q.source, q.target, q.k);
            assert_eq!(a.paths.len(), b.paths.len());
            for (x, y) in a.paths.iter().zip(b.paths.iter()) {
                assert!(x.distance().approx_eq(y.distance()));
            }
        }
    }

    #[test]
    fn trace_covers_answer_paths_and_is_complete() {
        let net =
            RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(250)).generate(91).unwrap();
        let index = DtlpIndex::build(&net.graph, DtlpConfig::new(18, 2)).unwrap();
        let engine = KspDgEngine::with_config(&index, KspDgConfig::default().with_trace());
        let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(10, 3), 17);
        for q in workload.iter() {
            let result = engine.query(q.source, q.target, q.k);
            assert!(result.trace.complete, "uncapped queries must certify their trace");
            assert!(!result.trace.subgraphs.is_empty());
            // Every edge of every answer path is owned by a traced subgraph —
            // the invariant that makes trace-disjoint updates unable to move
            // any answer distance.
            for path in &result.paths {
                for (u, v) in path.edges() {
                    let e = net
                        .graph
                        .edge_ids()
                        .find(|&e| {
                            let rec = net.graph.edge(e);
                            (rec.u == u && rec.v == v) || (rec.u == v && rec.v == u)
                        })
                        .expect("answer edge exists in the graph");
                    assert!(
                        result.trace.subgraphs.contains(index.owner_of_edge(e)),
                        "answer edge {u}->{v} owned by an untraced subgraph"
                    );
                }
            }
        }
        // The trivial query depends on nothing and says so.
        let trivial = engine.query(VertexId(3), VertexId(3), 2);
        assert!(trivial.trace.complete);
        assert!(trivial.trace.subgraphs.is_empty());
    }

    #[test]
    fn trace_disjoint_updates_leave_the_answer_bit_identical() {
        // The survival certificate end to end at the engine level: apply a
        // batch touching only subgraphs *outside* a query's trace, and the
        // answer recomputed from scratch on the updated index must be
        // bit-identical to the pre-update answer — increase or decrease.
        let net =
            RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(300)).generate(97).unwrap();
        let index = DtlpIndex::build(&net.graph, DtlpConfig::new(16, 2)).unwrap();
        let engine = KspDgEngine::with_config(&index, KspDgConfig::default().with_trace());
        let workload = QueryWorkload::generate(&net.graph, QueryWorkloadConfig::new(12, 2), 23);
        let mut exercised = 0;
        for q in workload.iter() {
            let before = engine.query(q.source, q.target, q.k);
            assert!(before.trace.complete);
            // Perturb every edge owned by untraced subgraphs, halving half of
            // them (decreases are the dangerous direction: they could open new
            // shortcuts if the trace under-covered).
            let updates: Vec<ksp_graph::WeightUpdate> = net
                .graph
                .edge_ids()
                .filter(|&e| !before.trace.subgraphs.contains(index.owner_of_edge(e)))
                .enumerate()
                .map(|(i, e)| {
                    let factor = if i % 2 == 0 { 0.5 } else { 1.7 };
                    ksp_graph::WeightUpdate::new(
                        e,
                        Weight::new(net.graph.weight(e).value() * factor),
                    )
                })
                .collect();
            if updates.is_empty() {
                continue;
            }
            exercised += 1;
            let mut updated = index.clone();
            updated.apply_batch(&ksp_graph::UpdateBatch::new(updates)).unwrap();
            let after = KspDgEngine::new(&updated).query(q.source, q.target, q.k);
            assert_eq!(before.paths.len(), after.paths.len(), "{q:?} answer size changed");
            for (a, b) in before.paths.iter().zip(after.paths.iter()) {
                assert_eq!(a.vertices(), b.vertices(), "{q:?} answer route changed");
                assert_eq!(
                    a.distance().value().to_bits(),
                    b.distance().value().to_bits(),
                    "{q:?} answer distance changed"
                );
            }
        }
        assert!(exercised > 0, "at least one query must have untraced subgraphs to perturb");
    }

    #[test]
    fn stats_account_for_cache_effectiveness() {
        let g = paper_graph();
        let index = DtlpIndex::build(&g, DtlpConfig::new(6, 1)).unwrap();
        let engine = KspDgEngine::new(&index);
        let result = engine.query(v(3), v(12), 5);
        // With k = 5 several iterations are needed; the cache should absorb repeats.
        assert!(result.stats.partial_computations > 0);
        assert!(result.stats.iterations >= 1);
        assert!(result.stats.subgraphs_examined >= result.stats.partial_computations);
    }
}
