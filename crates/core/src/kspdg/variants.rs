//! Query variants the paper lists as future work (Section 8), built on top of the
//! KSP-DG engine:
//!
//! * **Constrained KSP** — all returned paths must pass through a given sequence of
//!   designated vertices (e.g. "via this charging station, then this depot").
//! * **Diversity-limited KSP** — the returned alternatives must not overlap more than a
//!   given fraction of their edges, which is what navigation products actually show
//!   (three *different* routes, not three near-identical ones).
//!
//! Both are implemented by composing ordinary KSP-DG queries, so they automatically
//! benefit from the DTLP index and stay correct under weight updates.

use crate::kspdg::query::{KspDgEngine, QueryResult, QueryStats, QueryTrace};
use ksp_algo::path::keep_k_shortest;
use ksp_algo::Path;
use ksp_graph::VertexId;
use std::collections::HashSet;

/// Edge-overlap similarity of two paths: the Jaccard similarity of their edge sets,
/// with edges compared as unordered endpoint pairs. Two vertex-disjoint alternatives
/// have similarity 0; identical routes have similarity 1.
pub fn path_similarity(a: &Path, b: &Path) -> f64 {
    let canon = |u: VertexId, v: VertexId| if u <= v { (u, v) } else { (v, u) };
    let ea: HashSet<_> = a.edges().map(|(u, v)| canon(u, v)).collect();
    let eb: HashSet<_> = b.edges().map(|(u, v)| canon(u, v)).collect();
    if ea.is_empty() && eb.is_empty() {
        return 1.0;
    }
    let inter = ea.intersection(&eb).count() as f64;
    let union = ea.union(&eb).count() as f64;
    inter / union
}

impl KspDgEngine<'_> {
    /// Constrained KSP query: the k shortest simple paths from `source` to `target`
    /// that visit every vertex of `waypoints`, in the given order.
    ///
    /// Each consecutive leg (source → w₁ → … → target) is answered with an ordinary
    /// KSP-DG query; the per-leg top-k results are joined left to right, keeping only
    /// simple combinations and the k best after every join — the same composition used
    /// inside the refine step (Algorithm 4), so the result is the exact top-k of the
    /// paths expressible as concatenations of per-leg top-k paths. With an empty
    /// waypoint list this is exactly [`KspDgEngine::query`].
    pub fn query_via(
        &self,
        source: VertexId,
        target: VertexId,
        waypoints: &[VertexId],
        k: usize,
    ) -> QueryResult {
        assert!(k >= 1, "k must be at least 1");
        if waypoints.is_empty() {
            return self.query(source, target, k);
        }
        let mut stops = Vec::with_capacity(waypoints.len() + 2);
        stops.push(source);
        stops.extend_from_slice(waypoints);
        stops.push(target);

        let mut combined: Vec<Path> = vec![Path::trivial(source)];
        let mut stats = QueryStats::default();
        let mut sweep_time = std::time::Duration::ZERO;
        // The composed answer depends on the union of the legs' dependencies,
        // and is certified only if every leg is. (The composition itself adds
        // no subgraph reads: joining is pure path arithmetic.)
        let mut trace = QueryTrace { subgraphs: Default::default(), complete: true };
        for leg in stops.windows(2) {
            let result = self.query(leg[0], leg[1], k);
            accumulate(&mut stats, &result.stats);
            trace.subgraphs.union_with(&result.trace.subgraphs);
            trace.complete &= result.trace.complete;
            sweep_time += result.sweep_time;
            if result.paths.is_empty() {
                return QueryResult { paths: Vec::new(), stats, trace, sweep_time };
            }
            let mut next = Vec::with_capacity(combined.len() * result.paths.len());
            for left in &combined {
                for right in &result.paths {
                    if let Some(joined) = left.concat(right) {
                        next.push(joined);
                    }
                }
            }
            keep_k_shortest(&mut next, k);
            if next.is_empty() {
                return QueryResult { paths: Vec::new(), stats, trace, sweep_time };
            }
            combined = next;
        }
        QueryResult { paths: combined, stats, trace, sweep_time }
    }

    /// Diversity-limited KSP query: up to `k` paths from `source` to `target` such that
    /// no two returned paths share more than `max_similarity` of their edges (Jaccard).
    ///
    /// The engine enumerates a larger candidate pool (`overprovision × k` ordinary KSP
    /// results) and greedily keeps, in ascending distance order, every candidate that is
    /// sufficiently different from all already-kept paths. The shortest path is always
    /// returned first. Fewer than `k` paths are returned when the graph does not admit
    /// enough sufficiently-diverse alternatives within the candidate pool.
    pub fn query_diverse(
        &self,
        source: VertexId,
        target: VertexId,
        k: usize,
        max_similarity: f64,
        overprovision: usize,
    ) -> QueryResult {
        assert!(k >= 1, "k must be at least 1");
        assert!((0.0..=1.0).contains(&max_similarity), "similarity threshold must be in [0, 1]");
        let pool_size = k.max(1) * overprovision.max(1);
        let base = self.query(source, target, pool_size);
        let mut selected: Vec<Path> = Vec::with_capacity(k);
        for candidate in &base.paths {
            if selected.len() == k {
                break;
            }
            let diverse_enough = selected
                .iter()
                .all(|kept| path_similarity(kept, candidate) <= max_similarity + 1e-12);
            if diverse_enough {
                selected.push(candidate.clone());
            }
        }
        QueryResult {
            paths: selected,
            stats: base.stats,
            trace: base.trace,
            sweep_time: base.sweep_time,
        }
    }
}

fn accumulate(total: &mut QueryStats, part: &QueryStats) {
    total.iterations += part.iterations;
    total.partial_computations += part.partial_computations;
    total.partial_cache_hits += part.partial_cache_hits;
    total.subgraphs_examined += part.subgraphs_examined;
    total.candidates_generated += part.candidates_generated;
    total.vertices_transferred += part.vertices_transferred;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtlp::{DtlpConfig, DtlpIndex};
    use ksp_algo::yen_ksp;
    use ksp_graph::{DynamicGraph, Weight};
    use ksp_workload::{RoadNetworkConfig, RoadNetworkGenerator, Xoshiro256};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn network(n: usize, seed: u64) -> DynamicGraph {
        RoadNetworkGenerator::new(RoadNetworkConfig::with_vertices(n)).generate(seed).unwrap().graph
    }

    #[test]
    fn similarity_is_one_for_identical_and_zero_for_disjoint_routes() {
        let g = network(150, 3);
        let p = yen_ksp(&g, v(0), v(60), 1).remove(0);
        assert_eq!(path_similarity(&p, &p), 1.0);
        // A path far away shares no edges.
        let far_a = v((g.num_vertices() - 2) as u32);
        let far_b = v((g.num_vertices() - 40) as u32);
        let q = yen_ksp(&g, far_a, far_b, 1).remove(0);
        if !q.edges().any(|(a, b)| p.edges().any(|(c, d)| (a, b) == (c, d) || (a, b) == (d, c))) {
            assert_eq!(path_similarity(&p, &q), 0.0);
        }
    }

    #[test]
    fn query_via_with_no_waypoints_equals_plain_query() {
        let g = network(200, 5);
        let index = DtlpIndex::build(&g, DtlpConfig::new(18, 2)).unwrap();
        let engine = KspDgEngine::new(&index);
        let plain = engine.query(v(3), v(150), 3);
        let via = engine.query_via(v(3), v(150), &[], 3);
        assert_eq!(plain.paths.len(), via.paths.len());
        for (a, b) in plain.paths.iter().zip(via.paths.iter()) {
            assert!(a.distance().approx_eq(b.distance()));
        }
    }

    #[test]
    fn query_via_passes_through_waypoints_in_order() {
        let g = network(250, 7);
        let index = DtlpIndex::build(&g, DtlpConfig::new(20, 2)).unwrap();
        let engine = KspDgEngine::new(&index);
        let (s, w1, w2, t) = (v(5), v(80), v(160), v(230));
        let result = engine.query_via(s, t, &[w1, w2], 2);
        for p in &result.paths {
            assert_eq!(p.source(), s);
            assert_eq!(p.target(), t);
            let pos = |x: VertexId| p.vertices().iter().position(|&y| y == x);
            let (ps, p1, p2, pt) = (
                pos(s).unwrap(),
                pos(w1).expect("w1 visited"),
                pos(w2).expect("w2 visited"),
                pos(t).unwrap(),
            );
            assert!(ps < p1 && p1 < p2 && p2 < pt, "waypoints out of order in {p}");
            assert!(Path::is_simple(p.vertices()));
        }
        // The best constrained path can never beat the unconstrained shortest path.
        let unconstrained = engine.query(s, t, 1);
        if let (Some(best), Some(free)) = (result.paths.first(), unconstrained.paths.first()) {
            assert!(
                best.distance() >= free.distance() || best.distance().approx_eq(free.distance())
            );
        }
    }

    #[test]
    fn query_via_distance_matches_sum_of_leg_optima_for_k1() {
        let g = network(200, 11);
        let index = DtlpIndex::build(&g, DtlpConfig::new(18, 2)).unwrap();
        let engine = KspDgEngine::new(&index);
        let (s, w, t) = (v(2), v(90), v(180));
        let via = engine.query_via(s, t, &[w], 1);
        if let Some(best) = via.paths.first() {
            let leg1 = engine.query(s, w, 1).shortest_distance().unwrap();
            let leg2 = engine.query(w, t, 1).shortest_distance().unwrap();
            // The legs' optima may only combine if the concatenation is simple; if it
            // is, the constrained optimum equals their sum.
            if best.distance().approx_eq(leg1 + leg2) {
                assert!(best.contains(w));
            } else {
                assert!(best.distance() >= leg1 + leg2);
            }
        }
    }

    #[test]
    fn unreachable_waypoints_give_empty_results() {
        let mut b = ksp_graph::GraphBuilder::undirected(6);
        b.edge(0, 1, 1).edge(1, 2, 1).edge(3, 4, 1).edge(4, 5, 1);
        let g = b.build().unwrap();
        let index = DtlpIndex::build(&g, DtlpConfig::new(3, 1)).unwrap();
        let engine = KspDgEngine::new(&index);
        let result = engine.query_via(v(0), v(2), &[v(4)], 2);
        assert!(result.paths.is_empty());
    }

    #[test]
    fn diverse_query_respects_the_similarity_threshold() {
        let g = network(300, 13);
        let index = DtlpIndex::build(&g, DtlpConfig::new(25, 2)).unwrap();
        let engine = KspDgEngine::new(&index);
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..5 {
            let s = v(rng.next_bounded(g.num_vertices() as u64) as u32);
            let t = v(rng.next_bounded(g.num_vertices() as u64) as u32);
            if s == t {
                continue;
            }
            let threshold = 0.5;
            let result = engine.query_diverse(s, t, 3, threshold, 4);
            for (i, a) in result.paths.iter().enumerate() {
                for b in &result.paths[i + 1..] {
                    assert!(
                        path_similarity(a, b) <= threshold + 1e-9,
                        "similarity {} exceeds threshold between {a} and {b}",
                        path_similarity(a, b)
                    );
                }
            }
            // The first diverse path is always the true shortest path.
            if let Some(first) = result.paths.first() {
                let shortest = engine.query(s, t, 1).shortest_distance().unwrap();
                assert!(first.distance().approx_eq(shortest));
            }
        }
    }

    #[test]
    fn diverse_query_with_threshold_one_degenerates_to_plain_ksp() {
        let g = network(200, 17);
        let index = DtlpIndex::build(&g, DtlpConfig::new(18, 2)).unwrap();
        let engine = KspDgEngine::new(&index);
        let plain = engine.query(v(1), v(150), 3);
        let diverse = engine.query_diverse(v(1), v(150), 3, 1.0, 1);
        assert_eq!(plain.paths.len(), diverse.paths.len());
        for (a, b) in plain.paths.iter().zip(diverse.paths.iter()) {
            assert!(a.distance().approx_eq(b.distance()));
        }
    }

    #[test]
    fn diverse_selection_prefers_distance_order() {
        let g = network(250, 19);
        let index = DtlpIndex::build(&g, DtlpConfig::new(20, 2)).unwrap();
        let engine = KspDgEngine::new(&index);
        let result = engine.query_diverse(v(0), v(200), 4, 0.6, 4);
        for w in result.paths.windows(2) {
            assert!(w[0].distance() <= w[1].distance());
        }
        assert!(result.paths.len() <= 4);
        if result.paths.len() > 1 {
            assert!(result.paths[0].distance() <= result.paths[1].distance());
        }
        let _ = Weight::ZERO; // silence unused-import lints in minimal builds
    }
}
