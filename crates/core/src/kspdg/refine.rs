//! The refine step of KSP-DG: partial k shortest paths and their join (Algorithm 4).

use crate::dtlp::DtlpIndex;
use ksp_algo::path::keep_k_shortest;
use ksp_algo::{yen_ksp, Path};
use ksp_graph::{SubgraphSet, VertexId};
use std::collections::HashMap;

/// Cache of partial k-shortest-path computations, keyed by the (ordered) vertex pair.
///
/// Two consecutive reference paths usually share many adjacent boundary-vertex pairs
/// (Section 5.2); caching the partial results avoids recomputing them in later
/// iterations of the same query. The cache is per-query: it must be discarded when the
/// underlying weights change.
#[derive(Debug, Clone)]
pub struct PartialPathCache {
    k: usize,
    entries: HashMap<(VertexId, VertexId), Vec<Path>>,
    hits: usize,
    misses: usize,
}

impl PartialPathCache {
    /// Creates an empty cache for partial results of size `k`.
    pub fn new(k: usize) -> Self {
        PartialPathCache { k, entries: HashMap::new(), hits: 0, misses: 0 }
    }

    /// The `k` this cache was created for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of cache misses (i.e. actual partial computations) so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Returns the partial k shortest paths from `u` to `v`, computing (and caching)
    /// them if necessary.
    ///
    /// The computation examines every subgraph containing both endpoints, runs Yen's
    /// algorithm inside each (Algorithm 4, line 6), merges the results and keeps the
    /// `k` shortest (line 8). Appends the number of newly computed path-vertices to
    /// `transferred_vertices`, modelling the tuples a SubgraphBolt would send back to
    /// the QueryBolt, and records every examined subgraph in `trace` — the
    /// level-one half of the query's dependency set.
    pub fn partial_ksp(
        &mut self,
        index: &DtlpIndex,
        u: VertexId,
        v: VertexId,
        transferred_vertices: &mut usize,
        subgraphs_examined: &mut usize,
        trace: &mut SubgraphSet,
    ) -> Vec<Path> {
        if let Some(cached) = self.entries.get(&(u, v)) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let mut merged: Vec<Path> = Vec::new();
        for sg_id in index.subgraphs_containing_pair(u, v) {
            *subgraphs_examined += 1;
            trace.insert(sg_id);
            let sg = index.subgraph_index(sg_id).subgraph();
            let paths = yen_ksp(sg, u, v, self.k);
            merged.extend(paths);
        }
        keep_k_shortest(&mut merged, self.k);
        *transferred_vertices += merged.iter().map(|p| p.num_vertices()).sum::<usize>();
        self.entries.insert((u, v), merged.clone());
        merged
    }
}

/// Computes the candidate KSPs for one reference path (Algorithm 4).
///
/// `reference` is the vertex sequence of the reference path in the (overlaid) skeleton
/// graph; adjacent vertices always share at least one subgraph. The function joins the
/// partial k shortest paths of each adjacent pair left to right, keeping only the `k`
/// shortest (and only simple) combinations after every join. Returns an empty vector if
/// any adjacent pair is disconnected inside its subgraphs.
pub fn candidate_ksp(
    index: &DtlpIndex,
    reference: &[VertexId],
    k: usize,
    cache: &mut PartialPathCache,
    transferred_vertices: &mut usize,
    subgraphs_examined: &mut usize,
    trace: &mut SubgraphSet,
) -> Vec<Path> {
    assert!(k >= 1, "k must be at least 1");
    assert!(!reference.is_empty(), "reference path must contain at least one vertex");
    let mut combined: Vec<Path> = vec![Path::trivial(reference[0])];
    for pair in reference.windows(2) {
        let partials = cache.partial_ksp(
            index,
            pair[0],
            pair[1],
            transferred_vertices,
            subgraphs_examined,
            trace,
        );
        if partials.is_empty() {
            return Vec::new();
        }
        let mut next: Vec<Path> = Vec::with_capacity(combined.len() * partials.len());
        for left in &combined {
            for right in &partials {
                if let Some(joined) = left.concat(right) {
                    next.push(joined);
                }
            }
        }
        keep_k_shortest(&mut next, k);
        if next.is_empty() {
            return Vec::new();
        }
        combined = next;
    }
    combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtlp::{DtlpConfig, DtlpIndex};
    use ksp_algo::dijkstra_path;
    use ksp_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// The paper's Figure 3 graph with z = 6 (the running example of Section 5.2).
    fn paper_index() -> DtlpIndex {
        let edges: &[(u32, u32, u32)] = &[
            (1, 2, 3),
            (1, 3, 3),
            (2, 3, 6),
            (2, 4, 3),
            (3, 5, 2),
            (4, 5, 3),
            (4, 6, 4),
            (5, 6, 4),
            (4, 7, 3),
            (6, 9, 3),
            (7, 8, 5),
            (8, 9, 4),
            (8, 10, 6),
            (9, 10, 5),
            (9, 14, 7),
            (10, 11, 5),
            (11, 12, 3),
            (12, 13, 3),
            (10, 13, 6),
            (13, 14, 3),
            (13, 18, 3),
            (14, 16, 3),
            (16, 13, 5),
            (16, 17, 2),
            (17, 18, 2),
            (18, 19, 3),
        ];
        let mut b = GraphBuilder::undirected(19);
        for &(x, y, w) in edges {
            b.edge(x - 1, y - 1, w);
        }
        let g = b.build().unwrap();
        DtlpIndex::build(&g, DtlpConfig::new(6, 3)).unwrap()
    }

    #[test]
    fn partial_ksp_matches_subgraph_shortest_paths() {
        let index = paper_index();
        let mut cache = PartialPathCache::new(2);
        let mut transferred = 0;
        let mut examined = 0;
        let mut trace = SubgraphSet::new();
        // Pick two boundary vertices that share a subgraph.
        let pair = index
            .boundary_vertices()
            .iter()
            .flat_map(|&a| index.boundary_vertices().iter().map(move |&b| (a, b)))
            .find(|&(a, b)| a != b && !index.subgraphs_containing_pair(a, b).is_empty())
            .expect("some boundary pair shares a subgraph");
        let partials =
            cache.partial_ksp(&index, pair.0, pair.1, &mut transferred, &mut examined, &mut trace);
        assert!(!partials.is_empty());
        // The best partial equals the best single-subgraph shortest path.
        let best_direct = index
            .subgraphs_containing_pair(pair.0, pair.1)
            .into_iter()
            .filter_map(|sg| dijkstra_path(index.subgraph_index(sg).subgraph(), pair.0, pair.1))
            .map(|p| p.distance())
            .min()
            .unwrap();
        assert!(partials[0].distance().approx_eq(best_direct));
        assert!(examined >= 1);
        assert!(transferred > 0);
    }

    #[test]
    fn partial_cache_avoids_recomputation() {
        let index = paper_index();
        let mut cache = PartialPathCache::new(2);
        let mut transferred = 0;
        let mut examined = 0;
        let mut trace = SubgraphSet::new();
        let (a, b) = (index.boundary_vertices()[0], index.boundary_vertices()[1]);
        let first = cache.partial_ksp(&index, a, b, &mut transferred, &mut examined, &mut trace);
        let t_after_first = transferred;
        let second = cache.partial_ksp(&index, a, b, &mut transferred, &mut examined, &mut trace);
        assert_eq!(first.len(), second.len());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(transferred, t_after_first, "cache hits must not re-transfer paths");
        assert_eq!(cache.k(), 2);
    }

    #[test]
    fn candidate_ksp_reproduces_the_paper_example_structure() {
        // Example 8: query (v4, v13), k = 2, first reference path ⟨v4, v6, v9, v13⟩.
        // Our reconstruction of Figure 3's weights is not byte-identical to the paper,
        // so the exact candidate distances differ; the structural claims of the example
        // are what is asserted: exactly k candidates are produced, they traverse the
        // reference boundary sequence in order, and none can beat the true shortest
        // path of the full graph.
        let index = paper_index();
        let mut cache = PartialPathCache::new(2);
        let mut transferred = 0;
        let mut examined = 0;
        let mut trace = SubgraphSet::new();
        let reference = [v(3), v(5), v(8), v(12)]; // v4, v6, v9, v13 (0-based ids)
        let candidates = candidate_ksp(
            &index,
            &reference,
            2,
            &mut cache,
            &mut transferred,
            &mut examined,
            &mut trace,
        );
        assert_eq!(candidates.len(), 2);
        assert!(candidates[0].distance() <= candidates[1].distance());
        for c in &candidates {
            assert_eq!(c.source(), v(3));
            assert_eq!(c.target(), v(12));
            // Candidates follow the reference sequence v4 → v6 → v9 → v13.
            let mut pos = 0;
            for rv in &reference {
                pos = c.vertices()[pos..]
                    .iter()
                    .position(|x| x == rv)
                    .map(|p| p + pos)
                    .expect("reference vertex missing from candidate");
            }
        }
        // No candidate can be shorter than the true shortest path of the reconstructed
        // graph (distance 17, via v4-v6-v9-v14-v13).
        assert!(candidates[0].distance() >= ksp_graph::Weight::new(17.0));
    }

    #[test]
    fn candidate_ksp_returns_simple_paths_following_the_reference_sequence() {
        let index = paper_index();
        let mut cache = PartialPathCache::new(3);
        let mut transferred = 0;
        let mut examined = 0;
        let mut trace = SubgraphSet::new();
        let reference = [v(3), v(5), v(8), v(12)];
        let candidates = candidate_ksp(
            &index,
            &reference,
            3,
            &mut cache,
            &mut transferred,
            &mut examined,
            &mut trace,
        );
        for c in &candidates {
            assert!(Path::is_simple(c.vertices()));
            assert_eq!(c.source(), v(3));
            assert_eq!(c.target(), v(12));
            // The candidate visits the reference vertices in order.
            let mut pos = 0;
            for rv in &reference {
                pos = c.vertices()[pos..]
                    .iter()
                    .position(|x| x == rv)
                    .map(|p| p + pos)
                    .expect("reference vertex missing from candidate");
            }
        }
        // Candidates are sorted ascending.
        for w in candidates.windows(2) {
            assert!(w[0].distance() <= w[1].distance());
        }
    }

    #[test]
    fn disconnected_pair_produces_no_candidates() {
        let index = paper_index();
        let mut cache = PartialPathCache::new(2);
        let mut transferred = 0;
        let mut examined = 0;
        let mut trace = SubgraphSet::new();
        // v1 (id 0) and v19 (id 18) never share a subgraph in this partitioning, so the
        // partial computation finds no subgraph and yields nothing.
        if index.subgraphs_containing_pair(v(0), v(18)).is_empty() {
            let candidates = candidate_ksp(
                &index,
                &[v(0), v(18)],
                2,
                &mut cache,
                &mut transferred,
                &mut examined,
                &mut trace,
            );
            assert!(candidates.is_empty());
        }
    }

    #[test]
    fn single_vertex_reference_path_yields_the_trivial_path() {
        let index = paper_index();
        let mut cache = PartialPathCache::new(2);
        let mut transferred = 0;
        let mut examined = 0;
        let mut trace = SubgraphSet::new();
        let candidates = candidate_ksp(
            &index,
            &[v(3)],
            2,
            &mut cache,
            &mut transferred,
            &mut examined,
            &mut trace,
        );
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].num_edges(), 0);
    }
}
