//! Frame types for *shard-to-shard* traffic.
//!
//! The Storm-style topology in `ksp-cluster` exchanges tuples between the
//! entrance spout / query bolt on the master and the subgraph bolts on the
//! workers: scattered weight updates, broadcast partial-KSP requests, and the
//! lower-bound deltas and partial paths coming back. Today those tuples ride
//! in-process channels; this module gives each of them a wire encoding under
//! the same [`crate::frame`] codec the client protocol uses, so
//!
//! * the topology's communication-cost accounting can price every tuple in
//!   **physical wire bytes** (header + encoded payload) instead of abstract
//!   tuple counts, and
//! * a future multi-process topology ships these exact frames over the
//!   `TcpTransport` sockets without inventing a second codec.
//!
//! [`ShardTuple::frame_cost`] is the bridge: the number of bytes the tuple
//! would occupy on the wire, framing included.

use crate::frame::frame_len;
use crate::message::WirePath;
use ksp_algo::Path;
use ksp_graph::{SubgraphId, VertexId, Weight, WeightUpdate};
use ksp_store::codec::encode_slice;
use ksp_store::{CodecError, Reader, StoreCodec, Writer};

/// One lower-bound change reported back from a subgraph bolt after applying
/// updates: the bounding-path lower bound of pair `(a, b)` contributed by
/// `subgraph` is now `lower_bound`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBoundDelta {
    /// The subgraph whose pair moved.
    pub subgraph: SubgraphId,
    /// First endpoint of the boundary pair.
    pub a: VertexId,
    /// Second endpoint of the boundary pair.
    pub b: VertexId,
    /// The new lower bound.
    pub lower_bound: Weight,
}

impl StoreCodec for LowerBoundDelta {
    fn encode(&self, w: &mut Writer) {
        self.subgraph.encode(w);
        self.a.encode(w);
        self.b.encode(w);
        self.lower_bound.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(LowerBoundDelta {
            subgraph: SubgraphId::decode(r)?,
            a: VertexId::decode(r)?,
            b: VertexId::decode(r)?,
            lower_bound: Weight::decode(r)?,
        })
    }
}

/// The partial k shortest paths computed for one `(source, target)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairPaths {
    /// Source vertex of the pair.
    pub source: VertexId,
    /// Target vertex of the pair.
    pub target: VertexId,
    /// The paths, in the worker's answer order.
    pub paths: Vec<WirePath>,
}

impl StoreCodec for PairPaths {
    fn encode(&self, w: &mut Writer) {
        self.source.encode(w);
        self.target.encode(w);
        self.paths.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PairPaths {
            source: VertexId::decode(r)?,
            target: VertexId::decode(r)?,
            paths: Vec::decode(r)?,
        })
    }
}

/// A tuple exchanged between the master (EntranceSpout / QueryBolt) and a
/// subgraph worker, in both directions.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardTuple {
    /// Master → worker: apply these weight updates to the subgraphs the
    /// worker owns.
    ApplyUpdates {
        /// The updates, all owned by the receiving worker.
        updates: Vec<WeightUpdate>,
    },
    /// Worker → master: lower-bound changes caused by an update batch.
    LowerBoundDeltas {
        /// The changed pair bounds.
        deltas: Vec<LowerBoundDelta>,
    },
    /// Master → worker: compute partial k shortest paths for these pairs.
    PartialKspRequest {
        /// The boundary pairs of the reference path.
        pairs: Vec<(VertexId, VertexId)>,
        /// Paths requested per pair.
        k: u64,
    },
    /// Worker → master: the partial paths for the requested pairs.
    PartialKspReply {
        /// One entry per answered pair.
        answers: Vec<PairPaths>,
    },
    /// Master → worker: distances between a vertex and the boundary vertices
    /// of the worker's subgraphs containing it.
    EndpointDistancesRequest {
        /// The (possibly non-boundary) endpoint.
        vertex: VertexId,
        /// Whether boundary → vertex distances are wanted instead (directed
        /// graphs).
        reverse: bool,
    },
    /// Worker → master: the endpoint/boundary distances.
    EndpointDistancesReply {
        /// `(boundary vertex, distance)` pairs.
        distances: Vec<(VertexId, Weight)>,
    },
    /// Master → worker: the shortest within-subgraph distance between two
    /// vertices, over the worker's subgraphs containing both.
    WithinSubgraphRequest {
        /// Source vertex.
        source: VertexId,
        /// Target vertex.
        target: VertexId,
    },
    /// Worker → master: the within-subgraph distance, when one exists.
    WithinSubgraphReply {
        /// The distance, or `None` when no owned subgraph contains both.
        distance: Option<Weight>,
    },
    /// Master → worker: stop.
    Shutdown,
}

const SHARD_APPLY_UPDATES: u8 = 0;
const SHARD_LOWER_BOUND_DELTAS: u8 = 1;
const SHARD_PARTIAL_KSP_REQUEST: u8 = 2;
const SHARD_PARTIAL_KSP_REPLY: u8 = 3;
const SHARD_ENDPOINT_REQUEST: u8 = 4;
const SHARD_ENDPOINT_REPLY: u8 = 5;
const SHARD_WITHIN_REQUEST: u8 = 6;
const SHARD_WITHIN_REPLY: u8 = 7;
const SHARD_SHUTDOWN: u8 = 8;

impl StoreCodec for ShardTuple {
    fn encode(&self, w: &mut Writer) {
        match self {
            ShardTuple::ApplyUpdates { updates } => {
                w.put_u8(SHARD_APPLY_UPDATES);
                updates.encode(w);
            }
            ShardTuple::LowerBoundDeltas { deltas } => {
                w.put_u8(SHARD_LOWER_BOUND_DELTAS);
                deltas.encode(w);
            }
            ShardTuple::PartialKspRequest { pairs, k } => {
                w.put_u8(SHARD_PARTIAL_KSP_REQUEST);
                pairs.encode(w);
                w.put_u64(*k);
            }
            ShardTuple::PartialKspReply { answers } => {
                w.put_u8(SHARD_PARTIAL_KSP_REPLY);
                answers.encode(w);
            }
            ShardTuple::EndpointDistancesRequest { vertex, reverse } => {
                w.put_u8(SHARD_ENDPOINT_REQUEST);
                vertex.encode(w);
                reverse.encode(w);
            }
            ShardTuple::EndpointDistancesReply { distances } => {
                w.put_u8(SHARD_ENDPOINT_REPLY);
                distances.encode(w);
            }
            ShardTuple::WithinSubgraphRequest { source, target } => {
                w.put_u8(SHARD_WITHIN_REQUEST);
                source.encode(w);
                target.encode(w);
            }
            ShardTuple::WithinSubgraphReply { distance } => {
                w.put_u8(SHARD_WITHIN_REPLY);
                match distance {
                    Some(d) => {
                        w.put_u8(1);
                        d.encode(w);
                    }
                    None => w.put_u8(0),
                }
            }
            ShardTuple::Shutdown => w.put_u8(SHARD_SHUTDOWN),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            SHARD_APPLY_UPDATES => Ok(ShardTuple::ApplyUpdates { updates: Vec::decode(r)? }),
            SHARD_LOWER_BOUND_DELTAS => {
                Ok(ShardTuple::LowerBoundDeltas { deltas: Vec::decode(r)? })
            }
            SHARD_PARTIAL_KSP_REQUEST => {
                Ok(ShardTuple::PartialKspRequest { pairs: Vec::decode(r)?, k: r.get_u64()? })
            }
            SHARD_PARTIAL_KSP_REPLY => Ok(ShardTuple::PartialKspReply { answers: Vec::decode(r)? }),
            SHARD_ENDPOINT_REQUEST => Ok(ShardTuple::EndpointDistancesRequest {
                vertex: VertexId::decode(r)?,
                reverse: bool::decode(r)?,
            }),
            SHARD_ENDPOINT_REPLY => {
                Ok(ShardTuple::EndpointDistancesReply { distances: Vec::decode(r)? })
            }
            SHARD_WITHIN_REQUEST => Ok(ShardTuple::WithinSubgraphRequest {
                source: VertexId::decode(r)?,
                target: VertexId::decode(r)?,
            }),
            SHARD_WITHIN_REPLY => {
                let distance = match r.get_u8()? {
                    0 => None,
                    1 => Some(Weight::decode(r)?),
                    tag => return Err(CodecError::InvalidTag { what: "Option<Weight>", tag }),
                };
                Ok(ShardTuple::WithinSubgraphReply { distance })
            }
            SHARD_SHUTDOWN => Ok(ShardTuple::Shutdown),
            tag => Err(CodecError::InvalidTag { what: "ShardTuple", tag }),
        }
    }
}

impl ShardTuple {
    /// The bytes this tuple occupies on the wire, framing included — the
    /// physical communication cost the cluster experiments account per tuple.
    pub fn frame_cost(&self) -> usize {
        frame_len(self.to_bytes().len())
    }
}

// Borrowed-payload frame costs.
//
// The topology prices every channel message as if it had been framed, but
// the payloads live in its own structures (update vectors, reply maps,
// `ksp_algo::Path`s). These helpers encode straight from borrowed data —
// byte-for-byte the same encoding as constructing the [`ShardTuple`], minus
// the clone of the payload into a throwaway owned tuple. A test pins the
// equivalence.

/// Frame cost of [`ShardTuple::ApplyUpdates`] carrying `updates`.
pub fn apply_updates_frame_cost(updates: &[WeightUpdate]) -> usize {
    let mut w = Writer::new();
    w.put_u8(SHARD_APPLY_UPDATES);
    encode_slice(updates, &mut w);
    frame_len(w.len())
}

/// Frame cost of [`ShardTuple::LowerBoundDeltas`] carrying `deltas`.
pub fn lower_bound_deltas_frame_cost<I>(deltas: I) -> usize
where
    I: ExactSizeIterator<Item = LowerBoundDelta>,
{
    let mut w = Writer::new();
    w.put_u8(SHARD_LOWER_BOUND_DELTAS);
    w.put_u64(deltas.len() as u64);
    for delta in deltas {
        delta.encode(&mut w);
    }
    frame_len(w.len())
}

/// Frame cost of [`ShardTuple::PartialKspRequest`] carrying `pairs`.
pub fn partial_ksp_request_frame_cost(pairs: &[(VertexId, VertexId)], k: u64) -> usize {
    let mut w = Writer::new();
    w.put_u8(SHARD_PARTIAL_KSP_REQUEST);
    encode_slice(pairs, &mut w);
    w.put_u64(k);
    frame_len(w.len())
}

/// Frame cost of [`ShardTuple::PartialKspReply`] carrying one path list per
/// `(source, target)` pair, priced straight from the computed
/// [`Path`]s (no [`WirePath`] conversion).
pub fn partial_ksp_reply_frame_cost<'a, I>(answers: I) -> usize
where
    I: ExactSizeIterator<Item = (VertexId, VertexId, &'a [Path])>,
{
    let mut w = Writer::new();
    w.put_u8(SHARD_PARTIAL_KSP_REPLY);
    w.put_u64(answers.len() as u64);
    for (source, target, paths) in answers {
        source.encode(&mut w);
        target.encode(&mut w);
        w.put_u64(paths.len() as u64);
        for path in paths {
            // Identical bytes to `WirePath::from_path(path).encode(..)`.
            encode_slice(path.vertices(), &mut w);
            path.distance().encode(&mut w);
        }
    }
    frame_len(w.len())
}

/// Frame cost of [`ShardTuple::EndpointDistancesReply`] carrying `distances`.
pub fn endpoint_distances_reply_frame_cost(distances: &[(VertexId, Weight)]) -> usize {
    let mut w = Writer::new();
    w.put_u8(SHARD_ENDPOINT_REPLY);
    encode_slice(distances, &mut w);
    frame_len(w.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAME_HEADER_LEN;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn shard_tuples_round_trip() {
        let tuples = vec![
            ShardTuple::ApplyUpdates {
                updates: vec![WeightUpdate::new(ksp_graph::EdgeId(3), Weight::new(1.5))],
            },
            ShardTuple::LowerBoundDeltas {
                deltas: vec![LowerBoundDelta {
                    subgraph: SubgraphId(2),
                    a: v(1),
                    b: v(7),
                    lower_bound: Weight::new(4.25),
                }],
            },
            ShardTuple::PartialKspRequest { pairs: vec![(v(0), v(5)), (v(5), v(9))], k: 3 },
            ShardTuple::PartialKspReply {
                answers: vec![PairPaths {
                    source: v(0),
                    target: v(5),
                    paths: vec![WirePath {
                        vertices: vec![v(0), v(2), v(5)],
                        distance: Weight::new(7.0),
                    }],
                }],
            },
            ShardTuple::EndpointDistancesRequest { vertex: v(4), reverse: true },
            ShardTuple::EndpointDistancesReply { distances: vec![(v(1), Weight::new(2.0))] },
            ShardTuple::WithinSubgraphRequest { source: v(1), target: v(2) },
            ShardTuple::WithinSubgraphReply { distance: Some(Weight::new(3.5)) },
            ShardTuple::WithinSubgraphReply { distance: None },
            ShardTuple::Shutdown,
        ];
        for tuple in tuples {
            assert_eq!(ShardTuple::from_bytes(&tuple.to_bytes()).unwrap(), tuple);
            assert_eq!(tuple.frame_cost(), FRAME_HEADER_LEN + tuple.to_bytes().len());
        }
    }

    #[test]
    fn borrowed_cost_helpers_match_the_owned_tuple_encodings() {
        let updates = vec![
            WeightUpdate::new(ksp_graph::EdgeId(3), Weight::new(1.5)),
            WeightUpdate::new(ksp_graph::EdgeId(9), Weight::new(0.25)),
        ];
        assert_eq!(
            apply_updates_frame_cost(&updates),
            ShardTuple::ApplyUpdates { updates: updates.clone() }.frame_cost()
        );

        let deltas = vec![
            LowerBoundDelta {
                subgraph: SubgraphId(0),
                a: v(1),
                b: v(2),
                lower_bound: Weight::new(3.0),
            },
            LowerBoundDelta {
                subgraph: SubgraphId(4),
                a: v(5),
                b: v(6),
                lower_bound: Weight::new(7.5),
            },
        ];
        assert_eq!(
            lower_bound_deltas_frame_cost(deltas.iter().copied()),
            ShardTuple::LowerBoundDeltas { deltas: deltas.clone() }.frame_cost()
        );

        let pairs = vec![(v(0), v(5)), (v(5), v(9))];
        assert_eq!(
            partial_ksp_request_frame_cost(&pairs, 3),
            ShardTuple::PartialKspRequest { pairs: pairs.clone(), k: 3 }.frame_cost()
        );

        let paths = vec![
            Path::new(vec![v(0), v(2), v(5)], Weight::new(7.0)),
            Path::new(vec![v(0), v(5)], Weight::new(9.5)),
        ];
        assert_eq!(
            partial_ksp_reply_frame_cost([(v(0), v(5), paths.as_slice())].into_iter()),
            ShardTuple::PartialKspReply {
                answers: vec![PairPaths {
                    source: v(0),
                    target: v(5),
                    paths: paths.iter().map(WirePath::from_path).collect(),
                }],
            }
            .frame_cost()
        );

        let distances = vec![(v(1), Weight::new(2.0)), (v(8), Weight::new(0.5))];
        assert_eq!(
            endpoint_distances_reply_frame_cost(&distances),
            ShardTuple::EndpointDistancesReply { distances: distances.clone() }.frame_cost()
        );
    }

    #[test]
    fn frame_cost_scales_with_the_payload() {
        let small = ShardTuple::ApplyUpdates {
            updates: vec![WeightUpdate::new(ksp_graph::EdgeId(0), Weight::new(1.0))],
        };
        let large = ShardTuple::ApplyUpdates {
            updates: (0..100)
                .map(|i| WeightUpdate::new(ksp_graph::EdgeId(i), Weight::new(1.0)))
                .collect(),
        };
        assert!(large.frame_cost() > small.frame_cost());
        assert_eq!(ShardTuple::Shutdown.frame_cost(), FRAME_HEADER_LEN + 1);
    }
}
