//! The pluggable transport underneath [`crate::KspClient`].
//!
//! A [`Transport`] moves one [`Request`] to a serving endpoint and brings one
//! [`Response`] back. Two implementations exist:
//!
//! * [`TcpTransport`] (here) — blocking sockets with the [`crate::frame`]
//!   codec; [`Transport::pipeline`] writes every request frame before reading
//!   the first response, so a multi-query batch costs one flush instead of a
//!   round trip per query.
//! * `InProcTransport` (in `ksp-serve`, next to the service it wraps) — the
//!   zero-copy in-process path: requests are dispatched directly, nothing is
//!   serialised, and [`TransportStats`] stays at zero bytes — which is
//!   exactly the baseline the communication-cost accounting compares against.

use crate::frame::{read_frame, write_frame, FrameError, FrameKind};
use crate::message::{Request, Response};
use ksp_store::StoreCodec;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Physical communication cost accounting of one transport.
///
/// For a TCP transport these are real wire bytes (headers + payloads); for
/// the in-process transport they stay zero — comparing the two prices the
/// protocol itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Requests sent.
    pub requests: u64,
    /// Responses received.
    pub responses: u64,
    /// Bytes written to the wire (zero for in-process transports).
    pub bytes_sent: u64,
    /// Bytes read from the wire (zero for in-process transports).
    pub bytes_received: u64,
    /// Cumulative time spent encoding request payloads, in microseconds
    /// (zero for in-process transports, which never serialise).
    pub serialize_micros: u64,
    /// Cumulative time spent decoding response payloads, in microseconds
    /// (zero for in-process transports).
    pub decode_micros: u64,
}

impl TransportStats {
    /// Adds another transport's counters to this one (e.g. folding per-client
    /// stats into a run total).
    pub fn absorb(&mut self, other: &TransportStats) {
        self.requests += other.requests;
        self.responses += other.responses;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.serialize_micros += other.serialize_micros;
        self.decode_micros += other.decode_micros;
    }

    /// Mean wire bytes per request (sent + received), or zero for an
    /// in-process transport.
    pub fn bytes_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.bytes_sent + self.bytes_received) as f64 / self.requests as f64
        }
    }
}

/// Why a transport could not complete a round trip.
#[derive(Debug)]
pub enum TransportError {
    /// Framing or payload decoding failed (corrupt, truncated or
    /// foreign-version bytes).
    Frame(FrameError),
    /// The underlying connection failed.
    Io(io::Error),
    /// An I/O deadline expired before the peer answered (see
    /// [`TcpTransport::set_io_timeout`]). Distinct from [`TransportError::Io`]
    /// so callers can tell "slow or dead peer" from "broken connection".
    TimedOut,
    /// The peer closed the connection before answering.
    Disconnected,
    /// The peer sent a frame that is not a response (protocol violation).
    UnexpectedFrame,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Frame(e) => write!(f, "frame error: {e}"),
            TransportError::Io(e) => write!(f, "connection error: {e}"),
            TransportError::TimedOut => write!(f, "I/O deadline expired"),
            TransportError::Disconnected => write!(f, "server closed the connection"),
            TransportError::UnexpectedFrame => write!(f, "peer sent a non-response frame"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Frame(e) => Some(e),
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => TransportError::from(io),
            other => TransportError::Frame(other),
        }
    }
}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        // A socket deadline expiring surfaces as `WouldBlock` on Unix and
        // `TimedOut` on Windows; both mean "deadline", not "broken".
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => TransportError::TimedOut,
            _ => TransportError::Io(e),
        }
    }
}

/// Moves requests to a serving endpoint and responses back.
///
/// Implementations are blocking and owned by one client at a time (`&mut
/// self`); concurrency comes from opening one transport per client thread,
/// which is also how connections behave.
pub trait Transport: Send {
    /// Sends one request and blocks for its response.
    fn roundtrip(&mut self, request: Request) -> Result<Response, TransportError>;

    /// Sends every request before reading any response, then returns the
    /// responses in request order. The default implementation degrades to
    /// sequential round trips; socket transports override it with true
    /// pipelining.
    fn pipeline(&mut self, requests: Vec<Request>) -> Result<Vec<Response>, TransportError> {
        requests.into_iter().map(|r| self.roundtrip(r)).collect()
    }

    /// Physical communication cost so far.
    fn stats(&self) -> TransportStats;
}

// Forward through boxes so a connection can be composed at runtime (e.g. a
// replica interposing a `FaultTransport` under test). Explicit forwarding
// matters for `pipeline`: the default would degrade a boxed TcpTransport to
// sequential round trips.
impl Transport for Box<dyn Transport> {
    fn roundtrip(&mut self, request: Request) -> Result<Response, TransportError> {
        (**self).roundtrip(request)
    }

    fn pipeline(&mut self, requests: Vec<Request>) -> Result<Vec<Response>, TransportError> {
        (**self).pipeline(requests)
    }

    fn stats(&self) -> TransportStats {
        (**self).stats()
    }
}

/// The blocking TCP transport: one connection, the [`crate::frame`] codec,
/// buffered reads and writes, pipelined batches.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    stats: TransportStats,
}

impl TcpTransport {
    /// Connects to a serving endpoint.
    ///
    /// This performs no handshake; [`crate::KspClient::connect`] layers the
    /// `Ping` version negotiation on top.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_timeout(addr, None)
    }

    /// [`TcpTransport::connect`] bounded by a deadline: the connect itself
    /// and every subsequent read and write must complete within `timeout`
    /// (each individually), or the operation fails — surfaced by the client
    /// as [`crate::ClientError::TimedOut`]. `None` keeps the unbounded
    /// default.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Option<std::time::Duration>,
    ) -> io::Result<Self> {
        let stream = match timeout {
            None => TcpStream::connect(addr)?,
            Some(deadline) => {
                // `TcpStream::connect_timeout` takes one resolved address;
                // try each resolution like `connect` would.
                let mut last_err = None;
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, deadline) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                connected.ok_or_else(|| {
                    last_err.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
                    })
                })?
            }
        };
        stream.set_nodelay(true)?;
        let transport = TcpTransport {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            stats: TransportStats::default(),
        };
        transport.set_io_timeout(timeout)?;
        Ok(transport)
    }

    /// Bounds how long a blocked read waits for the server, `None` for
    /// forever. Useful in tests that must never hang on a dead peer.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Bounds both reads and writes with one deadline, `None` for forever.
    /// An expired deadline surfaces as [`TransportError::TimedOut`].
    pub fn set_io_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.writer.get_ref().set_write_timeout(timeout)
    }

    fn send(&mut self, request: &Request) -> Result<(), TransportError> {
        let started = std::time::Instant::now();
        let payload = request.to_bytes();
        self.stats.serialize_micros += started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        write_frame(&mut self.writer, FrameKind::Request, &payload)?;
        self.stats.requests += 1;
        self.stats.bytes_sent += crate::frame::frame_len(payload.len()) as u64;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, TransportError> {
        match read_frame(&mut self.reader)? {
            None => Err(TransportError::Disconnected),
            Some((FrameKind::Response, payload)) => {
                self.stats.responses += 1;
                self.stats.bytes_received += crate::frame::frame_len(payload.len()) as u64;
                let started = std::time::Instant::now();
                let response = Response::from_bytes(&payload).map_err(FrameError::Codec)?;
                self.stats.decode_micros +=
                    started.elapsed().as_micros().min(u64::MAX as u128) as u64;
                Ok(response)
            }
            Some((FrameKind::Request, _)) => Err(TransportError::UnexpectedFrame),
        }
    }
}

impl Transport for TcpTransport {
    fn roundtrip(&mut self, request: Request) -> Result<Response, TransportError> {
        self.send(&request)?;
        self.writer.flush()?;
        self.recv()
    }

    fn pipeline(&mut self, requests: Vec<Request>) -> Result<Vec<Response>, TransportError> {
        let n = requests.len();
        for request in &requests {
            self.send(request)?;
        }
        self.writer.flush()?;
        let mut responses = Vec::with_capacity(n);
        for _ in 0..n {
            responses.push(self.recv()?);
        }
        Ok(responses)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_fold_and_average() {
        let mut total = TransportStats::default();
        total.absorb(&TransportStats {
            requests: 2,
            responses: 2,
            bytes_sent: 100,
            bytes_received: 300,
            serialize_micros: 7,
            decode_micros: 11,
        });
        total.absorb(&TransportStats {
            requests: 2,
            responses: 2,
            bytes_sent: 60,
            bytes_received: 40,
            serialize_micros: 3,
            decode_micros: 9,
        });
        assert_eq!(total.requests, 4);
        assert_eq!(total.bytes_sent, 160);
        assert_eq!(total.serialize_micros, 10);
        assert_eq!(total.decode_micros, 20);
        assert!((total.bytes_per_request() - 125.0).abs() < 1e-9);
        assert_eq!(TransportStats::default().bytes_per_request(), 0.0);
    }
}
